//! The op-generic compilation core: one pipeline, seven facades.
//!
//! Every engine in this crate — DO-ANY ([`crate::engines`]) and
//! DO-ACROSS ([`crate::trisolve`]) alike — used to hand-roll the same
//! gate chain: work threshold → worker pool → race/wavefront
//! certificate → independent verifier → downgrade. This module owns
//! that chain once. An [`OpSpec`] names the operation, [`Operands`]
//! carries the matrices, and [`compile`] runs the full chain to a
//! [`CompiledOp`] — the one compiled artifact all seven public engine
//! types wrap. The warm path is the same story: [`compile_hinted`]
//! replays a structure cache's [`OpHints`] (decisions, never proofs)
//! through the identical soundness gates, keyed upstream by
//! `(StructureKey, OpKind)`.
//!
//! Three invariants the unification preserves, checked by the golden
//! suites:
//!
//! * **Bitwise facades.** Each facade compiles to exactly the strategy,
//!   tier and kernel dispatch its pre-refactor engine chose, so results
//!   are bit-identical on every tier.
//! * **Verification is never cached.** A replayed fast-tier certificate
//!   transfers only when `covers()` re-accepts the operand; a replayed
//!   level schedule is re-certified by the independent BA4x verifier
//!   before the parallel tier arms. A stale or forged hint can mis-tier
//!   an operand; it can never mis-compute.
//! * **One downgrade vocabulary.** Every reason a parallel-eligible op
//!   fell back to serial is a [`reason`] constant, recorded through the
//!   one private `record_decision` emitter — `scripts/ci.sh` confines
//!   both the gate-chain logic and the reason literals to this file.

use crate::ast::{programs, LoopNest};
use crate::compile::{CompiledKernel, Compiler};
use bernoulli_analysis::wavefront::{
    self, analyze_wavefront, verify_level_schedule, LevelSchedule, Triangle, WavefrontCert,
};
use bernoulli_formats::{
    fast, kernels, par_kernels, Csr, ExecConfig, ExecCtx, FormatKind, SparseMatrix, Validate,
};
use bernoulli_obs::events::{KernelCounters, StrategyEvent};
use bernoulli_obs::Obs;
use bernoulli_relational::access::{MatMeta, MatrixAccess, VecMeta};
use bernoulli_relational::error::{RelError, RelResult};
use bernoulli_relational::exec::Bindings;
use bernoulli_relational::ids::{MAT_A, MAT_B, MAT_C, VEC_X, VEC_Y};
use bernoulli_relational::planner::QueryMeta;
use bernoulli_relational::semiring::{AlgebraProps, Semiring};

/// Minimum mean rows per level for the wavefront parallel tier: below
/// this a schedule is mostly serial chain (the worst case is one row
/// per level) and per-wave fork/join overhead cannot be amortized — the
/// pipeline downgrades with reason [`reason::LEVELS_TOO_NARROW`].
pub const MIN_MEAN_LEVEL_WIDTH: f64 = 2.0;

/// The one downgrade-reason vocabulary, shared by every op kind. The
/// obs `strategies` stream records exactly these strings; `ci.sh`
/// greps that the literals appear nowhere else in the crates.
pub mod reason {
    /// No downgrade: the chosen strategy is the one the gates granted.
    pub const NONE: &str = "";
    /// The size gate passed but the effective pool is one worker —
    /// fork/join would be pure overhead.
    pub const SINGLE_WORKER_POOL: &str = "single_worker_pool";
    /// The DO-ANY race checker refused the nest (BA01/BA02/BA06).
    pub const RACY_NEST: &str = "racy_nest";
    /// Transposed-solve scatter loop: no bitwise-deterministic
    /// level-parallel form exists.
    pub const TRANSPOSED_SCATTER: &str = "transposed_scatter";
    /// The wavefront pass found no usable triangular structure.
    pub const NOT_TRIANGULAR: &str = "not_triangular";
    /// The independent BA4x verifier refused the (possibly cached)
    /// level schedule.
    pub const SCHEDULE_REJECTED: &str = "schedule_rejected";
    /// The schedule verified but its mean level width is below
    /// [`super::MIN_MEAN_LEVEL_WIDTH`].
    pub const LEVELS_TOO_NARROW: &str = "levels_too_narrow";
}

/// How a compiled op will execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The plan matched the format's natural traversal: dispatch to the
    /// monomorphised kernel (the "generated code" path).
    Specialized,
    /// The plan matched the natural traversal *and* the operand is
    /// large enough to clear the [`ExecConfig`] work threshold:
    /// dispatch to the shared-memory parallel kernel of
    /// [`bernoulli_formats::par_kernels`]. Below the threshold an
    /// engine compiles to [`Strategy::Specialized`] with the identical
    /// plan, so small operands keep byte-identical serial behaviour.
    Parallel,
    /// General plan interpretation.
    Interpreted,
}

impl Strategy {
    /// The strategy's name as it appears in telemetry
    /// ([`StrategyEvent::strategy`], validated by the report schema).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Specialized => "Specialized",
            Strategy::Parallel => "Parallel",
            Strategy::Interpreted => "Interpreted",
        }
    }
}

/// Which triangular system an SpTRSV op solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TriangularOp {
    /// `L·x = b`, forward substitution (gather). Level-parallelizable.
    Lower { unit_diag: bool },
    /// `U·x = b`, backward substitution (gather). Level-parallelizable.
    Upper { unit_diag: bool },
    /// `Lᵀ·x = b` from the stored lower factor, without materializing
    /// the transpose — a *scatter* loop, which has no bitwise-
    /// deterministic level-parallel form: concurrent waves would
    /// interleave partial updates of shared entries. Always serial
    /// (downgrade reason [`reason::TRANSPOSED_SCATTER`]).
    LowerTransposed { unit_diag: bool },
}

impl TriangularOp {
    fn triangle(self) -> Option<Triangle> {
        match self {
            TriangularOp::Lower { .. } => Some(Triangle::Lower),
            TriangularOp::Upper { .. } => Some(Triangle::Upper),
            TriangularOp::LowerTransposed { .. } => None,
        }
    }

    fn unit_diag(self) -> bool {
        match self {
            TriangularOp::Lower { unit_diag }
            | TriangularOp::Upper { unit_diag }
            | TriangularOp::LowerTransposed { unit_diag } => unit_diag,
        }
    }

    fn kernel_name(self, parallel: bool) -> &'static str {
        match (self, parallel) {
            (TriangularOp::Lower { .. }, false) => "sptrsv_csr_lower",
            (TriangularOp::Lower { .. }, true) => "par_sptrsv_csr_lower",
            (TriangularOp::Upper { .. }, false) => "sptrsv_csr_upper",
            (TriangularOp::Upper { .. }, true) => "par_sptrsv_csr_upper",
            (TriangularOp::LowerTransposed { .. }, _) => "sptrsv_csr_lower_transposed",
        }
    }
}

/// The operation *kind* — what a structure-keyed plan cache keys its
/// hint tables by (`(StructureKey, OpKind)`), with the scalar algebra
/// folded in so per-algebra race verdicts never cross streams. Unlike
/// [`OpSpec`] it drops instance parameters that do not affect cached
/// decisions (the multivector width `k`, a solve's `unit_diag`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// `y += A·x` under the classical algebra.
    Spmv,
    /// `C += A·B` (dense result) under the classical algebra.
    Spmm,
    /// `Y += A·X` against a skinny dense multivector.
    SpmvMulti,
    /// `y = y ⊕ (A ⊗ x)` under the named semiring.
    SemiringSpmv(&'static str),
    /// `C = C ⊕ (A ⊗ B)` (CSR×CSR, sparse result) under the named
    /// semiring.
    SemiringSpmm(&'static str),
    /// Forward substitution against a lower-triangular CSR factor.
    SptrsvLower,
    /// Backward substitution against an upper-triangular CSR factor.
    SptrsvUpper,
    /// Transposed solve from the stored lower factor (always serial).
    SptrsvLowerTransposed,
    /// Symmetric Gauss-Seidel sweeps over a square CSR matrix.
    Symgs,
}

impl OpKind {
    /// The op name as recorded in the obs `strategies` stream. The
    /// semiring variants share their classical op's name (the event's
    /// `algebra` field carries the distinction), matching the
    /// pre-unification engines.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Spmv | OpKind::SemiringSpmv(_) => "spmv",
            OpKind::Spmm | OpKind::SemiringSpmm(_) => "spmm",
            OpKind::SpmvMulti => "spmv_multi",
            OpKind::SptrsvLower | OpKind::SptrsvUpper | OpKind::SptrsvLowerTransposed => "sptrsv",
            OpKind::Symgs => "symgs",
        }
    }

    /// The scalar algebra this kind computes under.
    pub fn algebra(self) -> &'static str {
        match self {
            OpKind::SemiringSpmv(a) | OpKind::SemiringSpmm(a) => a,
            _ => "f64_plus",
        }
    }

    /// Stable persistence tag for cache files: unambiguous, versioned
    /// with the plan-cache schema. Round-trips through
    /// [`OpKind::from_tag`].
    pub fn tag(self) -> String {
        match self {
            OpKind::Spmv => "spmv".to_string(),
            OpKind::Spmm => "spmm".to_string(),
            OpKind::SpmvMulti => "spmv_multi".to_string(),
            OpKind::SemiringSpmv(a) => format!("spmv.{a}"),
            OpKind::SemiringSpmm(a) => format!("spmm.{a}"),
            OpKind::SptrsvLower => "sptrsv.lower".to_string(),
            OpKind::SptrsvUpper => "sptrsv.upper".to_string(),
            OpKind::SptrsvLowerTransposed => "sptrsv.lower_transposed".to_string(),
            OpKind::Symgs => "symgs".to_string(),
        }
    }

    /// Parse a persistence tag back to the kind. Unknown tags (a
    /// future algebra, a newer schema's op) return `None` so a loader
    /// can drop the entry instead of failing the whole file.
    pub fn from_tag(tag: &str) -> Option<OpKind> {
        match tag {
            "spmv" => Some(OpKind::Spmv),
            "spmm" => Some(OpKind::Spmm),
            "spmv_multi" => Some(OpKind::SpmvMulti),
            "sptrsv.lower" => Some(OpKind::SptrsvLower),
            "sptrsv.upper" => Some(OpKind::SptrsvUpper),
            "sptrsv.lower_transposed" => Some(OpKind::SptrsvLowerTransposed),
            "symgs" => Some(OpKind::Symgs),
            other => {
                let (base, algebra) = other.split_once('.')?;
                let interned = intern_algebra(algebra)?;
                match base {
                    "spmv" => Some(OpKind::SemiringSpmv(interned)),
                    "spmm" => Some(OpKind::SemiringSpmm(interned)),
                    _ => None,
                }
            }
        }
    }
}

/// Map an algebra name to its `'static` interned form — the inverse of
/// `S::NAME` for every semiring the workspace ships.
fn intern_algebra(name: &str) -> Option<&'static str> {
    ["f64_plus", "min_plus", "max_plus", "bool_or_and", "count_u64", "first_nonzero"]
        .into_iter()
        .find(|&k| k == name)
}

/// A full operation description: the kind plus its instance parameters.
/// [`compile`] pairs this with [`Operands`]; the `Dispatcher` in
/// `bernoulli-tune` keys submitted requests by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpSpec {
    /// `y += A·x`.
    Spmv,
    /// `C += A·B` into a dense row-major buffer.
    Spmm,
    /// `Y += A·X`, `X: ncols×k` row-major.
    SpmvMulti { k: usize },
    /// `y = y ⊕ (A ⊗ x)` under the named semiring (must match the
    /// `S` type parameter of [`compile`]).
    SemiringSpmv { algebra: &'static str },
    /// `C = C ⊕ (A ⊗ B)` under the named semiring.
    SemiringSpmm { algebra: &'static str },
    /// Triangular solve.
    Sptrsv { op: TriangularOp },
    /// Symmetric Gauss-Seidel sweeps.
    Symgs,
}

impl OpSpec {
    /// The cache-key kind this spec belongs to.
    pub fn kind(self) -> OpKind {
        match self {
            OpSpec::Spmv => OpKind::Spmv,
            OpSpec::Spmm => OpKind::Spmm,
            OpSpec::SpmvMulti { .. } => OpKind::SpmvMulti,
            OpSpec::SemiringSpmv { algebra } => OpKind::SemiringSpmv(algebra),
            OpSpec::SemiringSpmm { algebra } => OpKind::SemiringSpmm(algebra),
            OpSpec::Sptrsv { op } => match op {
                TriangularOp::Lower { .. } => OpKind::SptrsvLower,
                TriangularOp::Upper { .. } => OpKind::SptrsvUpper,
                TriangularOp::LowerTransposed { .. } => OpKind::SptrsvLowerTransposed,
            },
            OpSpec::Symgs => OpKind::Symgs,
        }
    }
}

/// The operand bundle an [`OpSpec`] compiles against. Borrowed: the
/// pipeline never copies a matrix.
pub enum Operands<'a> {
    /// One general-format matrix (SpMV family).
    Mat(&'a SparseMatrix),
    /// Two general-format matrices (classical SpMM).
    MatPair(&'a SparseMatrix, &'a SparseMatrix),
    /// Two CSR matrices (semiring SpMM — only CSR carries the generic
    /// hand kernel).
    CsrPair(&'a Csr, &'a Csr),
    /// One square CSR matrix (SpTRSV / SymGS).
    Tri(&'a Csr),
}

impl Operands<'_> {
    fn shape_name(&self) -> &'static str {
        match self {
            Operands::Mat(_) => "Mat",
            Operands::MatPair(..) => "MatPair",
            Operands::CsrPair(..) => "CsrPair",
            Operands::Tri(_) => "Tri",
        }
    }
}

/// The one gate-chain outcome, replacing the old per-family
/// `Decision`/`WaveDecision` pair — everything [`StrategyEvent`]
/// telemetry reports, for both DO-ANY and wavefront ops.
#[derive(Clone, Copy, Debug)]
pub struct GateDecision {
    pub strategy: Strategy,
    /// Whether the DO-ANY race checker ran at all (only once
    /// specialisation and the size gate both pass).
    pub race_checked: bool,
    /// The DO-ANY verdict. Always `false` for wavefront ops: their
    /// parallel tier is licensed by the wavefront certificate, not by
    /// DO-ANY safety.
    pub race_safe: bool,
    /// Why a parallel-eligible plan fell back to serial — one of the
    /// [`reason`] constants ([`reason::NONE`] = it didn't).
    pub downgrade: &'static str,
    /// Level statistics from the wavefront certificate; zero for
    /// DO-ANY ops, which have no level schedule.
    pub levels: u64,
    pub max_level_width: u64,
    pub mean_level_width: f64,
}

impl GateDecision {
    fn new(strategy: Strategy, race_checked: bool, race_safe: bool) -> GateDecision {
        GateDecision {
            strategy,
            race_checked,
            race_safe,
            downgrade: reason::NONE,
            levels: 0,
            max_level_width: 0,
            mean_level_width: 0.0,
        }
    }

    fn serial(race_checked: bool, downgrade: &'static str) -> GateDecision {
        GateDecision {
            downgrade,
            ..GateDecision::new(Strategy::Specialized, race_checked, false)
        }
    }

    /// The decision a hint replay records: the cached strategy, no
    /// race-gate re-run, no downgrade.
    fn replayed(strategy: Strategy) -> GateDecision {
        GateDecision::new(strategy, false, false)
    }
}

/// The DO-ANY gate chain under an explicit scalar algebra:
/// specialisability → work threshold → worker pool → race certificate
/// (`check_do_any_in`, so a reduction nest over a non-associative-
/// commutative ⊕ (BA06) is provably downgraded to the serial tier
/// instead of run concurrently).
pub fn do_any_decision(
    nest: &LoopNest,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
    algebra: &AlgebraProps,
) -> GateDecision {
    if !specializable {
        return GateDecision::new(Strategy::Interpreted, false, false);
    }
    if !exec.should_parallelize(work) {
        return GateDecision::serial(false, reason::NONE);
    }
    // The size gate passed, so the plan *wants* to go parallel — but a
    // pool that can only run one worker at a time (requested threads
    // clamped to the hardware parallelism, unless oversubscription is
    // explicitly allowed) would pay pure fork/join overhead for it.
    // Downgrade to the serial specialized tier and say why.
    if exec.effective_workers() <= 1 {
        return GateDecision::serial(false, reason::SINGLE_WORKER_POOL);
    }
    let safe = bernoulli_analysis::race::check_do_any_in(nest, algebra).is_parallel_safe();
    GateDecision {
        strategy: if safe { Strategy::Parallel } else { Strategy::Specialized },
        downgrade: if safe { reason::NONE } else { reason::RACY_NEST },
        ..GateDecision::new(Strategy::Specialized, true, safe)
    }
}

fn do_any_f64(nest: &LoopNest, specializable: bool, work: usize, exec: &ExecConfig) -> GateDecision {
    do_any_decision(nest, specializable, work, exec, &AlgebraProps::f64_plus())
}

/// The wavefront gate chain: size threshold → worker pool → DO-ANY
/// race checker (always refuses a sweep nest — recorded, not trusted)
/// → wavefront certification → independent BA4x verification → width
/// heuristic. `triangle == None` means the kernel is a scatter loop
/// with no parallel form. A `cached` schedule (a structure-cache
/// replay) skips the O(nnz) longest-path *construction* of
/// `analyze_wavefront` — never the verification: it is certified
/// through `wavefront::certify_schedule`, which runs the same
/// independent BA4x verifier against this operand's pattern, so a
/// stale or forged cache entry downgrades to serial
/// ([`reason::SCHEDULE_REJECTED`]) instead of racing.
fn wave_decision(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    triangle: Option<Triangle>,
    work: usize,
    ctx: &ExecCtx,
    cached: Option<LevelSchedule>,
) -> (GateDecision, Option<(LevelSchedule, WavefrontCert)>) {
    let cfg = ctx.config();
    if !cfg.should_parallelize(work) {
        return (GateDecision::serial(false, reason::NONE), None);
    }
    if cfg.effective_workers() <= 1 {
        return (GateDecision::serial(false, reason::SINGLE_WORKER_POOL), None);
    }
    // Consult the DO-ANY checker exactly like the dense engines do.
    // It refuses the sweep nest (BA01/BA02) — that refusal is the
    // *reason the wavefront path exists*, so instead of stopping at
    // `racy_nest` we fall through to the dependence analysis, and the
    // recorded event shows `race_checked: true, race_safe: false`
    // alongside the wavefront verdict.
    debug_assert!(!bernoulli_analysis::check_do_any(&programs::sptrsv()).is_parallel_safe());
    let Some(triangle) = triangle else {
        return (GateDecision::serial(true, reason::TRANSPOSED_SCATTER), None);
    };
    let (sched, cert) = if let Some(sched) = cached {
        match wavefront::certify_schedule(nrows, rowptr, colind, triangle, &sched) {
            Ok(cert) => (sched, cert),
            Err(_) => return (GateDecision::serial(true, reason::SCHEDULE_REJECTED), None),
        }
    } else {
        let report = analyze_wavefront(nrows, rowptr, colind, triangle);
        let (Some(sched), Some(cert)) = (report.schedule, report.certificate) else {
            return (GateDecision::serial(true, reason::NOT_TRIANGULAR), None);
        };
        // Independent re-verification — the pipeline does not take the
        // analysis pass's word for it (`plan_verify` discipline).
        if !verify_level_schedule(nrows, rowptr, colind, triangle, &sched).is_empty() {
            return (GateDecision::serial(true, reason::SCHEDULE_REJECTED), None);
        }
        (sched, cert)
    };
    let (levels, maxw, meanw) =
        (cert.levels() as u64, cert.max_level_width() as u64, cert.mean_level_width());
    if meanw < MIN_MEAN_LEVEL_WIDTH {
        return (
            GateDecision {
                strategy: Strategy::Specialized,
                race_checked: true,
                race_safe: false,
                downgrade: reason::LEVELS_TOO_NARROW,
                levels,
                max_level_width: maxw,
                mean_level_width: meanw,
            },
            None,
        );
    }
    (
        GateDecision {
            strategy: Strategy::Parallel,
            race_checked: true,
            race_safe: false,
            downgrade: reason::NONE,
            levels,
            max_level_width: maxw,
            mean_level_width: meanw,
        },
        Some((sched, cert)),
    )
}

/// The one obs `strategies` record emitter: every op kind's
/// compile-time decision flows through here (and bumps the compile
/// counter). Free on a disabled handle; allocation-free always — every
/// string field is `&'static`.
// One positional slot per StrategyEvent field this emits; bundling
// them into a struct would just restate the event type.
#[allow(clippy::too_many_arguments)]
fn record_decision(
    obs: &Obs,
    op: &'static str,
    algebra: &'static str,
    d: &GateDecision,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
    tier: &'static str,
) {
    obs.counter("engine.compile", 1);
    obs.strategy(|| StrategyEvent {
        op,
        strategy: d.strategy.name(),
        algebra,
        specializable,
        work: work as u64,
        threshold: exec.par_threshold_nnz as u64,
        threads: exec.threads_hint() as u64,
        race_checked: d.race_checked,
        race_safe: d.race_safe,
        tier,
        downgrade: d.downgrade,
        levels: d.levels,
        max_level_width: d.max_level_width,
        mean_level_width: d.mean_level_width,
    });
}

/// Telemetry name component for a format's specialised kernels
/// (matches the `kernels::spmv_*` function naming).
pub(crate) fn kind_slug(kind: FormatKind) -> &'static str {
    match kind {
        FormatKind::Dense => "dense",
        FormatKind::Coordinate => "coo",
        FormatKind::Csr => "csr",
        FormatKind::Ccs => "ccs",
        FormatKind::Cccs => "cccs",
        FormatKind::Diagonal => "diag",
        FormatKind::Itpack => "itpack",
        FormatKind::JDiag => "jdiag",
        FormatKind::Inode => "inode",
    }
}

/// The SpMV counter model: every stored nonzero is one multiply-add;
/// bytes = values + index structure read once (8-byte words each) plus
/// `x` read and `y` read+written once.
pub(crate) fn spmv_counters(m: &MatMeta) -> KernelCounters {
    let nnz = m.nnz as u64;
    KernelCounters {
        nnz,
        flops: 2 * nnz,
        bytes: 8 * (2 * nnz + m.ncols as u64 + 2 * m.nrows as u64),
        algebra: "f64_plus",
    }
}

/// The SpMM (sparse × sparse) counter model. Exact flops would need the
/// row-expansion sum; the estimate charges every `A` entry an average
/// `B` row scan, and bytes charge both operands read once plus the
/// expansion written through the accumulator.
pub(crate) fn spmm_counters(a: &MatMeta, b: &MatMeta) -> KernelCounters {
    let (an, bn) = (a.nnz as u64, b.nnz as u64);
    let expansion = an.saturating_mul(bn) / (b.nrows.max(1) as u64);
    KernelCounters {
        nnz: an + bn,
        flops: 2 * expansion,
        bytes: 8 * 2 * (an + bn) + 16 * expansion,
        algebra: "f64_plus",
    }
}

/// The multivector (sparse × skinny dense) counter model: each stored
/// nonzero does `k` multiply-adds against a dense row.
pub(crate) fn spmv_multi_counters(m: &MatMeta, k: usize) -> KernelCounters {
    let nnz = m.nnz as u64;
    let k = k.max(1) as u64;
    KernelCounters {
        nnz,
        flops: 2 * nnz * k,
        bytes: 8 * (2 * nnz + m.ncols as u64 * k + 2 * m.nrows as u64 * k),
        algebra: "f64_plus",
    }
}

/// Triangular-solve counter model: one multiply-subtract per stored
/// off-diagonal plus one divide per row; values + indices read once,
/// `b` read and `x` written once.
fn sptrsv_counters(a: &Csr) -> KernelCounters {
    let nnz = a.nnz() as u64;
    let n = a.nrows() as u64;
    KernelCounters { nnz, flops: 2 * nnz + n, bytes: 8 * (2 * nnz + 2 * n), algebra: "f64_plus" }
}

/// Checked-mode operand gate: when [`ExecConfig::checked`] is set, run
/// the format-invariant sanitizer over the operand and refuse to
/// compile against a corrupt matrix ([`RelError::Validation`]).
fn check_operand(name: &str, m: &SparseMatrix, exec: &ExecConfig) -> RelResult<()> {
    if exec.checked {
        m.validate_ok()
            .map_err(|e| RelError::Validation(format!("operand {name}: {e}")))?;
    }
    Ok(())
}

fn check_csr_operand(name: &str, a: &Csr, exec: &ExecConfig) -> RelResult<()> {
    if exec.checked {
        a.validate_ok()
            .map_err(|e| RelError::Validation(format!("operand {name}: {e}")))?;
    }
    Ok(())
}

fn check_square(a: &Csr, what: &str) -> RelResult<()> {
    if a.nrows() != a.ncols() {
        return Err(RelError::Validation(format!(
            "{what} needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    Ok(())
}

/// The canonical matvec plan shape for each format orientation.
fn natural_spmv_shape(a: &SparseMatrix) -> &'static str {
    use bernoulli_relational::access::Orientation::*;
    match a.meta().orientation {
        RowMajor => "i:outer(A)>j:inner(A)[X?]",
        ColMajor => "j:outer(A)[X?]>i:inner(A)",
        Flat => "(i,j):flat(A)[X?]",
    }
}

/// Algebra-qualified kernel telemetry name: the classical algebra keeps
/// the historical bare names (`spmv_csr`), every other algebra gets its
/// own stream (`spmv_csr.min_plus`) so one name never mixes algebras.
fn algebra_kernel_name(base: &str, algebra: &'static str) -> String {
    if algebra == "f64_plus" {
        base.to_string()
    } else {
        format!("{base}.{algebra}")
    }
}

/// O(1) operand identity: heap addresses + lengths of the index
/// arrays, plus the dimension. Moving the owning [`Csr`] (or the
/// struct that holds it) keeps the heap buffers in place, so the
/// fingerprint survives moves but rejects clones and different
/// matrices — the same containment story as the fast-tier and
/// wavefront certificates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OperandId {
    rowptr: (usize, usize),
    colind: (usize, usize),
    nrows: usize,
}

impl OperandId {
    fn of(a: &Csr) -> OperandId {
        OperandId {
            rowptr: (a.rowptr().as_ptr() as usize, a.rowptr().len()),
            colind: (a.colind().as_ptr() as usize, a.colind().len()),
            nrows: a.nrows(),
        }
    }
}

/// The planning verdicts a structure-keyed plan cache stores per
/// `(StructureKey, OpKind)` and feeds back through [`compile_hinted`].
/// Everything here is a cached *decision* — strategy tier, plan shape,
/// fast-tier eligibility, level schedules — never a proof: the hinted
/// path skips the planner search, the race-gate re-derivation and the
/// wavefront schedule *construction*, but checked-mode validation
/// still runs, the fast tier is armed only by a certificate that
/// covers the operand actually handed in, and a replayed schedule must
/// pass the independent BA4x verifier before the parallel tier arms.
#[derive(Clone, Debug)]
pub struct OpHints {
    /// The strategy the cold compile chose for this structure.
    pub strategy: Strategy,
    /// Plan-shape signature ([`CompiledKernel::shape`]) of the cold
    /// plan (empty for the wavefront ops, which never run the planner).
    pub plan_shape: String,
    /// Whether the cold compile certified the fast microkernel tier.
    pub fast_eligible: bool,
    /// In-memory tier only: the certificate from a previous compile of
    /// the *same* matrix instance. Never persisted to disk (it
    /// fingerprints heap addresses); reused only when
    /// [`fast::MatrixCert::covers`] accepts the operand, re-derived
    /// otherwise.
    pub fast_cert: Option<fast::MatrixCert>,
    /// Cached level schedules: `[solve]` for SpTRSV, `[fwd, bwd]` for
    /// SymGS, empty for the DO-ANY ops and for structures whose cold
    /// compile never armed the wavefront tier.
    pub schedules: Vec<LevelSchedule>,
}

impl OpHints {
    /// Hints carrying only level schedules — what a cache stores for
    /// the wavefront ops, where strategy/shape/fast fields are decided
    /// fresh by the certify gate on every replay.
    pub fn schedules_only(schedules: Vec<LevelSchedule>) -> OpHints {
        OpHints {
            strategy: Strategy::Specialized,
            plan_shape: String::new(),
            fast_eligible: false,
            fast_cert: None,
            schedules,
        }
    }
}

/// Where a compiled op's plan came from: the planner (cold), a
/// structure cache replay (warm), or nowhere — the wavefront ops plan
/// against the operand's sparsity structure, not a relational query.
enum PlanSource {
    Compiled(CompiledKernel),
    Hinted { shape: String },
    None,
}

impl PlanSource {
    fn shape(&self) -> String {
        match self {
            PlanSource::Compiled(k) => k.shape(),
            PlanSource::Hinted { shape } => shape.clone(),
            PlanSource::None => String::new(),
        }
    }
}

/// One armed SymGS sweep direction: `(dep_rowptr, dep_colind,
/// schedule, cert)` over the engine-owned symmetrized triangle.
type SweepPlan = (Vec<usize>, Vec<usize>, LevelSchedule, WavefrontCert);

/// Per-kind run state.
enum Payload {
    Spmv,
    Spmm,
    SpmvMulti {
        k: usize,
    },
    SemiringSpmv,
    SemiringSpmm,
    Sptrsv {
        op: TriangularOp,
        schedule: Option<(LevelSchedule, WavefrontCert)>,
    },
    Symgs {
        operand: OperandId,
        /// `(dep_rowptr, dep_colind, schedule, cert)` per direction,
        /// when the parallel tier is armed. Boxed: the armed payload is
        /// ~3x the next-largest variant, and most ops never carry it.
        fwd: Option<Box<SweepPlan>>,
        bwd: Option<Box<SweepPlan>>,
    },
}

/// The one compiled artifact every engine facade wraps: the strategy
/// the gate chain granted, the plan (or its cached shape), the
/// certificates that license the fast/parallel tiers, and typed run
/// entry points that dispatch exactly as the pre-refactor engines did.
pub struct CompiledOp {
    kind: OpKind,
    strategy: Strategy,
    ctx: ExecCtx,
    plan: PlanSource,
    downgrade: &'static str,
    /// Validation certificate for the fast microkernel tier, computed
    /// once at compile time when [`ExecCtx::fast_kernels`] armed it and
    /// the operand passed the full sanitizer. `None` = reference tier.
    fast_cert: Option<fast::MatrixCert>,
    payload: Payload,
}

// ---------------------------------------------------------------------
// Compilation: one public entry per temperature, dispatching on spec.
// ---------------------------------------------------------------------

/// Compile an operation cold: run the planner (where the op has one),
/// the full gate chain, and record the decision through the one obs
/// emitter. `S` names the scalar algebra for the semiring specs and is
/// ignored (pass `F64Plus`) for the classical ones; a semiring spec
/// whose `algebra` disagrees with `S::NAME` is refused.
pub fn compile<S: Semiring>(
    spec: OpSpec,
    operands: Operands<'_>,
    ctx: &ExecCtx,
) -> RelResult<CompiledOp> {
    match (spec, operands) {
        (OpSpec::Spmv, Operands::Mat(a)) => compile_spmv(a, ctx),
        (OpSpec::Spmm, Operands::MatPair(a, b)) => compile_spmm(a, b, ctx),
        (OpSpec::SpmvMulti { k }, Operands::Mat(a)) => compile_spmv_multi(a, k, ctx),
        (OpSpec::SemiringSpmv { algebra }, Operands::Mat(a)) => {
            check_algebra::<S>(algebra)?;
            compile_semiring_spmv::<S>(a, ctx)
        }
        (OpSpec::SemiringSpmm { algebra }, Operands::CsrPair(a, b)) => {
            check_algebra::<S>(algebra)?;
            compile_semiring_spmm::<S>(a, b, ctx)
        }
        (OpSpec::Sptrsv { op }, Operands::Tri(a)) => compile_sptrsv(a, op, ctx, None),
        (OpSpec::Symgs, Operands::Tri(a)) => compile_symgs(a, ctx, None),
        (spec, operands) => Err(operand_mismatch(spec, &operands)),
    }
}

/// Compile an operation warm, replaying a structure cache's [`OpHints`]
/// through the same soundness gates — the unified `bernoulli-tune`
/// seam. Decisions replay; proofs never do (see [`OpHints`]). Specs
/// whose hints cannot be replayed soundly (an `Interpreted` verdict
/// needs a real plan; a specialised verdict needs the format the
/// structure key promised) fall back to the full [`compile`].
pub fn compile_hinted<S: Semiring>(
    spec: OpSpec,
    operands: Operands<'_>,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    match (spec, operands) {
        (OpSpec::Spmv, Operands::Mat(a)) => compile_spmv_hinted(a, ctx, hints),
        (OpSpec::Spmm, Operands::MatPair(a, b)) => compile_spmm_hinted(a, b, ctx, hints),
        (OpSpec::SpmvMulti { k }, Operands::Mat(a)) => {
            compile_spmv_multi_hinted(a, k, ctx, hints)
        }
        (OpSpec::SemiringSpmv { algebra }, Operands::Mat(a)) => {
            check_algebra::<S>(algebra)?;
            compile_semiring_spmv_hinted::<S>(a, ctx, hints)
        }
        (OpSpec::SemiringSpmm { algebra }, Operands::CsrPair(a, b)) => {
            check_algebra::<S>(algebra)?;
            compile_semiring_spmm_hinted::<S>(a, b, ctx, hints)
        }
        (OpSpec::Sptrsv { op }, Operands::Tri(a)) => {
            compile_sptrsv(a, op, ctx, hints.schedules.first().cloned())
        }
        (OpSpec::Symgs, Operands::Tri(a)) => {
            let cached = match &hints.schedules[..] {
                [f, b] => Some((f.clone(), b.clone())),
                _ => None,
            };
            compile_symgs(a, ctx, cached)
        }
        (spec, operands) => Err(operand_mismatch(spec, &operands)),
    }
}

fn check_algebra<S: Semiring>(algebra: &'static str) -> RelResult<()> {
    if algebra != S::NAME {
        return Err(RelError::Validation(format!(
            "op algebra {:?} does not match the compiled semiring {:?}",
            algebra,
            S::NAME
        )));
    }
    Ok(())
}

fn operand_mismatch(spec: OpSpec, operands: &Operands<'_>) -> RelError {
    RelError::Validation(format!(
        "op {spec:?} cannot compile against {} operands",
        operands.shape_name()
    ))
}

fn compile_spmv(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<CompiledOp> {
    check_operand("A", a, ctx.config())?;
    let m = a.meta();
    let meta = QueryMeta::new()
        .mat(MAT_A, m)
        .vec(VEC_X, VecMeta::dense(m.ncols))
        .vec(VEC_Y, VecMeta::dense(m.nrows));
    let nest = programs::matvec();
    let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
    // Both the format's natural hierarchical traversal and the flat
    // enumeration plan compute exactly what the format's hand kernel
    // computes (A enumerated once, X directly indexed), so either
    // shape dispatches to it.
    let shape = kernel.shape();
    let specializable =
        ctx.specialize() && (shape == natural_spmv_shape(a) || shape == "(i,j):flat(A)[X?]");
    let decision = do_any_f64(&nest, specializable, m.nnz, ctx.config());
    // The fast tier is armed only by explicit opt-in, only for the
    // serial specialized strategy, and only when the operand passes
    // the full Validate sanitizer *now* — a rejected certificate
    // silently keeps the reference tier (observable via `tier`).
    let fast_cert = if ctx.fast() && decision.strategy == Strategy::Specialized {
        fast::MatrixCert::certify(a).ok()
    } else {
        None
    };
    let tier = if fast_cert.is_some() { "fast" } else { "reference" };
    record_decision(ctx.obs(), "spmv", "f64_plus", &decision, specializable, m.nnz, ctx.config(), tier);
    Ok(CompiledOp {
        kind: OpKind::Spmv,
        strategy: decision.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Compiled(kernel),
        downgrade: decision.downgrade,
        fast_cert,
        payload: Payload::Spmv,
    })
}

fn compile_spmv_hinted(
    a: &SparseMatrix,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    if hints.strategy == Strategy::Interpreted || !ctx.specialize() {
        return compile_spmv(a, ctx);
    }
    check_operand("A", a, ctx.config())?;
    let m = a.meta();
    let strategy = regate(hints.strategy, m.nnz, ctx.config());
    let fast_cert = replay_fast_cert(a, ctx, strategy, hints);
    let tier = if fast_cert.is_some() { "fast" } else { "reference" };
    ctx.obs().counter("engine.compile_hinted", 1);
    record_decision(
        ctx.obs(),
        "spmv",
        "f64_plus",
        &GateDecision::replayed(strategy),
        true,
        m.nnz,
        ctx.config(),
        tier,
    );
    Ok(CompiledOp {
        kind: OpKind::Spmv,
        strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
        downgrade: reason::NONE,
        fast_cert,
        payload: Payload::Spmv,
    })
}

/// Re-apply the O(1) gates on a replayed verdict: a cached Parallel
/// verdict still needs *this* context's pool and *this* operand's size
/// to pay for fork/join. The expensive race-check verdict is what the
/// cache carries (it depends only on the canonical nest and the
/// algebra, both part of the cache key). Downgrade-only: a replay
/// never upgrades a cached serial verdict.
fn regate(cached: Strategy, work: usize, cfg: &ExecConfig) -> Strategy {
    if cached == Strategy::Parallel
        && (!cfg.should_parallelize(work) || cfg.effective_workers() <= 1)
    {
        Strategy::Specialized
    } else {
        cached
    }
}

/// Certification reuse, not certification skip: `covers()` re-checks
/// dimensions, addresses and the index-array content hash before the
/// cached certificate transfers; anything else re-runs the sanitizer.
fn replay_fast_cert(
    a: &SparseMatrix,
    ctx: &ExecCtx,
    strategy: Strategy,
    hints: &OpHints,
) -> Option<fast::MatrixCert> {
    if ctx.fast() && strategy == Strategy::Specialized && hints.fast_eligible {
        match &hints.fast_cert {
            Some(c) if c.covers(a) => Some(*c),
            _ => fast::MatrixCert::certify(a).ok(),
        }
    } else {
        None
    }
}

const GUSTAVSON_SHAPE: &str = "i:outer(A)>k:inner(A)[B?]>j:inner(B)";
const MULTI_SHAPE: &str = "i:outer(A)>j:inner(A)[B?]>k:inner(B)";

fn compile_spmm(a: &SparseMatrix, b: &SparseMatrix, ctx: &ExecCtx) -> RelResult<CompiledOp> {
    check_operand("A", a, ctx.config())?;
    check_operand("B", b, ctx.config())?;
    let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta());
    let nest = programs::matmat();
    let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
    // Gustavson's traversal over two CSR operands is the one shape
    // with a hand-tuned kernel. Work estimate for the parallel gate:
    // the driver operand's nonzeros (each expands into a B-row scan).
    let both_csr = matches!(a, SparseMatrix::Csr(_)) && matches!(b, SparseMatrix::Csr(_));
    let specializable = ctx.specialize() && both_csr && kernel.shape() == GUSTAVSON_SHAPE;
    let decision = do_any_f64(&nest, specializable, a.meta().nnz, ctx.config());
    record_decision(
        ctx.obs(),
        "spmm",
        "f64_plus",
        &decision,
        specializable,
        a.meta().nnz,
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::Spmm,
        strategy: decision.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Compiled(kernel),
        downgrade: decision.downgrade,
        fast_cert: None,
        payload: Payload::Spmm,
    })
}

fn compile_spmm_hinted(
    a: &SparseMatrix,
    b: &SparseMatrix,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    // A specialised verdict only replays onto the operand family it was
    // derived for; the structure key upstream pins the format tag, but
    // the O(1) re-check keeps the seam sound even against a confused
    // caller — anything else degenerates to the cold path.
    let both_csr = matches!(a, SparseMatrix::Csr(_)) && matches!(b, SparseMatrix::Csr(_));
    if hints.strategy == Strategy::Interpreted || !ctx.specialize() || !both_csr {
        return compile_spmm(a, b, ctx);
    }
    check_operand("A", a, ctx.config())?;
    check_operand("B", b, ctx.config())?;
    let work = a.meta().nnz;
    let strategy = regate(hints.strategy, work, ctx.config());
    ctx.obs().counter("engine.compile_hinted", 1);
    record_decision(
        ctx.obs(),
        "spmm",
        "f64_plus",
        &GateDecision::replayed(strategy),
        true,
        work,
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::Spmm,
        strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
        downgrade: reason::NONE,
        fast_cert: None,
        payload: Payload::Spmm,
    })
}

fn compile_spmv_multi(a: &SparseMatrix, k: usize, ctx: &ExecCtx) -> RelResult<CompiledOp> {
    check_operand("A", a, ctx.config())?;
    let m = a.meta();
    // The multivector's metadata: a dense ncols × k matrix.
    let x_meta = bernoulli_formats::DenseMatrix::zeros(m.ncols, k).meta();
    let meta = QueryMeta::new().mat(MAT_A, m).mat(MAT_B, x_meta);
    let nest = programs::matvec_multi();
    let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
    // The natural shape: rows of A, then A's entries, then the dense
    // multivector row — CSR dispatches to the blocked kernel. Work
    // estimate: nnz·k fused multiply-adds.
    let is_csr = matches!(a, SparseMatrix::Csr(_));
    let specializable = ctx.specialize() && is_csr && kernel.shape() == MULTI_SHAPE;
    let work = m.nnz.saturating_mul(k.max(1));
    let decision = do_any_f64(&nest, specializable, work, ctx.config());
    record_decision(
        ctx.obs(),
        "spmv_multi",
        "f64_plus",
        &decision,
        specializable,
        work,
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::SpmvMulti,
        strategy: decision.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Compiled(kernel),
        downgrade: decision.downgrade,
        fast_cert: None,
        payload: Payload::SpmvMulti { k },
    })
}

fn compile_spmv_multi_hinted(
    a: &SparseMatrix,
    k: usize,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    let is_csr = matches!(a, SparseMatrix::Csr(_));
    if hints.strategy == Strategy::Interpreted || !ctx.specialize() || !is_csr {
        return compile_spmv_multi(a, k, ctx);
    }
    check_operand("A", a, ctx.config())?;
    let work = a.meta().nnz.saturating_mul(k.max(1));
    let strategy = regate(hints.strategy, work, ctx.config());
    ctx.obs().counter("engine.compile_hinted", 1);
    record_decision(
        ctx.obs(),
        "spmv_multi",
        "f64_plus",
        &GateDecision::replayed(strategy),
        true,
        work,
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::SpmvMulti,
        strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
        downgrade: reason::NONE,
        fast_cert: None,
        payload: Payload::SpmvMulti { k },
    })
}

fn compile_semiring_spmv<S: Semiring>(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<CompiledOp> {
    check_operand("A", a, ctx.config())?;
    let m = a.meta();
    let meta = QueryMeta::new()
        .mat(MAT_A, m)
        .vec(VEC_X, VecMeta::dense(m.ncols))
        .vec(VEC_Y, VecMeta::dense(m.nrows));
    let nest = programs::matvec();
    let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
    let decision = do_any_decision(&nest, true, m.nnz, ctx.config(), &S::props());
    record_decision(ctx.obs(), "spmv", S::NAME, &decision, true, m.nnz, ctx.config(), "reference");
    Ok(CompiledOp {
        kind: OpKind::SemiringSpmv(S::NAME),
        strategy: decision.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Compiled(kernel),
        downgrade: decision.downgrade,
        fast_cert: None,
        payload: Payload::SemiringSpmv,
    })
}

fn compile_semiring_spmv_hinted<S: Semiring>(
    a: &SparseMatrix,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    // There is no interpreter tier off the f64 algebra, so an
    // Interpreted hint can only mean a foreign cache entry — recompute.
    if hints.strategy == Strategy::Interpreted {
        return compile_semiring_spmv::<S>(a, ctx);
    }
    check_operand("A", a, ctx.config())?;
    let m = a.meta();
    // The cached verdict already encodes the per-algebra race check
    // (the cache key carries S::NAME), so only the O(1) gates re-run.
    let strategy = regate(hints.strategy, m.nnz, ctx.config());
    ctx.obs().counter("engine.compile_hinted", 1);
    record_decision(
        ctx.obs(),
        "spmv",
        S::NAME,
        &GateDecision::replayed(strategy),
        true,
        m.nnz,
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::SemiringSpmv(S::NAME),
        strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
        downgrade: reason::NONE,
        fast_cert: None,
        payload: Payload::SemiringSpmv,
    })
}

fn compile_semiring_spmm<S: Semiring>(a: &Csr, b: &Csr, ctx: &ExecCtx) -> RelResult<CompiledOp> {
    check_csr_operand("A", a, ctx.config())?;
    check_csr_operand("B", b, ctx.config())?;
    let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta());
    let nest = programs::matmat();
    let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
    // The parallel tier merges per-block partial products, which is
    // only sound when ⊕ is associative-commutative — the same BA06
    // gate the kernels self-apply.
    let decision = do_any_decision(&nest, true, a.nnz(), ctx.config(), &S::props());
    record_decision(ctx.obs(), "spmm", S::NAME, &decision, true, a.nnz(), ctx.config(), "reference");
    Ok(CompiledOp {
        kind: OpKind::SemiringSpmm(S::NAME),
        strategy: decision.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Compiled(kernel),
        downgrade: decision.downgrade,
        fast_cert: None,
        payload: Payload::SemiringSpmm,
    })
}

fn compile_semiring_spmm_hinted<S: Semiring>(
    a: &Csr,
    b: &Csr,
    ctx: &ExecCtx,
    hints: &OpHints,
) -> RelResult<CompiledOp> {
    if hints.strategy == Strategy::Interpreted {
        return compile_semiring_spmm::<S>(a, b, ctx);
    }
    check_csr_operand("A", a, ctx.config())?;
    check_csr_operand("B", b, ctx.config())?;
    let strategy = regate(hints.strategy, a.nnz(), ctx.config());
    ctx.obs().counter("engine.compile_hinted", 1);
    record_decision(
        ctx.obs(),
        "spmm",
        S::NAME,
        &GateDecision::replayed(strategy),
        true,
        a.nnz(),
        ctx.config(),
        "reference",
    );
    Ok(CompiledOp {
        kind: OpKind::SemiringSpmm(S::NAME),
        strategy,
        ctx: ctx.clone(),
        plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
        downgrade: reason::NONE,
        fast_cert: None,
        payload: Payload::SemiringSpmm,
    })
}

fn compile_sptrsv(
    a: &Csr,
    op: TriangularOp,
    ctx: &ExecCtx,
    cached: Option<LevelSchedule>,
) -> RelResult<CompiledOp> {
    check_csr_operand("A", a, ctx.config())?;
    check_square(a, "triangular solve")?;
    let (d, schedule) =
        wave_decision(a.nrows(), a.rowptr(), a.colind(), op.triangle(), a.nnz(), ctx, cached);
    record_decision(ctx.obs(), "sptrsv", "f64_plus", &d, true, a.nnz(), ctx.config(), "reference");
    Ok(CompiledOp {
        kind: OpSpec::Sptrsv { op }.kind(),
        strategy: d.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::None,
        downgrade: d.downgrade,
        fast_cert: None,
        payload: Payload::Sptrsv { op, schedule },
    })
}

fn compile_symgs(
    a: &Csr,
    ctx: &ExecCtx,
    cached: Option<(LevelSchedule, LevelSchedule)>,
) -> RelResult<CompiledOp> {
    check_csr_operand("A", a, ctx.config())?;
    check_square(a, "Gauss-Seidel")?;
    let n = a.nrows();
    let (cached_fwd, cached_bwd) = match cached {
        Some((f, b)) => (Some(f), Some(b)),
        None => (None, None),
    };
    let (frp, fci) = wavefront::symmetrize_lower(n, a.rowptr(), a.colind());
    let (d, fwd_sched) =
        wave_decision(n, &frp, &fci, Some(Triangle::Lower), a.nnz(), ctx, cached_fwd);
    record_decision(ctx.obs(), "symgs", "f64_plus", &d, true, a.nnz(), ctx.config(), "reference");
    let mut compiled = CompiledOp {
        kind: OpKind::Symgs,
        strategy: d.strategy,
        ctx: ctx.clone(),
        plan: PlanSource::None,
        downgrade: d.downgrade,
        fast_cert: None,
        payload: Payload::Symgs { operand: OperandId::of(a), fwd: None, bwd: None },
    };
    if let Some((fs, fc)) = fwd_sched {
        let (brp, bci) = wavefront::symmetrize_upper(n, a.rowptr(), a.colind());
        let (bd, bwd_sched) =
            wave_decision(n, &brp, &bci, Some(Triangle::Upper), a.nnz(), ctx, cached_bwd);
        if let Some((bs, bc)) = bwd_sched {
            compiled.payload = Payload::Symgs {
                operand: OperandId::of(a),
                fwd: Some(Box::new((frp, fci, fs, fc))),
                bwd: Some(Box::new((brp, bci, bs, bc))),
            };
        } else {
            // Can only happen if the two symmetrizations disagree —
            // they never should, but never trust, always verify.
            compiled.strategy = Strategy::Specialized;
            compiled.downgrade = bd.downgrade;
        }
    }
    Ok(compiled)
}

// ---------------------------------------------------------------------
// The compiled artifact: accessors + typed run entry points.
// ---------------------------------------------------------------------

impl CompiledOp {
    /// The cache-key kind this op compiled as.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Why the parallel tier was not granted ([`reason::NONE`] = it
    /// was, or the size gate never asked).
    pub fn downgrade(&self) -> &'static str {
        self.downgrade
    }

    pub fn plan_shape(&self) -> String {
        self.plan.shape()
    }

    /// Which kernel tier the run entry points dispatch to: `"fast"`
    /// (certified bounds-check-free microkernels) or `"reference"`
    /// (the safe-indexed library kernels).
    pub fn tier(&self) -> &'static str {
        if self.fast_cert.is_some() {
            "fast"
        } else {
            "reference"
        }
    }

    /// The multivector width a [`OpSpec::SpmvMulti`] op was compiled
    /// for (0 for every other kind).
    pub fn multi_width(&self) -> usize {
        match self.payload {
            Payload::SpmvMulti { k } => k,
            _ => 0,
        }
    }

    /// Export this op's decisions for a structure-keyed plan cache
    /// (the input [`compile_hinted`] replays).
    pub fn hints(&self) -> OpHints {
        let schedules = match &self.payload {
            Payload::Sptrsv { schedule: Some((s, _)), .. } => vec![s.clone()],
            Payload::Symgs { fwd: Some(f), bwd: Some(b), .. } => {
                vec![f.2.clone(), b.2.clone()]
            }
            _ => Vec::new(),
        };
        OpHints {
            strategy: self.strategy,
            plan_shape: self.plan.shape(),
            fast_eligible: self.fast_cert.is_some(),
            fast_cert: self.fast_cert,
            schedules,
        }
    }

    /// The certified level schedule of an SpTRSV op, when the parallel
    /// tier is armed.
    pub fn schedule(&self) -> Option<&LevelSchedule> {
        match &self.payload {
            Payload::Sptrsv { schedule, .. } => schedule.as_ref().map(|(s, _)| s),
            _ => None,
        }
    }

    /// The certified forward-sweep level schedule of a SymGS op, when
    /// armed.
    pub fn forward_schedule(&self) -> Option<&LevelSchedule> {
        match &self.payload {
            Payload::Symgs { fwd, .. } => fwd.as_ref().map(|t| &t.2),
            _ => None,
        }
    }

    /// The certified backward-sweep level schedule of a SymGS op, when
    /// armed (what a plan cache persists alongside
    /// [`forward_schedule`](Self::forward_schedule)).
    pub fn backward_schedule(&self) -> Option<&LevelSchedule> {
        match &self.payload {
            Payload::Symgs { bwd, .. } => bwd.as_ref().map(|t| &t.2),
            _ => None,
        }
    }

    /// Render an SpMV op's plan as pseudocode, truthful about the
    /// tier: the fast tier shows the 4-lane unrolled reduction shape
    /// (see [`crate::codegen::emit_pseudocode_fast`]); the reference
    /// tier is the classic [`crate::codegen::emit_pseudocode`] loop.
    pub fn pseudocode(&self) -> String {
        let PlanSource::Compiled(kernel) = &self.plan else {
            return format!("// plan replayed from structure cache: {}", self.plan.shape());
        };
        match &self.fast_cert {
            Some(fast::MatrixCert::Csr(_)) => {
                crate::codegen::emit_pseudocode_fast(kernel, fast::LANES)
            }
            Some(_) => crate::codegen::emit_pseudocode_fast(kernel, 1),
            None => crate::codegen::emit_pseudocode(kernel),
        }
    }

    /// `y += A·x`. The matrix must be the one the op was compiled for
    /// (same format and shape; enforced by the shape checks in the
    /// underlying paths).
    pub fn run_spmv(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        // The cached certificate only covers the exact arrays it was
        // computed over; a different matrix (or a clone — the arrays
        // moved) falls back to the reference kernel.
        let use_fast = self.strategy == Strategy::Specialized
            && self.fast_cert.as_ref().is_some_and(|c| c.covers(a));
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized if use_fast => {
                    format!("fast_spmv_{}", kind_slug(a.kind()))
                }
                Strategy::Specialized => format!("spmv_{}", kind_slug(a.kind())),
                Strategy::Parallel => format!("par_spmv_{}", kind_slug(a.kind())),
                Strategy::Interpreted => "interp_spmv".to_string(),
            };
            obs.kernel(&name, spmv_counters(&a.meta()));
        }
        match self.strategy {
            Strategy::Specialized => {
                if use_fast {
                    fast::spmv_acc_fast(a, x, y, self.fast_cert.as_ref().unwrap());
                } else {
                    a.spmv_acc(x, y);
                }
                Ok(())
            }
            Strategy::Parallel => {
                a.par_spmv_acc(x, y, &self.ctx);
                Ok(())
            }
            Strategy::Interpreted => {
                let PlanSource::Compiled(kernel) = &self.plan else {
                    unreachable!("hinted ops never carry the interpreter tier")
                };
                let mut b = Bindings::new();
                b.bind_mat(MAT_A, a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, y);
                kernel.run(&mut b)
            }
        }
    }

    /// `C += A·B` into a dense row-major buffer `c` of shape
    /// `a.nrows() × b.ncols()`.
    pub fn run_spmm(&self, a: &SparseMatrix, b: &SparseMatrix, c: &mut [f64]) -> RelResult<()> {
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized => "spmm_csr_csr",
                Strategy::Parallel => "par_spmm_csr_csr",
                Strategy::Interpreted => "interp_spmm",
            };
            obs.kernel(name, spmm_counters(&a.meta(), &b.meta()));
        }
        match self.strategy {
            Strategy::Specialized | Strategy::Parallel => {
                let (SparseMatrix::Csr(ca), SparseMatrix::Csr(cb)) = (a, b) else {
                    unreachable!("specialised only for CSR×CSR")
                };
                let prod = if self.strategy == Strategy::Parallel {
                    par_kernels::par_spmm_csr_csr(ca, cb, &self.ctx)
                } else {
                    kernels::spmm_csr_csr(ca, cb)
                };
                let ncols = cb.ncols();
                for (i, j, v) in prod.to_triplets().canonicalize().entries().iter().copied() {
                    c[i * ncols + j] += v;
                }
                Ok(())
            }
            Strategy::Interpreted => {
                let PlanSource::Compiled(kernel) = &self.plan else {
                    unreachable!("hinted ops never carry the interpreter tier")
                };
                let mut binds = Bindings::new();
                binds.bind_mat(MAT_A, a).bind_mat(MAT_B, b).bind_mat_mut(
                    MAT_C,
                    c,
                    a.meta().nrows,
                    b.meta().ncols,
                );
                kernel.run(&mut binds)
            }
        }
    }

    /// `Y += A·X` with `X: ncols×k` and `Y: nrows×k`, both row-major.
    pub fn run_spmv_multi(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        let Payload::SpmvMulti { k } = self.payload else {
            unreachable!("run_spmv_multi on a non-multivector op")
        };
        let m = a.meta();
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized => "spmm_csr_dense",
                Strategy::Parallel => "par_spmm_csr_dense",
                Strategy::Interpreted => "interp_spmv_multi",
            };
            obs.kernel(name, spmv_multi_counters(&m, k));
        }
        match self.strategy {
            Strategy::Specialized => {
                let SparseMatrix::Csr(ca) = a else {
                    unreachable!("specialised only for CSR");
                };
                kernels::spmm_csr_dense(ca, x, k, y);
                Ok(())
            }
            Strategy::Parallel => {
                let SparseMatrix::Csr(ca) = a else {
                    unreachable!("specialised only for CSR");
                };
                par_kernels::par_spmm_csr_dense(ca, x, k, y, &self.ctx);
                Ok(())
            }
            Strategy::Interpreted => {
                let PlanSource::Compiled(kernel) = &self.plan else {
                    unreachable!("hinted ops never carry the interpreter tier")
                };
                let xm = bernoulli_formats::DenseMatrix::from_row_major(m.ncols, k, x.to_vec());
                let mut binds = Bindings::new();
                binds
                    .bind_mat(MAT_A, a)
                    .bind_mat(MAT_B, &xm)
                    .bind_mat_mut(MAT_C, y, m.nrows, k);
                kernel.run(&mut binds)
            }
        }
    }

    /// `y = y ⊕ (A ⊗ x)` under `S` (accumulating, like
    /// [`CompiledOp::run_spmv`]).
    pub fn run_semiring_spmv<S: Semiring>(
        &self,
        a: &SparseMatrix,
        x: &[S::Elem],
        y: &mut [S::Elem],
    ) -> RelResult<()> {
        debug_assert_eq!(self.kind.algebra(), S::NAME, "op compiled under a different algebra");
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let base = match self.strategy {
                Strategy::Specialized => format!("spmv_{}", kind_slug(a.kind())),
                Strategy::Parallel => format!("par_spmv_{}", kind_slug(a.kind())),
                Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
            };
            let name = algebra_kernel_name(&base, S::NAME);
            obs.kernel(&name, KernelCounters { algebra: S::NAME, ..spmv_counters(&a.meta()) });
        }
        match self.strategy {
            Strategy::Specialized => a.spmv_acc_in::<S>(x, y),
            Strategy::Parallel => a.par_spmv_acc_in::<S>(x, y, &self.ctx),
            Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
        }
        Ok(())
    }

    /// The product's nonzero entries `(i, j, v)` with `v ≠ S::zero()`,
    /// row-sorted, columns sorted within each row.
    pub fn run_semiring_spmm_entries<S: Semiring>(
        &self,
        a: &Csr,
        b: &Csr,
    ) -> RelResult<Vec<(usize, usize, S::Elem)>> {
        debug_assert_eq!(self.kind.algebra(), S::NAME, "op compiled under a different algebra");
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let base = match self.strategy {
                Strategy::Specialized => "spmm_csr_csr",
                Strategy::Parallel => "par_spmm_csr_csr",
                Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
            };
            let name = algebra_kernel_name(base, S::NAME);
            obs.kernel(
                &name,
                KernelCounters { algebra: S::NAME, ..spmm_counters(&a.meta(), &b.meta()) },
            );
        }
        let mut entries = match self.strategy {
            Strategy::Specialized => kernels::spmm_csr_csr_in::<S>(a, b),
            Strategy::Parallel => par_kernels::par_spmm_csr_csr_in::<S>(a, b, &self.ctx),
            Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
        };
        entries.sort_by_key(|&(i, j, _)| (i, j));
        Ok(entries)
    }

    /// Solve the triangular system for `b` into `x`. Bitwise-identical
    /// results on every tier.
    pub fn run_sptrsv(&self, a: &Csr, b: &[f64], x: &mut [f64]) -> RelResult<()> {
        let Payload::Sptrsv { op, schedule } = &self.payload else {
            unreachable!("run_sptrsv on a non-solve op")
        };
        let parallel = self.strategy == Strategy::Parallel && schedule.is_some();
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            obs.kernel(op.kernel_name(parallel), sptrsv_counters(a));
        }
        let ud = op.unit_diag();
        match (op, schedule) {
            (TriangularOp::Lower { .. }, Some((sched, cert))) if parallel => {
                par_kernels::par_sptrsv_csr_lower(a, ud, b, x, sched, cert, &self.ctx)
            }
            (TriangularOp::Upper { .. }, Some((sched, cert))) if parallel => {
                par_kernels::par_sptrsv_csr_upper(a, ud, b, x, sched, cert, &self.ctx)
            }
            (TriangularOp::Lower { .. }, _) => kernels::sptrsv_csr_lower(a, ud, b, x),
            (TriangularOp::Upper { .. }, _) => kernels::sptrsv_csr_upper(a, ud, b, x),
            (TriangularOp::LowerTransposed { .. }, _) => {
                kernels::sptrsv_csr_lower_transposed(a, ud, b, x)
            }
        }
        Ok(())
    }

    /// Whether the SymGS parallel tier is armed *for this operand*:
    /// the certificates bind the engine-owned symmetrized arrays; the
    /// operand fingerprint ties those arrays back to `a`.
    pub(crate) fn symgs_parallel_for(&self, a: &Csr) -> bool {
        match &self.payload {
            Payload::Symgs { operand, fwd, bwd } => {
                self.strategy == Strategy::Parallel
                    && fwd.is_some()
                    && bwd.is_some()
                    && *operand == OperandId::of(a)
            }
            _ => false,
        }
    }

    /// One forward (ascending-row) weighted Gauss-Seidel sweep on `x`
    /// in place. Bitwise-identical on every tier.
    pub fn sweep_forward(&self, a: &Csr, omega: f64, b: &[f64], x: &mut [f64]) -> RelResult<()> {
        let parallel = self.symgs_parallel_for(a);
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            obs.kernel(
                if parallel { "par_symgs_forward_csr" } else { "symgs_forward_csr" },
                sptrsv_counters(a),
            );
        }
        if parallel {
            let Payload::Symgs { fwd: Some(t), .. } = &self.payload else {
                unreachable!("symgs_parallel_for checked fwd")
            };
            let (rp, ci, s, c) = &**t;
            par_kernels::par_symgs_forward_csr(a, omega, b, x, rp, ci, s, c, &self.ctx);
        } else {
            kernels::symgs_forward_csr(a, omega, b, x);
        }
        Ok(())
    }

    /// One backward (descending-row) weighted Gauss-Seidel sweep on
    /// `x` in place. Bitwise-identical on every tier.
    pub fn sweep_backward(&self, a: &Csr, omega: f64, b: &[f64], x: &mut [f64]) -> RelResult<()> {
        let parallel = self.symgs_parallel_for(a);
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            obs.kernel(
                if parallel { "par_symgs_backward_csr" } else { "symgs_backward_csr" },
                sptrsv_counters(a),
            );
        }
        if parallel {
            let Payload::Symgs { bwd: Some(t), .. } = &self.payload else {
                unreachable!("symgs_parallel_for checked bwd")
            };
            let (rp, ci, s, c) = &**t;
            par_kernels::par_symgs_backward_csr(a, omega, b, x, rp, ci, s, c, &self.ctx);
        } else {
            kernels::symgs_backward_csr(a, omega, b, x);
        }
        Ok(())
    }

    /// Apply the symmetric Gauss-Seidel / SSOR preconditioner:
    /// `z ← M⁻¹·r` with `M ∝ (D + ωL)·D⁻¹·(D + ωU)`, computed as a
    /// forward sweep from `z = 0` followed by a backward sweep (the
    /// constant SSOR scaling `1/(ω(2−ω))` is dropped — preconditioned
    /// CG is invariant under positive scaling of `M`). `ω = 1` is
    /// symmetric Gauss-Seidel.
    pub fn apply_ssor(&self, a: &Csr, omega: f64, r: &[f64], z: &mut [f64]) -> RelResult<()> {
        z.fill(0.0);
        self.sweep_forward(a, omega, r, z)?;
        self.sweep_backward(a, omega, r, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_relational::semiring::F64Plus;

    #[test]
    fn parallel_refused_for_racy_nest() {
        // A nest the race checker rejects can never compile to
        // Strategy::Parallel, even when the plan is specialisable and
        // the work clears the threshold. `Y(i) = A(i,j)·X(j)` as a
        // scatter *assignment* races on Y(i) across j-iterations (BA01).
        use bernoulli_relational::scalar::UpdateOp;
        let mut racy = programs::matvec();
        racy.op = UpdateOp::Assign;
        let exec = ExecConfig::with_threads(4).threshold(1).oversubscribe(true);
        let d = do_any_f64(&racy, true, 1 << 20, &exec);
        assert_eq!(d.strategy, Strategy::Specialized);
        assert_eq!(d.downgrade, reason::RACY_NEST);
        // Same gates, the genuine reduction nest: Parallel granted.
        let d = do_any_f64(&programs::matvec(), true, 1 << 20, &exec);
        assert_eq!(d.strategy, Strategy::Parallel);
        assert_eq!(d.downgrade, reason::NONE);
        // All engine nests carry a certificate.
        for nest in [programs::matvec(), programs::matmat(), programs::matvec_multi()] {
            assert!(bernoulli_analysis::race::check_do_any(&nest).is_parallel_safe());
        }
    }

    #[test]
    fn gate_order_is_size_then_pool_then_race() {
        let nest = programs::matvec();
        // Below the threshold the race gate never runs.
        let d = do_any_f64(&nest, true, 4, &ExecConfig::with_threads(4).threshold(1000));
        assert_eq!((d.strategy, d.race_checked), (Strategy::Specialized, false));
        assert_eq!(d.downgrade, reason::NONE);
        // A requested-but-unavailable pool downgrades before the race
        // gate, too (threads_hint > 1, so the size gate passes; without
        // oversubscription the effective pool clamps to the hardware).
        let d = do_any_f64(&nest, true, 1 << 20, &ExecConfig::with_threads(4).threshold(1));
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if hw <= 1 {
            assert_eq!((d.strategy, d.race_checked), (Strategy::Specialized, false));
            assert_eq!(d.downgrade, reason::SINGLE_WORKER_POOL);
        } else {
            assert_eq!((d.strategy, d.race_checked), (Strategy::Parallel, true));
        }
        // Non-specialisable plans interpret without consulting any gate.
        let d = do_any_f64(&nest, false, 1 << 20, &ExecConfig::with_threads(4).threshold(1));
        assert_eq!((d.strategy, d.downgrade), (Strategy::Interpreted, reason::NONE));
    }

    #[test]
    fn op_kind_tags_round_trip() {
        let kinds = [
            OpKind::Spmv,
            OpKind::Spmm,
            OpKind::SpmvMulti,
            OpKind::SemiringSpmv("min_plus"),
            OpKind::SemiringSpmm("count_u64"),
            OpKind::SptrsvLower,
            OpKind::SptrsvUpper,
            OpKind::SptrsvLowerTransposed,
            OpKind::Symgs,
        ];
        for kind in kinds {
            assert_eq!(OpKind::from_tag(&kind.tag()), Some(kind), "tag {}", kind.tag());
        }
        assert_eq!(OpKind::from_tag("spmv.warp_shuffle"), None);
        assert_eq!(OpKind::from_tag("conv2d"), None);
    }

    #[test]
    fn spec_kind_folds_instance_parameters_away() {
        assert_eq!(OpSpec::SpmvMulti { k: 4 }.kind(), OpSpec::SpmvMulti { k: 9 }.kind());
        let lower = OpSpec::Sptrsv { op: TriangularOp::Lower { unit_diag: false } };
        let lower_unit = OpSpec::Sptrsv { op: TriangularOp::Lower { unit_diag: true } };
        assert_eq!(lower.kind(), lower_unit.kind());
        assert_ne!(
            lower.kind(),
            OpSpec::Sptrsv { op: TriangularOp::Upper { unit_diag: false } }.kind()
        );
    }

    #[test]
    fn mismatched_operand_bundle_is_refused() {
        let t = bernoulli_formats::gen::random_sparse(8, 8, 20, 9);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let err = compile::<F64Plus>(OpSpec::Symgs, Operands::Mat(&a), &ExecCtx::default());
        assert!(matches!(err, Err(RelError::Validation(_))));
        let err = compile::<F64Plus>(
            OpSpec::SemiringSpmv { algebra: "min_plus" },
            Operands::Mat(&a),
            &ExecCtx::default(),
        )
        .err();
        match err {
            Some(RelError::Validation(ref m)) if m.contains("does not match") => {}
            other => panic!("algebra mismatch must be refused: {:?}", other),
        }
    }
}
