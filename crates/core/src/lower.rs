//! Query extraction: dense loop nest → relational query (§2).
//!
//! Reads of each array become join terms over the loop variables; the
//! body becomes the per-tuple statement; and the sparsity predicate is
//! inferred with the Bik–Wijshoff rule already encoded in
//! [`Query::infer_predicate`]: a sparse array enters `P` exactly when a
//! zero of it annihilates the (reduction) update.

use crate::ast::{AccessRef, ExprAst, LoopNest};
use bernoulli_relational::error::{RelError, RelResult};
use bernoulli_relational::ids::RelId;
use bernoulli_relational::query::{Query, Term};
use bernoulli_relational::scalar::{Expr, Stmt, Target};

/// Lower a loop nest to a validated relational query.
pub fn extract_query(nest: &LoopNest) -> RelResult<Query> {
    // Build join terms from the distinct read references.
    let mut terms: Vec<Term> = Vec::new();
    let mut seen: Vec<RelId> = Vec::new();
    for acc in nest.rhs.accesses() {
        if seen.contains(&acc.array) {
            // The engine joins each relation once; repeated identical
            // references are fine (same term), differing ones are not.
            let existing = terms.iter().find(|t| t.rel() == acc.array).expect("seen term");
            let matches = match (existing, acc.indices.len()) {
                (Term::Vec { idx, .. }, 1) => *idx == acc.indices[0],
                (Term::Mat { row, col, .. }, 2) => {
                    *row == acc.indices[0] && *col == acc.indices[1]
                }
                _ => false,
            };
            if !matches {
                return Err(RelError::MalformedQuery(format!(
                    "array {} referenced with two different subscript lists",
                    acc.array
                )));
            }
            continue;
        }
        seen.push(acc.array);
        terms.push(term_for(nest, acc)?);
    }
    for p in &nest.perms {
        terms.push(Term::Perm { rel: p.id, from: p.from, to: p.to });
    }

    let target = target_for(nest, &nest.target)?;
    let stmt = Stmt::new(target, nest.op, lower_expr(&nest.rhs));
    let mut query = Query { vars: nest.vars.clone(), terms, predicate: Vec::new(), stmt };
    let sparse = |r: RelId| nest.array(r).is_some_and(|a| a.sparse);
    query.infer_predicate(&sparse);
    query.validate()?;
    Ok(query)
}

fn term_for(nest: &LoopNest, acc: &AccessRef) -> RelResult<Term> {
    let decl = nest
        .array(acc.array)
        .ok_or_else(|| RelError::MalformedQuery(format!("undeclared array {}", acc.array)))?;
    if decl.rank != acc.indices.len() {
        return Err(RelError::MalformedQuery(format!(
            "array {} declared rank {} but subscripted with {} indices",
            decl.name,
            decl.rank,
            acc.indices.len()
        )));
    }
    match acc.indices.len() {
        1 => Ok(Term::Vec { rel: acc.array, idx: acc.indices[0] }),
        2 => Ok(Term::Mat { rel: acc.array, row: acc.indices[0], col: acc.indices[1] }),
        n => Err(RelError::MalformedQuery(format!("rank-{n} arrays unsupported"))),
    }
}

fn target_for(nest: &LoopNest, acc: &AccessRef) -> RelResult<Target> {
    let decl = nest
        .array(acc.array)
        .ok_or_else(|| RelError::MalformedQuery(format!("undeclared target {}", acc.array)))?;
    if decl.sparse {
        return Err(RelError::MalformedQuery(format!(
            "target {} must be dense (DO-ANY reductions assemble into dense storage)",
            decl.name
        )));
    }
    match acc.indices.len() {
        0 => Ok(Target::Scalar { rel: acc.array }),
        1 => Ok(Target::VecElem { rel: acc.array, var: acc.indices[0] }),
        2 => Ok(Target::MatElem { rel: acc.array, row: acc.indices[0], col: acc.indices[1] }),
        n => Err(RelError::MalformedQuery(format!("rank-{n} targets unsupported"))),
    }
}

fn lower_expr(e: &ExprAst) -> Expr {
    match e {
        ExprAst::Access(a) => Expr::Value(a.array),
        ExprAst::Const(c) => Expr::Const(*c),
        ExprAst::Add(a, b) => lower_expr(a).add(lower_expr(b)),
        ExprAst::Sub(a, b) => lower_expr(a).sub(lower_expr(b)),
        ExprAst::Mul(a, b) => lower_expr(a).mul(lower_expr(b)),
        ExprAst::Neg(a) => lower_expr(a).neg(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::programs;
    use crate::ast::{ArrayDecl, PermDecl};
    use bernoulli_relational::ids::{MAT_A, PERM_P, VAR_I, VAR_J, VEC_X, VEC_Y};
    use bernoulli_relational::query::QueryBuilder;
    use bernoulli_relational::scalar::UpdateOp;

    #[test]
    fn matvec_lowers_to_paper_query() {
        let q = extract_query(&programs::matvec()).unwrap();
        let want = QueryBuilder::mat_vec_product().build();
        assert_eq!(q.terms, want.terms);
        assert_eq!(q.predicate, vec![MAT_A]); // x dense: NZ(x) ≡ true
        assert_eq!(q.stmt, want.stmt);
    }

    #[test]
    fn sparse_x_joins_predicate() {
        let mut nest = programs::matvec();
        nest.arrays.iter_mut().find(|a| a.id == VEC_X).unwrap().sparse = true;
        let q = extract_query(&nest).unwrap();
        assert_eq!(q.predicate, vec![MAT_A, VEC_X]);
    }

    #[test]
    fn all_canned_programs_lower() {
        for nest in [
            programs::matvec(),
            programs::matvec_transposed(),
            programs::matmat(),
            programs::mat_dot(),
            programs::matvec_row_permuted(),
        ] {
            extract_query(&nest).unwrap();
        }
    }

    #[test]
    fn permutation_becomes_perm_term(){
        let q = extract_query(&programs::matvec_row_permuted()).unwrap();
        assert!(q.terms.iter().any(|t| matches!(t, Term::Perm { rel, .. } if *rel == PERM_P)));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut nest = programs::matvec();
        nest.arrays.iter_mut().find(|a| a.id == MAT_A).unwrap().rank = 1;
        assert!(extract_query(&nest).is_err());
    }

    #[test]
    fn sparse_target_rejected() {
        let mut nest = programs::matvec();
        nest.arrays.iter_mut().find(|a| a.id == VEC_Y).unwrap().sparse = true;
        assert!(extract_query(&nest).is_err());
    }

    #[test]
    fn conflicting_subscripts_rejected() {
        use crate::ast::{AccessRef, ExprAst, LoopNest};
        let nest = LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![
                ArrayDecl { id: VEC_X, name: "X".into(), rank: 1, sparse: false },
                ArrayDecl { id: VEC_Y, name: "Y".into(), rank: 1, sparse: false },
            ],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(VEC_X, VAR_I))
                .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J))),
        );
        assert!(extract_query(&nest).is_err());
        let _ = PermDecl { id: PERM_P, from: VAR_I, to: VAR_J };
    }
}
