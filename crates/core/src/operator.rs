//! The linear-operator seam between engines and solvers.
//!
//! Krylov solvers only ever need one thing from a matrix: *apply it*.
//! [`Operator`] captures exactly that — `y = A·x` with overwrite
//! semantics — plus the cost model and name that telemetry wants, so
//! the solvers in `bernoulli-solvers` take `&dyn Operator` instead of
//! one entry point per engine/format/closure combination. Anything
//! that can multiply implements it: a compiled [`SpmvEngine`] bound to
//! its matrix ([`SpmvEngine::bind`]), a [`SpmvMultiEngine`] over a
//! flattened block vector, a raw [`SparseMatrix`] or [`Csr`] (no
//! compilation step), or an arbitrary closure ([`FnOperator`]) for
//! matrix-free operators.

use std::cell::RefCell;

use crate::engines::{SemiringSpmvEngine, SpmvEngine, SpmvMultiEngine};
use crate::pipeline::{spmv_counters, spmv_multi_counters};
use bernoulli_formats::{Csr, SparseMatrix};
use bernoulli_obs::events::KernelCounters;
use bernoulli_relational::access::MatrixAccess;
use bernoulli_relational::error::RelResult;
use bernoulli_relational::semiring::Semiring;

/// A linear operator `y = A·x` with **overwrite** semantics: `apply`
/// must fill `y` entirely (implementations built on the accumulating
/// engines zero `y` first).
pub trait Operator {
    /// Length `apply` requires of `y`.
    fn out_len(&self) -> usize;

    /// Length `apply` requires of `x`.
    fn in_len(&self) -> usize;

    /// `y = A·x` (overwriting `y`).
    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()>;

    /// The per-application cost model (nnz touched, flops, bytes) for
    /// solver telemetry. The default reports an empty model, which is
    /// correct for operators whose cost is unknown (matrix-free
    /// closures).
    fn model(&self) -> KernelCounters {
        KernelCounters::default()
    }

    /// A short name for telemetry spans ("spmv", "spmv_multi", …).
    fn name(&self) -> &str {
        "operator"
    }
}

/// A compiled [`SpmvEngine`] bound to the matrix it was compiled for —
/// the usual way a solver consumes an engine.
pub struct BoundSpmv<'a> {
    engine: &'a SpmvEngine,
    a: &'a SparseMatrix,
}

impl SpmvEngine {
    /// Bind the engine to its matrix as an [`Operator`]. The matrix
    /// must be the one the engine was compiled for.
    pub fn bind<'a>(&'a self, a: &'a SparseMatrix) -> BoundSpmv<'a> {
        BoundSpmv { engine: self, a }
    }
}

impl Operator for BoundSpmv<'_> {
    fn out_len(&self) -> usize {
        self.a.meta().nrows
    }

    fn in_len(&self) -> usize {
        self.a.meta().ncols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        y.fill(0.0);
        self.engine.run(self.a, x, y)
    }

    fn model(&self) -> KernelCounters {
        spmv_counters(&self.a.meta())
    }

    fn name(&self) -> &str {
        "spmv"
    }
}

/// A compiled [`SpmvMultiEngine`] bound to its matrix: the operator on
/// flattened row-major block vectors (`in_len = ncols·k`,
/// `out_len = nrows·k`), for block Krylov methods.
pub struct BoundSpmvMulti<'a> {
    engine: &'a SpmvMultiEngine,
    a: &'a SparseMatrix,
}

impl SpmvMultiEngine {
    /// Bind the engine to its matrix as an [`Operator`] over flattened
    /// `n × k` block vectors.
    pub fn bind<'a>(&'a self, a: &'a SparseMatrix) -> BoundSpmvMulti<'a> {
        BoundSpmvMulti { engine: self, a }
    }
}

impl Operator for BoundSpmvMulti<'_> {
    fn out_len(&self) -> usize {
        self.a.meta().nrows * self.engine.k()
    }

    fn in_len(&self) -> usize {
        self.a.meta().ncols * self.engine.k()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        y.fill(0.0);
        self.engine.run(self.a, x, y)
    }

    fn model(&self) -> KernelCounters {
        spmv_multi_counters(&self.a.meta(), self.engine.k())
    }

    fn name(&self) -> &str {
        "spmv_multi"
    }
}

/// Any sparse matrix is an operator directly (serial `spmv_acc`, no
/// compilation step) — handy when no engine/ctx policy is needed.
impl Operator for SparseMatrix {
    fn out_len(&self) -> usize {
        self.meta().nrows
    }

    fn in_len(&self) -> usize {
        self.meta().ncols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        y.fill(0.0);
        self.spmv_acc(x, y);
        Ok(())
    }

    fn model(&self) -> KernelCounters {
        spmv_counters(&self.meta())
    }

    fn name(&self) -> &str {
        "spmv"
    }
}

/// A bare CSR matrix is an operator (serial kernel).
impl Operator for Csr {
    fn out_len(&self) -> usize {
        self.nrows()
    }

    fn in_len(&self) -> usize {
        self.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        y.fill(0.0);
        bernoulli_formats::kernels::spmv_csr(self, x, y);
        Ok(())
    }

    fn model(&self) -> KernelCounters {
        let nnz = self.nnz() as u64;
        KernelCounters {
            nnz,
            flops: 2 * nnz,
            bytes: 8 * (2 * nnz + self.ncols() as u64 + 2 * self.nrows() as u64),
            algebra: "f64_plus",
        }
    }

    fn name(&self) -> &str {
        "spmv_csr"
    }
}

/// The semiring-generic operator seam: `y = A·x` under an arbitrary
/// [`Semiring`], with the same overwrite semantics as [`Operator`].
/// Graph algorithms (BFS frontiers over `bool_or_and`, shortest-path
/// relaxation over `min_plus`) consume this instead of hard-wiring a
/// kernel, exactly as the f64 solvers consume [`Operator`].
pub trait SemiringOperator<S: Semiring> {
    /// Length `apply` requires of `y`.
    fn out_len(&self) -> usize;

    /// Length `apply` requires of `x`.
    fn in_len(&self) -> usize;

    /// `y = A·x` under `S` (overwriting `y`; implementations built on
    /// the accumulating engines fill `y` with `S::zero()` first).
    fn apply(&self, x: &[S::Elem], y: &mut [S::Elem]) -> RelResult<()>;

    /// Per-application cost model for telemetry (counts ⊗⊕ pairs, not
    /// classical flops, off the f64 algebra).
    fn model(&self) -> KernelCounters {
        KernelCounters::default()
    }

    /// A short name for telemetry spans.
    fn name(&self) -> &str {
        "semiring_operator"
    }
}

/// A compiled [`SemiringSpmvEngine`] bound to its matrix — the usual
/// way a graph algorithm consumes the engine.
pub struct BoundSemiringSpmv<'a, S: Semiring> {
    engine: &'a SemiringSpmvEngine<S>,
    a: &'a SparseMatrix,
}

impl<S: Semiring> SemiringSpmvEngine<S> {
    /// Bind the engine to its matrix as a [`SemiringOperator`]. The
    /// matrix must be the one the engine was compiled for.
    pub fn bind<'a>(&'a self, a: &'a SparseMatrix) -> BoundSemiringSpmv<'a, S> {
        BoundSemiringSpmv { engine: self, a }
    }
}

impl<S: Semiring> SemiringOperator<S> for BoundSemiringSpmv<'_, S> {
    fn out_len(&self) -> usize {
        self.a.meta().nrows
    }

    fn in_len(&self) -> usize {
        self.a.meta().ncols
    }

    fn apply(&self, x: &[S::Elem], y: &mut [S::Elem]) -> RelResult<()> {
        y.fill(S::zero());
        self.engine.run(self.a, x, y)
    }

    fn model(&self) -> KernelCounters {
        KernelCounters { algebra: S::NAME, ..spmv_counters(&self.a.meta()) }
    }

    fn name(&self) -> &str {
        "spmv"
    }
}

/// A matrix-free operator from a closure. The closure may capture
/// mutable state (it is stored behind a `RefCell`), but `apply` must
/// not reenter the same operator.
pub struct FnOperator<F> {
    out_len: usize,
    in_len: usize,
    name: String,
    f: RefCell<F>,
}

impl<F: FnMut(&[f64], &mut [f64])> FnOperator<F> {
    /// An `out_len × in_len` operator applying `f(x, y)`; `f` must
    /// overwrite `y` completely.
    pub fn new(out_len: usize, in_len: usize, f: F) -> FnOperator<F> {
        FnOperator { out_len, in_len, name: "matfree".to_string(), f: RefCell::new(f) }
    }

    /// Replace the telemetry name (default `"matfree"`).
    pub fn named(mut self, name: &str) -> FnOperator<F> {
        self.name = name.to_string();
        self
    }
}

impl<F: FnMut(&[f64], &mut [f64])> Operator for FnOperator<F> {
    fn out_len(&self) -> usize {
        self.out_len
    }

    fn in_len(&self) -> usize {
        self.in_len
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        (self.f.borrow_mut())(x, y);
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::{FormatKind, Triplets};

    fn sample(n: usize, seed: u64) -> Triplets {
        bernoulli_formats::gen::random_sparse(n, n, n * 3, seed)
    }

    #[test]
    fn bound_engine_matches_direct_matrix_apply() {
        let t = sample(14, 51);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvEngine::compile(&a).unwrap();
        let bound = eng.bind(&a);
        assert_eq!((bound.out_len(), bound.in_len()), (14, 14));
        assert_eq!(bound.name(), "spmv");
        let x: Vec<f64> = (0..14).map(|i| (i as f64 * 0.33).sin()).collect();
        // Overwrite semantics: garbage in y must not leak through.
        let mut y1 = vec![f64::NAN; 14];
        bound.apply(&x, &mut y1).unwrap();
        let mut y2 = vec![7.5; 14];
        Operator::apply(&a, &x, &mut y2).unwrap();
        assert_eq!(y1, y2);
        let m = bound.model();
        assert_eq!(m.nnz, a.meta().nnz as u64);
        assert_eq!(m.flops, 2 * m.nnz);
    }

    #[test]
    fn multi_engine_operator_flattens_block_vectors() {
        let t = sample(10, 52);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let k = 3;
        let eng = SpmvMultiEngine::compile(&a, k).unwrap();
        let op = eng.bind(&a);
        assert_eq!((op.out_len(), op.in_len()), (30, 30));
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 - 1.0).collect();
        let mut y = vec![f64::NAN; 30];
        op.apply(&x, &mut y).unwrap();
        for col in 0..k {
            let xc: Vec<f64> = (0..10).map(|r| x[r * k + col]).collect();
            let mut yc = vec![0.0; 10];
            t.matvec_acc(&xc, &mut yc);
            for r in 0..10 {
                assert!((y[r * k + col] - yc[r]).abs() < 1e-12, "col {col} row {r}");
            }
        }
    }

    #[test]
    fn fn_operator_runs_closures_with_state() {
        let mut calls = 0usize;
        let op = FnOperator::new(3, 3, move |x: &[f64], y: &mut [f64]| {
            calls += 1;
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 2.0 * xi + calls as f64;
            }
        })
        .named("twice-plus-count");
        assert_eq!(op.name(), "twice-plus-count");
        assert_eq!(op.model(), KernelCounters::default());
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        op.apply(&x, &mut y).unwrap();
        assert_eq!(y, [3.0, 5.0, 7.0]);
        op.apply(&x, &mut y).unwrap();
        assert_eq!(y, [4.0, 6.0, 8.0]);
    }

    #[test]
    fn semiring_operator_seam_overwrites_under_the_algebra() {
        use bernoulli_relational::semiring::{BoolOrAnd, Semiring};
        // Edges 0→1→2 stored as A(dst, src): one Bool-SpMV advances the
        // frontier one hop, exactly BFS's expansion step.
        let t = Triplets::from_entries(3, 3, &[(1, 0, 1.0), (2, 1, 1.0)]);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SemiringSpmvEngine::<BoolOrAnd>::compile(&a).unwrap();
        let op = eng.bind(&a);
        assert_eq!((SemiringOperator::out_len(&op), SemiringOperator::in_len(&op)), (3, 3));
        assert_eq!(SemiringOperator::name(&op), "spmv");
        assert_eq!(SemiringOperator::model(&op).algebra, BoolOrAnd::NAME);
        // Overwrite semantics: garbage in y must not leak through.
        let mut y = [true, true, true];
        op.apply(&[true, false, false], &mut y).unwrap();
        assert_eq!(y, [false, true, false]);
        op.apply(&y.clone(), &mut y).unwrap();
        assert_eq!(y, [false, false, true]);
    }

    #[test]
    fn csr_operator_agrees_with_sparse_matrix() {
        let t = sample(12, 53);
        let sm = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let SparseMatrix::Csr(ref c) = sm else { unreachable!() };
        let x: Vec<f64> = (0..12).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.0; 12];
        let mut y2 = vec![1.0; 12];
        Operator::apply(c, &x, &mut y1).unwrap();
        Operator::apply(&sm, &x, &mut y2).unwrap();
        assert_eq!(y1, y2);
        assert_eq!(c.model().nnz, sm.model().nnz);
    }
}
