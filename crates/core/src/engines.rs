//! DO-ANY engine facades over the unified compilation core.
//!
//! The Bernoulli compiler emitted C tuned to each format; a library
//! cannot JIT, so the equivalent is **monomorphised kernels selected by
//! plan shape**: the planner runs exactly as in the paper, and when the
//! plan it produces is a format's natural traversal, execution
//! dispatches (once, outside all loops) to the hand-tuned kernel for
//! that traversal. Any other plan — exotic formats, sparse vectors,
//! unusual predicates — runs on the general interpreter, so the system
//! is never *wrong*, only occasionally slower. The dispatch-hoisting
//! ablation bench quantifies the difference.
//!
//! Since the pipeline unification, every type here is a thin typed
//! facade over [`crate::pipeline::CompiledOp`]: compilation — the gate
//! chain, the obs `strategies` record, the structure-cache hint seam —
//! lives once in [`crate::pipeline`], and the facades contribute only
//! their op's [`OpSpec`] and a typed `run` signature. The facades are
//! kept for source compatibility and ergonomics; new code (and
//! anything dispatching heterogeneous ops, like the `bernoulli-tune`
//! `Dispatcher`) should target [`crate::pipeline::compile`] directly.
//! Results are bitwise-identical to the pre-unification engines on
//! every tier (pinned by `tests/pipeline_equivalence.rs`).
//!
//! Every engine has exactly two entry points: `compile(operands)` — the
//! default serial, uninstrumented context — and
//! `compile_in(operands, &ExecCtx)`, which reads *all* policy (threads,
//! parallel threshold, checked mode, specialization, telemetry) from
//! the one context object instead of growing per-capability parameter
//! variants. Engines with a structure-cache replay seam add
//! `compile_hinted(operands, &ExecCtx, &OpHints)`.

use crate::ast::LoopNest;
use crate::pipeline::{self, CompiledOp, OpHints, OpSpec, Operands};
use bernoulli_formats::{Csr, ExecConfig, ExecCtx, SparseMatrix};
use bernoulli_relational::error::RelResult;
use bernoulli_relational::semiring::{AlgebraProps, F64Plus, Semiring};
use std::marker::PhantomData;

pub use crate::pipeline::Strategy;

/// The planning verdicts a structure-keyed plan cache stores and
/// replays. Historical name: before the pipeline unification only SpMV
/// had a hint seam; the unified [`OpHints`] now serves every op kind.
pub type SpmvHints = OpHints;

/// The one strategy decision every DO-ANY engine routes through.
///
/// [`Strategy::Parallel`] requires all three gates: the plan must be
/// specialisable (a known hand-kernel traversal), the operand must
/// clear the [`ExecConfig`] work threshold, and the DO-ANY race checker
/// of `bernoulli-analysis` must certify the loop nest parallel-safe.
/// The canned kernels all carry a certificate (disjoint writes or a
/// commutative reduction), so behaviour is unchanged for them; a racy
/// nest (say, a scatter *assignment*) is provably downgraded to
/// [`Strategy::Specialized`] rather than run concurrently. Public so
/// tests and downstream engines can audit the exact decision their
/// `compile_in` makes. Delegates to [`pipeline::do_any_decision`],
/// which owns the gate chain.
pub fn choose_strategy(
    nest: &LoopNest,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
) -> Strategy {
    pipeline::do_any_decision(nest, specializable, work, exec, &AlgebraProps::f64_plus()).strategy
}

/// A compiled `y += A·x` engine for one matrix.
pub struct SpmvEngine {
    op: CompiledOp,
}

impl SpmvEngine {
    /// Compile for a matrix (dense `x`/`y`), choosing the execution
    /// strategy from the plan shape. Uses the default [`ExecCtx`]:
    /// serial, unchecked, uninstrumented — the original library
    /// behaviour. Use [`SpmvEngine::compile_in`] for thresholded
    /// parallel dispatch, checked mode or telemetry.
    pub fn compile(a: &SparseMatrix) -> RelResult<SpmvEngine> {
        Self::compile_in(a, &ExecCtx::default())
    }

    /// Compile under an execution context. The plan is exactly as in
    /// [`SpmvEngine::compile`]; the context decides everything else: a
    /// specialisable plan whose matrix clears the work threshold
    /// compiles to [`Strategy::Parallel`] (below the threshold, or
    /// serial, the engine is byte-identical to the default one — same
    /// plan shape, same kernel, same strategy);
    /// [`ExecCtx::specialization`]`(false)` forces the interpreter;
    /// [`ExecCtx::checked`] validates operands before compiling; an
    /// [instrumented](ExecCtx::instrument) context records plan
    /// provenance, the strategy decision and per-run kernel counters.
    pub fn compile_in(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<SpmvEngine> {
        Ok(SpmvEngine { op: pipeline::compile::<F64Plus>(OpSpec::Spmv, Operands::Mat(a), ctx)? })
    }

    /// Compile from cached hints, skipping the planner search and the
    /// race-gate re-derivation — the warm path of a structure-keyed
    /// plan cache. Every soundness gate is preserved: checked-mode
    /// operand validation still runs, the cheap O(1) parallel gates
    /// (work threshold, worker pool) are re-applied against *this*
    /// context, and the fast tier is armed only by a certificate that
    /// covers this exact operand — the cached one when its content
    /// fingerprint matches, else a fresh sanitizer run. A hinted
    /// [`Strategy::Interpreted`] needs a real plan to interpret, so it
    /// falls back to the full [`SpmvEngine::compile_in`]. Results are
    /// identical to the cold path on every tier; only compile latency
    /// changes.
    pub fn compile_hinted(
        a: &SparseMatrix,
        ctx: &ExecCtx,
        hints: &SpmvHints,
    ) -> RelResult<SpmvEngine> {
        Ok(SpmvEngine {
            op: pipeline::compile_hinted::<F64Plus>(OpSpec::Spmv, Operands::Mat(a), ctx, hints)?,
        })
    }

    /// Export this engine's decisions for a structure-keyed plan cache
    /// (the input [`SpmvEngine::compile_hinted`] replays).
    pub fn hints(&self) -> SpmvHints {
        self.op.hints()
    }

    pub fn strategy(&self) -> Strategy {
        self.op.strategy()
    }

    pub fn plan_shape(&self) -> String {
        self.op.plan_shape()
    }

    /// Which kernel tier [`SpmvEngine::run`] will dispatch to:
    /// `"fast"` (certified bounds-check-free microkernels) or
    /// `"reference"` (the safe-indexed library kernels).
    pub fn tier(&self) -> &'static str {
        self.op.tier()
    }

    /// Render this engine's plan as pseudocode, truthful about the
    /// tier: the fast tier shows the 4-lane unrolled reduction shape
    /// (see [`crate::codegen::emit_pseudocode_fast`]); the reference
    /// tier is the classic [`crate::codegen::emit_pseudocode`] loop.
    pub fn pseudocode(&self) -> String {
        self.op.pseudocode()
    }

    /// `y += A·x`. The matrix must be the one the engine was compiled
    /// for (same format and shape; enforced by the shape checks in the
    /// underlying paths).
    pub fn run(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        self.op.run_spmv(a, x, y)
    }
}

/// A compiled `C += A·B` engine (dense result, row-major buffer).
pub struct SpmmEngine {
    op: CompiledOp,
}

impl SpmmEngine {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix, b: &SparseMatrix) -> RelResult<SpmmEngine> {
        Self::compile_in(a, b, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(a: &SparseMatrix, b: &SparseMatrix, ctx: &ExecCtx) -> RelResult<SpmmEngine> {
        Ok(SpmmEngine {
            op: pipeline::compile::<F64Plus>(OpSpec::Spmm, Operands::MatPair(a, b), ctx)?,
        })
    }

    pub fn strategy(&self) -> Strategy {
        self.op.strategy()
    }

    /// `C += A·B` into a dense row-major buffer `c` of shape
    /// `a.nrows() × b.ncols()`.
    pub fn run(&self, a: &SparseMatrix, b: &SparseMatrix, c: &mut [f64]) -> RelResult<()> {
        self.op.run_spmm(a, b, c)
    }
}

/// A compiled `Y += A·X` engine for a sparse matrix times a skinny
/// dense multivector (`X` is `ncols × k` row-major, `Y` is `nrows × k`)
/// — the paper's §6 "product of a sparse matrix and a skinny dense
/// matrix", the workhorse of block Krylov methods.
pub struct SpmvMultiEngine {
    op: CompiledOp,
}

impl SpmvMultiEngine {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix, k: usize) -> RelResult<SpmvMultiEngine> {
        Self::compile_in(a, k, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(a: &SparseMatrix, k: usize, ctx: &ExecCtx) -> RelResult<SpmvMultiEngine> {
        Ok(SpmvMultiEngine {
            op: pipeline::compile::<F64Plus>(OpSpec::SpmvMulti { k }, Operands::Mat(a), ctx)?,
        })
    }

    /// Compile from cached hints — the structure-cache warm path (see
    /// [`SpmvEngine::compile_hinted`] for the soundness contract). The
    /// planner search and race-gate re-derivation are skipped; the
    /// O(1) gates re-run against this context and operand.
    pub fn compile_hinted(
        a: &SparseMatrix,
        k: usize,
        ctx: &ExecCtx,
        hints: &OpHints,
    ) -> RelResult<SpmvMultiEngine> {
        Ok(SpmvMultiEngine {
            op: pipeline::compile_hinted::<F64Plus>(
                OpSpec::SpmvMulti { k },
                Operands::Mat(a),
                ctx,
                hints,
            )?,
        })
    }

    /// Export this engine's decisions for a structure-keyed plan cache.
    pub fn hints(&self) -> OpHints {
        self.op.hints()
    }

    pub fn strategy(&self) -> Strategy {
        self.op.strategy()
    }

    pub fn plan_shape(&self) -> String {
        self.op.plan_shape()
    }

    /// The multivector width the engine was compiled for.
    pub fn k(&self) -> usize {
        self.op.multi_width()
    }

    /// `Y += A·X` with `X: ncols×k` and `Y: nrows×k`, both row-major.
    pub fn run(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        self.op.run_spmv_multi(a, x, y)
    }
}

/// A compiled `y = y ⊕ (A ⊗ x)` engine under an arbitrary
/// [`Semiring`] — SpMV as a relational query whose scalar algebra is a
/// type parameter. Same planner, same [`ExecCtx`] policy, same strategy
/// telemetry as [`SpmvEngine`]; three differences follow from leaving
/// the classical algebra:
///
/// * Stored values lift through `S::from_f64` (structural zeros lift to
///   `S::zero()`, so formats that pad — Dense, ITPACK, Diagonal — stay
///   correct under algebras like min-plus where the identity is +∞).
/// * There is no interpreter tier off the f64 algebra, so
///   [`ExecCtx::specialization`] is moot: every format dispatches to
///   its generic serial kernel, which *is* the baseline tier.
/// * The parallel gate consults the race checker **under `S`'s
///   algebra**: a non-associative-commutative ⊕ is refused the
///   reduction certificate (BA06) and provably compiles to the serial
///   tier — scatter-family formats additionally self-gate at run time.
pub struct SemiringSpmvEngine<S: Semiring> {
    op: CompiledOp,
    _algebra: PhantomData<S>,
}

impl<S: Semiring> SemiringSpmvEngine<S> {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix) -> RelResult<SemiringSpmvEngine<S>> {
        Self::compile_in(a, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<SemiringSpmvEngine<S>> {
        Ok(SemiringSpmvEngine {
            op: pipeline::compile::<S>(
                OpSpec::SemiringSpmv { algebra: S::NAME },
                Operands::Mat(a),
                ctx,
            )?,
            _algebra: PhantomData,
        })
    }

    /// Compile from cached hints — the structure-cache warm path. The
    /// cached verdict already encodes the per-algebra race check (the
    /// cache key carries `S::NAME`), so only the O(1) gates re-run.
    pub fn compile_hinted(
        a: &SparseMatrix,
        ctx: &ExecCtx,
        hints: &OpHints,
    ) -> RelResult<SemiringSpmvEngine<S>> {
        Ok(SemiringSpmvEngine {
            op: pipeline::compile_hinted::<S>(
                OpSpec::SemiringSpmv { algebra: S::NAME },
                Operands::Mat(a),
                ctx,
                hints,
            )?,
            _algebra: PhantomData,
        })
    }

    /// Export this engine's decisions for a structure-keyed plan cache.
    pub fn hints(&self) -> OpHints {
        self.op.hints()
    }

    pub fn strategy(&self) -> Strategy {
        self.op.strategy()
    }

    pub fn plan_shape(&self) -> String {
        self.op.plan_shape()
    }

    /// `y = y ⊕ (A ⊗ x)` under `S` (accumulating, like
    /// [`SpmvEngine::run`]).
    pub fn run(&self, a: &SparseMatrix, x: &[S::Elem], y: &mut [S::Elem]) -> RelResult<()> {
        self.op.run_semiring_spmv::<S>(a, x, y)
    }
}

/// A compiled `C = C ⊕ (A ⊗ B)` engine (CSR × CSR, sparse result)
/// under an arbitrary [`Semiring`] — Gustavson's algorithm with the
/// scalar algebra as a type parameter, the workhorse behind triangle
/// counting (`count_u64`) and transitive-step queries (`bool_or_and`).
/// Only CSR operands carry the generic hand kernel, so unlike
/// [`SpmmEngine`] the operands are [`Csr`] by construction.
pub struct SemiringSpmmEngine<S: Semiring> {
    op: CompiledOp,
    _algebra: PhantomData<S>,
}

impl<S: Semiring> SemiringSpmmEngine<S> {
    /// Compile with the default [`ExecCtx`].
    pub fn compile(a: &Csr, b: &Csr) -> RelResult<SemiringSpmmEngine<S>> {
        Self::compile_in(a, b, &ExecCtx::default())
    }

    /// Compile under an execution context.
    pub fn compile_in(a: &Csr, b: &Csr, ctx: &ExecCtx) -> RelResult<SemiringSpmmEngine<S>> {
        Ok(SemiringSpmmEngine {
            op: pipeline::compile::<S>(
                OpSpec::SemiringSpmm { algebra: S::NAME },
                Operands::CsrPair(a, b),
                ctx,
            )?,
            _algebra: PhantomData,
        })
    }

    /// Compile from cached hints — the structure-cache warm path. The
    /// cached verdict already encodes the per-algebra race check (the
    /// cache key carries `S::NAME`), so only the O(1) gates re-run.
    pub fn compile_hinted(
        a: &Csr,
        b: &Csr,
        ctx: &ExecCtx,
        hints: &OpHints,
    ) -> RelResult<SemiringSpmmEngine<S>> {
        Ok(SemiringSpmmEngine {
            op: pipeline::compile_hinted::<S>(
                OpSpec::SemiringSpmm { algebra: S::NAME },
                Operands::CsrPair(a, b),
                ctx,
                hints,
            )?,
            _algebra: PhantomData,
        })
    }

    /// Export this engine's decisions for a structure-keyed plan cache.
    pub fn hints(&self) -> OpHints {
        self.op.hints()
    }

    pub fn strategy(&self) -> Strategy {
        self.op.strategy()
    }

    /// The product's nonzero entries `(i, j, v)` with `v ≠ S::zero()`,
    /// row-sorted, columns sorted within each row.
    pub fn run_entries(&self, a: &Csr, b: &Csr) -> RelResult<Vec<(usize, usize, S::Elem)>> {
        self.op.run_semiring_spmm_entries::<S>(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::reason;
    use bernoulli_formats::{fast, FormatKind, Triplets};
    use bernoulli_obs::Obs;
    use bernoulli_relational::access::MatrixAccess;
    use bernoulli_relational::error::RelError;

    fn sample(n: usize, seed: u64) -> Triplets {
        bernoulli_formats::gen::random_sparse(n, n, n * 3, seed)
    }

    #[test]
    fn spmv_specializes_on_natural_plans() {
        let t = sample(12, 1);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SpmvEngine::compile(&a).unwrap();
            assert_eq!(
                eng.strategy(),
                Strategy::Specialized,
                "format {kind} plan {}",
                eng.plan_shape()
            );
        }
    }

    #[test]
    fn spmv_specialized_and_interpreted_agree() {
        let t = sample(15, 2);
        let x: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let interp = ExecCtx::default().specialization(false);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let fast = SpmvEngine::compile(&a).unwrap();
            let slow = SpmvEngine::compile_in(&a, &interp).unwrap();
            assert_eq!(slow.strategy(), Strategy::Interpreted);
            let mut y1 = vec![0.0; 15];
            let mut y2 = vec![0.0; 15];
            fast.run(&a, &x, &mut y1).unwrap();
            slow.run(&a, &x, &mut y2).unwrap();
            for (a1, a2) in y1.iter().zip(&y2) {
                assert!((a1 - a2).abs() < 1e-12, "format {kind}");
            }
        }
    }

    #[test]
    fn spmm_csr_csr_specializes() {
        let ta = sample(10, 3);
        let tb = sample(10, 4);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let eng = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        let mut c1 = vec![0.0; 100];
        eng.run(&a, &b, &mut c1).unwrap();
        // Interpreted agrees.
        let slow =
            SpmmEngine::compile_in(&a, &b, &ExecCtx::default().specialization(false)).unwrap();
        let mut c2 = vec![0.0; 100];
        slow.run(&a, &b, &mut c2).unwrap();
        for (x1, x2) in c1.iter().zip(&c2) {
            assert!((x1 - x2).abs() < 1e-10);
        }
    }

    #[test]
    fn spmm_with_coordinate_driver_uses_flat_plan() {
        // COO has no hierarchy: the planner must open with a flat sweep
        // of A binding (i, k), then run B's row below it.
        let ta = sample(10, 31);
        let tb = sample(10, 32);
        let a = SparseMatrix::from_triplets(FormatKind::Coordinate, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let eng = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(eng.strategy(), Strategy::Interpreted);
        let mut c = vec![0.0; 100];
        eng.run(&a, &b, &mut c).unwrap();
        let da = bernoulli_formats::DenseMatrix::from_triplets(&ta);
        let db = bernoulli_formats::DenseMatrix::from_triplets(&tb);
        for i in 0..10 {
            for j in 0..10 {
                let mut want = 0.0;
                for k in 0..10 {
                    want += da[(i, k)] * db[(k, j)];
                }
                assert!((c[i * 10 + j] - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn multivector_product_specializes_for_csr() {
        let t = sample(12, 7);
        let k = 4;
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvMultiEngine::compile(&a, k).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized, "plan {}", eng.plan_shape());
        assert_eq!(eng.k(), k);
        let x: Vec<f64> = (0..12 * k).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; 12 * k];
        eng.run(&a, &x, &mut y).unwrap();
        // Column-by-column check against plain SpMV.
        for col in 0..k {
            let xc: Vec<f64> = (0..12).map(|r| x[r * k + col]).collect();
            let mut yc = vec![0.0; 12];
            t.matvec_acc(&xc, &mut yc);
            for r in 0..12 {
                assert!((y[r * k + col] - yc[r]).abs() < 1e-10, "col {col} row {r}");
            }
        }
        // Interpreted path agrees.
        let slow =
            SpmvMultiEngine::compile_in(&a, k, &ExecCtx::default().specialization(false)).unwrap();
        let mut y2 = vec![0.0; 12 * k];
        slow.run(&a, &x, &mut y2).unwrap();
        for (a1, a2) in y.iter().zip(&y2) {
            assert!((a1 - a2).abs() < 1e-10);
        }
    }

    #[test]
    fn multivector_product_other_formats_interpret() {
        let t = sample(9, 8);
        let k = 3;
        for kind in [FormatKind::Ccs, FormatKind::Coordinate, FormatKind::Itpack] {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SpmvMultiEngine::compile(&a, k).unwrap();
            let x: Vec<f64> = (0..9 * k).map(|i| i as f64 * 0.25 - 2.0).collect();
            let mut y = vec![0.0; 9 * k];
            eng.run(&a, &x, &mut y).unwrap();
            for col in 0..k {
                let xc: Vec<f64> = (0..9).map(|r| x[r * k + col]).collect();
                let mut yc = vec![0.0; 9];
                t.matvec_acc(&xc, &mut yc);
                for r in 0..9 {
                    assert!((y[r * k + col] - yc[r]).abs() < 1e-10, "{kind} col {col}");
                }
            }
        }
    }

    #[test]
    fn spmv_parallel_only_above_threshold() {
        // The engine selects Parallel only when nnz clears the ctx's
        // work threshold, and below the threshold it is byte-identical
        // to the plain default engine — same strategy, same plan shape,
        // same results.
        let t = sample(64, 11);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            // Each format's own work measure (Dense reports nrows·ncols).
            let nnz = a.meta().nnz;
            let serial = SpmvEngine::compile(&a).unwrap();

            // Threshold above nnz: parallel ctx degrades to the exact
            // serial engine.
            let below =
                SpmvEngine::compile_in(&a, &ExecCtx::with_threads(4).threshold(nnz + 1)).unwrap();
            assert_eq!(below.strategy(), Strategy::Specialized, "format {kind}");
            assert_eq!(below.strategy(), serial.strategy(), "format {kind}");
            assert_eq!(below.plan_shape(), serial.plan_shape(), "format {kind}");

            // Threshold at/below nnz: Parallel, same plan shape.
            let above = SpmvEngine::compile_in(
                &a,
                &ExecCtx::with_threads(4).threshold(1).oversubscribe(true),
            )
            .unwrap();
            assert_eq!(above.strategy(), Strategy::Parallel, "format {kind}");
            assert_eq!(above.plan_shape(), serial.plan_shape(), "format {kind}");

            // All three paths agree (row-family formats bit-for-bit;
            // everything in FormatKind::ALL here is deterministic, so
            // compare within reduction tolerance to stay format-generic).
            let n = a.meta().ncols;
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
            let mut y_ser = vec![0.0; a.meta().nrows];
            let mut y_bel = y_ser.clone();
            let mut y_par = y_ser.clone();
            serial.run(&a, &x, &mut y_ser).unwrap();
            below.run(&a, &x, &mut y_bel).unwrap();
            above.run(&a, &x, &mut y_par).unwrap();
            assert_eq!(y_ser, y_bel, "below-threshold engine must be bitwise serial ({kind})");
            for (p, s) in y_par.iter().zip(&y_ser) {
                assert!((p - s).abs() <= 1e-12 * s.abs().max(1.0), "format {kind}");
            }
        }
    }

    #[test]
    fn spmv_serial_ctx_never_parallelizes() {
        let t = sample(64, 12);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
    }

    #[test]
    fn spmm_and_multivector_parallel_above_threshold_agree() {
        let ta = sample(40, 13);
        let tb = sample(40, 14);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let hot = ExecCtx::with_threads(4).threshold(1).oversubscribe(true);
        let par = SpmmEngine::compile_in(&a, &b, &hot).unwrap();
        assert_eq!(par.strategy(), Strategy::Parallel);
        let ser = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(ser.strategy(), Strategy::Specialized);
        let mut c1 = vec![0.0; 1600];
        let mut c2 = vec![0.0; 1600];
        par.run(&a, &b, &mut c1).unwrap();
        ser.run(&a, &b, &mut c2).unwrap();
        for (x1, x2) in c1.iter().zip(&c2) {
            assert!((x1 - x2).abs() <= 1e-12 * x2.abs().max(1.0));
        }

        let k = 3;
        let mpar = SpmvMultiEngine::compile_in(&a, k, &hot).unwrap();
        assert_eq!(mpar.strategy(), Strategy::Parallel);
        let mser = SpmvMultiEngine::compile(&a, k).unwrap();
        let x: Vec<f64> = (0..40 * k).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut y1 = vec![0.0; 40 * k];
        let mut y2 = vec![0.0; 40 * k];
        mpar.run(&a, &x, &mut y1).unwrap();
        mser.run(&a, &x, &mut y2).unwrap();
        // Row-partitioned multivector kernel is bit-identical to serial.
        assert_eq!(y1, y2);
    }

    #[test]
    fn checked_mode_refuses_corrupt_operand() {
        // Row 0 stores columns out of order: the sanitizer flags BA23
        // and checked compilation refuses the operand up front.
        let bad = SparseMatrix::Csr(Csr::from_raw_unchecked(
            2,
            3,
            vec![0, 2, 2],
            vec![2, 0],
            vec![1.0, 2.0],
        ));
        let checked = ExecCtx::serial().checked(true);
        match SpmvEngine::compile_in(&bad, &checked) {
            Err(RelError::Validation(msg)) => {
                assert!(msg.contains("BA23"), "{msg}");
                assert!(msg.contains("operand A"), "{msg}");
            }
            Err(other) => panic!("expected Validation, got {other:?}"),
            Ok(_) => panic!("corrupt operand compiled"),
        }
        // The same matrix compiles fine unchecked (and would compute
        // garbage — exactly what checked mode exists to prevent)…
        SpmvEngine::compile_in(&bad, &ExecCtx::serial()).unwrap();
        // …and a clean operand passes checked compilation untouched.
        let good = SparseMatrix::from_triplets(FormatKind::Csr, &sample(8, 21));
        let eng = SpmvEngine::compile_in(&good, &checked).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        // SpMM checks both operands: B is the corrupt one here.
        let ga = SparseMatrix::from_triplets(FormatKind::Csr, &sample(2, 22));
        match SpmmEngine::compile_in(&ga, &bad, &checked) {
            Err(RelError::Validation(msg)) => assert!(msg.contains("operand B"), "{msg}"),
            other => panic!("expected Validation for B, got {:?}", other.err()),
        }
    }

    #[test]
    fn spmm_mixed_formats_interpret() {
        let ta = sample(8, 5);
        let tb = sample(8, 6);
        // The paper's 36-versions point: any format pairing compiles.
        for (ka, kb) in [
            (FormatKind::Csr, FormatKind::Ccs),
            (FormatKind::Ccs, FormatKind::Csr),
            (FormatKind::Itpack, FormatKind::Csr),
            (FormatKind::Csr, FormatKind::Cccs),
        ] {
            let a = SparseMatrix::from_triplets(ka, &ta);
            let b = SparseMatrix::from_triplets(kb, &tb);
            let eng = SpmmEngine::compile(&a, &b).unwrap();
            let mut c = vec![0.0; 64];
            eng.run(&a, &b, &mut c).unwrap();
            // Dense reference.
            let da = bernoulli_formats::DenseMatrix::from_triplets(&ta);
            let db = bernoulli_formats::DenseMatrix::from_triplets(&tb);
            for i in 0..8 {
                for j in 0..8 {
                    let mut want = 0.0;
                    for k in 0..8 {
                        want += da[(i, k)] * db[(k, j)];
                    }
                    assert!(
                        (c[i * 8 + j] - want).abs() < 1e-10,
                        "({ka:?},{kb:?}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn semiring_spmv_engine_relaxes_over_every_format() {
        use bernoulli_relational::semiring::MinPlus;
        // One Bellman-Ford step from source 0 on the weighted path
        // 0 →(2) 1 →(3) 2, plus the direct edge 0 →(7) 2: the engine
        // computes min-plus SpMV identically across all format kinds.
        let t = Triplets::from_entries(3, 3, &[(1, 0, 2.0), (2, 0, 7.0), (2, 1, 3.0)]);
        let d0 = [0.0, f64::INFINITY, f64::INFINITY];
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SemiringSpmvEngine::<MinPlus>::compile(&a).unwrap();
            assert_eq!(eng.strategy(), Strategy::Specialized, "format {kind}");
            let mut d1 = d0;
            eng.run(&a, &d0, &mut d1).unwrap();
            assert_eq!(d1, [0.0, 2.0, 7.0], "format {kind}");
            let mut d2 = d1;
            eng.run(&a, &d1, &mut d2).unwrap();
            assert_eq!(d2, [0.0, 2.0, 5.0], "format {kind}: relaxation via 1 must win");
        }
    }

    #[test]
    fn semiring_engine_parallel_tier_is_per_algebra() {
        use bernoulli_relational::semiring::{FirstNonZero, MinPlus};
        let t = sample(64, 17);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let hot = ExecCtx::with_threads(4).threshold(1).oversubscribe(true);
        // An associative-commutative ⊕ clears the race gate…
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<MinPlus>::compile_in(
            &a,
            &hot.clone().instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
        let s = &obs.report().strategies[0];
        assert_eq!((s.algebra, s.race_checked, s.race_safe), ("min_plus", true, true));
        // …while a non-commutative ⊕ is refused the reduction
        // certificate (BA06) and provably downgraded to serial.
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<FirstNonZero>::compile_in(
            &a,
            &hot.clone().instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        let s = &obs.report().strategies[0];
        assert_eq!(
            (s.algebra, s.race_checked, s.race_safe),
            ("first_nonzero", true, false)
        );
    }

    #[test]
    fn semiring_spmm_engine_counts_triangle_paths() {
        use bernoulli_relational::semiring::CountU64;
        // A = K3 adjacency; under the counting semiring A² holds the
        // number of length-2 walks: 2 on the diagonal, 1 elsewhere.
        let t = Triplets::from_entries(
            3,
            3,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 1, 1.0)],
        );
        let a = Csr::from_triplets(&t);
        for ctx in [ExecCtx::default(), ExecCtx::with_threads(4).threshold(1)] {
            let eng = SemiringSpmmEngine::<CountU64>::compile_in(&a, &a, &ctx).unwrap();
            let entries = eng.run_entries(&a, &a).unwrap();
            assert_eq!(entries.len(), 9);
            for (i, j, walks) in entries {
                assert_eq!(walks, if i == j { 2 } else { 1 }, "({i},{j})");
            }
        }
    }

    #[test]
    fn semiring_engines_record_algebra_qualified_telemetry() {
        use bernoulli_relational::semiring::MinPlus;
        let t = sample(16, 18);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<MinPlus>::compile_in(
            &a,
            &ExecCtx::serial().instrument(obs.clone()),
        )
        .unwrap();
        let x = vec![0.0; 16];
        let mut y = vec![f64::INFINITY; 16];
        eng.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        let k = &r.kernels["spmv_csr.min_plus"];
        assert_eq!((k.calls, k.algebra), (1, "min_plus"));
        assert!(r.to_json().contains("\"algebra\":\"min_plus\""));
    }

    #[test]
    fn obs_records_plan_strategy_and_kernel_streams() {
        let t = sample(16, 41);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng =
            SpmvEngine::compile_in(&a, &ExecCtx::serial().instrument(obs.clone())).unwrap();
        let x = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        eng.run(&a, &x, &mut y).unwrap();
        eng.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        // Plan provenance from the planner seam.
        assert_eq!(r.plans.len(), 1);
        assert_eq!(r.plans[0].shape, "i:outer(A)>j:inner(A)[X?]");
        assert!(r.plans[0].explain.contains("probe X(j)"), "{}", r.plans[0].explain);
        // The strategy decision with its gates.
        assert_eq!(r.strategies.len(), 1);
        assert_eq!(r.strategies[0].op, "spmv");
        assert_eq!(r.strategies[0].strategy, "Specialized");
        assert!(r.strategies[0].specializable);
        assert!(!r.strategies[0].race_checked, "serial config never reaches the race gate");
        assert_eq!(r.counters["engine.compile"], 1);
        // Per-kernel counters merged across the two runs.
        let k = &r.kernels["spmv_csr"];
        let nnz = a.meta().nnz as u64;
        assert_eq!((k.calls, k.nnz, k.flops), (2, 2 * nnz, 4 * nnz));
        assert!(k.bytes > 0);
    }

    #[test]
    fn obs_disabled_engine_is_identical_and_silent() {
        let t = sample(20, 42);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.13).sin()).collect();
        let silent = Obs::disabled();
        let eng_obs =
            SpmvEngine::compile_in(&a, &ExecCtx::serial().instrument(silent.clone())).unwrap();
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng_obs.strategy(), eng.strategy());
        assert_eq!(eng_obs.plan_shape(), eng.plan_shape());
        let mut y1 = vec![0.0; 20];
        let mut y2 = vec![0.0; 20];
        eng_obs.run(&a, &x, &mut y1).unwrap();
        eng.run(&a, &x, &mut y2).unwrap();
        assert_eq!(y1, y2, "obs-threaded engine must be byte-identical when disabled");
        assert!(silent.report().kernels.is_empty());
    }

    #[test]
    fn obs_reports_race_gate_in_parallel_strategy() {
        let t = sample(64, 43);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SpmvEngine::compile_in(
            &a,
            &ExecCtx::with_threads(4).threshold(1).oversubscribe(true).instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
        let r = obs.report();
        let s = &r.strategies[0];
        assert_eq!(s.strategy, "Parallel");
        assert!(s.race_checked && s.race_safe);
        assert_eq!(s.threads, 4);
        assert_eq!(s.threshold, 1);
        assert_eq!(s.work, a.meta().nnz as u64);
    }

    #[test]
    fn spmm_and_multivector_obs_kernel_names_track_strategy() {
        let ta = sample(40, 44);
        let tb = sample(40, 45);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let obs = Obs::enabled();
        let par =
            ExecCtx::with_threads(2).threshold(1).oversubscribe(true).instrument(obs.clone());
        let spmm = SpmmEngine::compile_in(&a, &b, &par).unwrap();
        let mut c = vec![0.0; 1600];
        spmm.run(&a, &b, &mut c).unwrap();
        let multi = SpmvMultiEngine::compile_in(&a, 3, &par).unwrap();
        let x = vec![1.0; 120];
        let mut y = vec![0.0; 120];
        multi.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        assert!(r.kernels.contains_key("par_spmm_csr_csr"), "{:?}", r.kernels.keys());
        assert!(r.kernels.contains_key("par_spmm_csr_dense"), "{:?}", r.kernels.keys());
        let ops: Vec<&str> = r.strategies.iter().map(|s| s.op).collect();
        assert_eq!(ops, ["spmm", "spmv_multi"]);
        assert_eq!(r.plans.len(), 2);
    }

    #[test]
    fn single_worker_pool_downgrades_parallel_with_reason() {
        let t = sample(64, 46);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        // Request 4 workers without oversubscription: on a machine with
        // one hardware thread the effective pool is 1 worker and the
        // plan is downgraded to serial with the recorded reason; on a
        // bigger machine the plan goes parallel with no downgrade.
        let ctx = ExecCtx::with_threads(4).threshold(1).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let s = &obs.report().strategies[0];
        if hw <= 1 {
            assert_eq!(eng.strategy(), Strategy::Specialized);
            assert_eq!(s.downgrade, reason::SINGLE_WORKER_POOL);
            assert!(!s.race_checked);
        } else {
            assert_eq!(eng.strategy(), Strategy::Parallel);
            assert_eq!(s.downgrade, reason::NONE);
        }
        // Oversubscription restores the historical behaviour anywhere.
        let eng = SpmvEngine::compile_in(&a, &ctx.clone().oversubscribe(true)).unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
    }

    #[test]
    fn fast_tier_dispatches_certified_csr() {
        let t = sample(64, 47);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let ctx = ExecCtx::serial().fast_kernels(true).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        assert_eq!(eng.tier(), "fast");
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut y = vec![0.0; 64];
        eng.run(&a, &x, &mut y).unwrap();
        // Bitwise: the fast kernel matches its documented lane order.
        let mut y_ref = vec![0.0; 64];
        if let SparseMatrix::Csr(m) = &a {
            fast::spmv_csr_lanes(m, &x, &mut y_ref);
        }
        for (p, q) in y.iter().zip(&y_ref) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        let r = obs.report();
        r.validate().unwrap();
        assert_eq!(r.strategies[0].tier, "fast");
        assert!(r.kernels.contains_key("fast_spmv_csr"), "{:?}", r.kernels.keys());
        // The fast tier stays opt-in: a default ctx reports reference.
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng.tier(), "reference");
    }

    #[test]
    fn fast_tier_refused_without_certificate() {
        // An uncovered format stays on the reference tier…
        let t = sample(32, 48);
        let a = SparseMatrix::from_triplets(FormatKind::Ccs, &t);
        let obs = Obs::enabled();
        let ctx = ExecCtx::serial().fast_kernels(true).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        assert_eq!(eng.tier(), "reference");
        assert_eq!(obs.report().strategies[0].tier, "reference");
        // …and so does a matrix the sanitizer rejects (columns out of
        // order, BA23 — the reference kernel still computes correctly).
        let bad = SparseMatrix::Csr(Csr::from_raw_unchecked(
            2,
            3,
            vec![0, 2, 2],
            vec![2, 0],
            vec![1.0, 2.0],
        ));
        let eng = SpmvEngine::compile_in(&bad, &ExecCtx::serial().fast_kernels(true)).unwrap();
        assert_eq!(eng.tier(), "reference");
        let mut y = vec![0.0; 2];
        eng.run(&bad, &[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, [3.0, 0.0]);
    }

    #[test]
    fn fast_engine_falls_back_to_reference_for_uncovered_matrix() {
        // The certificate fingerprints the exact arrays it certified; a
        // clone has different storage, so the engine falls back to the
        // reference kernel instead of trusting a stale certificate.
        let t = sample(48, 49);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SpmvEngine::compile_in(
            &a,
            &ExecCtx::serial().fast_kernels(true).instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.tier(), "fast");
        let b = a.clone();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut y = vec![0.0; 48];
        eng.run(&b, &x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        b.spmv_acc(&x, &mut y_ref);
        assert_eq!(y, y_ref, "clone must take the reference path bitwise");
        let r = obs.report();
        assert!(r.kernels.contains_key("spmv_csr"), "{:?}", r.kernels.keys());
        assert!(!r.kernels.contains_key("fast_spmv_csr"), "{:?}", r.kernels.keys());
    }

    #[test]
    fn hinted_compile_replays_cold_decisions_bitwise() {
        let t = sample(64, 51);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let cold = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        assert_eq!((cold.strategy(), cold.tier()), (Strategy::Specialized, "fast"));
        let hints = cold.hints();
        let obs = Obs::enabled();
        let warm = SpmvEngine::compile_hinted(
            &a,
            &ExecCtx::serial().fast_kernels(true).instrument(obs.clone()),
            &hints,
        )
        .unwrap();
        assert_eq!(warm.strategy(), cold.strategy());
        assert_eq!(warm.plan_shape(), cold.plan_shape());
        assert_eq!(warm.tier(), "fast");
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin()).collect();
        let (mut y_cold, mut y_warm) = (vec![0.0; 64], vec![0.0; 64]);
        cold.run(&a, &x, &mut y_cold).unwrap();
        warm.run(&a, &x, &mut y_warm).unwrap();
        assert_eq!(
            y_cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let r = obs.report();
        // The warm path skipped the planner entirely: no plan event,
        // but the strategy decision and the hinted counter are there.
        assert!(r.plans.is_empty(), "{:?}", r.plans);
        assert_eq!(r.counters["engine.compile_hinted"], 1);
        assert_eq!(r.strategies[0].strategy, "Specialized");
        assert!(!r.strategies[0].race_checked, "hinted path never re-runs the race gate");
        assert!(warm.pseudocode().contains("plan replayed from structure cache"));
    }

    #[test]
    fn hinted_compile_recertifies_fast_tier_on_a_rebuilt_matrix() {
        // The cached certificate fingerprints the cold operand's
        // buffers; a structurally identical rebuild misses covers() and
        // must earn a *fresh* certificate, not inherit the stale one.
        let t = sample(48, 52);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let cold = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        let hints = cold.hints();
        assert!(hints.fast_cert.is_some());
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let warm =
            SpmvEngine::compile_hinted(&b, &ExecCtx::serial().fast_kernels(true), &hints).unwrap();
        assert_eq!(warm.tier(), "fast", "re-derived certificate still arms the fast tier");
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut y = vec![0.0; 48];
        warm.run(&b, &x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        if let SparseMatrix::Csr(m) = &b {
            fast::spmv_csr_lanes(m, &x, &mut y_ref);
        }
        for (p, q) in y.iter().zip(&y_ref) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn hinted_parallel_verdict_regates_against_this_context() {
        let t = sample(64, 53);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let par = ExecCtx::with_threads(2).threshold(1).oversubscribe(true);
        let cold = SpmvEngine::compile_in(&a, &par).unwrap();
        assert_eq!(cold.strategy(), Strategy::Parallel);
        let hints = cold.hints();
        // Replaying a Parallel verdict under a serial context re-applies
        // the O(1) gates and lands on the serial specialized tier.
        let warm = SpmvEngine::compile_hinted(&a, &ExecCtx::serial(), &hints).unwrap();
        assert_eq!(warm.strategy(), Strategy::Specialized);
        // Under an equivalent parallel context the verdict replays as-is
        // and both engines agree bitwise.
        let warm_par = SpmvEngine::compile_hinted(&a, &par, &hints).unwrap();
        assert_eq!(warm_par.strategy(), Strategy::Parallel);
        let x: Vec<f64> = (0..64).map(|i| i as f64 * 0.11 - 3.0).collect();
        let (mut y1, mut y2) = (vec![0.0; 64], vec![0.0; 64]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm_par.run(&a, &x, &mut y2).unwrap();
        assert_eq!(
            y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hinted_interpreter_tier_falls_back_to_the_full_compile() {
        // An Interpreted hint needs a real plan to interpret, so the
        // warm path degenerates to the cold one (plan event and all).
        let t = sample(15, 54);
        let a = SparseMatrix::from_triplets(FormatKind::Coordinate, &t);
        let interp = ExecCtx::default().specialization(false);
        let cold = SpmvEngine::compile_in(&a, &interp).unwrap();
        assert_eq!(cold.strategy(), Strategy::Interpreted);
        let obs = Obs::enabled();
        let warm =
            SpmvEngine::compile_hinted(&a, &interp.clone().instrument(obs.clone()), &cold.hints())
                .unwrap();
        assert_eq!(warm.strategy(), Strategy::Interpreted);
        let r = obs.report();
        assert_eq!(r.plans.len(), 1, "fallback goes through the planner");
        assert!(!r.counters.contains_key("engine.compile_hinted"));
        let x: Vec<f64> = (0..15).map(|i| (i as f64).sqrt()).collect();
        let (mut y1, mut y2) = (vec![0.0; 15], vec![0.0; 15]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm.run(&a, &x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn multivector_hinted_compile_replays_and_regates() {
        // Satellite: the multivector engine now rides the unified hint
        // seam — a cold Parallel verdict replays bitwise under an
        // equivalent context and regates to serial under ExecCtx::serial.
        let t = sample(48, 55);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let k = 3;
        let par = ExecCtx::with_threads(2).threshold(1).oversubscribe(true);
        let cold = SpmvMultiEngine::compile_in(&a, k, &par).unwrap();
        assert_eq!(cold.strategy(), Strategy::Parallel);
        let hints = cold.hints();
        let obs = Obs::enabled();
        let warm =
            SpmvMultiEngine::compile_hinted(&a, k, &par.clone().instrument(obs.clone()), &hints)
                .unwrap();
        assert_eq!(warm.strategy(), Strategy::Parallel);
        assert_eq!(warm.plan_shape(), cold.plan_shape());
        assert_eq!(warm.k(), k);
        let r = obs.report();
        assert!(r.plans.is_empty(), "warm path must skip the planner: {:?}", r.plans);
        assert_eq!(r.counters["engine.compile_hinted"], 1);
        let x: Vec<f64> = (0..48 * k).map(|i| (i as f64 * 0.19).sin()).collect();
        let (mut y1, mut y2) = (vec![0.0; 48 * k], vec![0.0; 48 * k]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm.run(&a, &x, &mut y2).unwrap();
        assert_eq!(
            y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let regated = SpmvMultiEngine::compile_hinted(&a, k, &ExecCtx::serial(), &hints).unwrap();
        assert_eq!(regated.strategy(), Strategy::Specialized);
    }

    #[test]
    fn semiring_hinted_compile_replays_per_algebra_verdicts() {
        use bernoulli_relational::semiring::{FirstNonZero, MinPlus};
        // Satellite: graph workloads replay through the same seam. The
        // cached verdict is per-algebra: min-plus replays Parallel,
        // while a first_nonzero cold verdict (Specialized via BA06)
        // replays serial — no upgrade is possible on the warm path.
        let t = sample(48, 56);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let par = ExecCtx::with_threads(2).threshold(1).oversubscribe(true);
        let cold = SemiringSpmvEngine::<MinPlus>::compile_in(&a, &par).unwrap();
        assert_eq!(cold.strategy(), Strategy::Parallel);
        let obs = Obs::enabled();
        let warm = SemiringSpmvEngine::<MinPlus>::compile_hinted(
            &a,
            &par.clone().instrument(obs.clone()),
            &cold.hints(),
        )
        .unwrap();
        assert_eq!(warm.strategy(), Strategy::Parallel);
        let r = obs.report();
        assert!(r.plans.is_empty(), "warm path must skip the planner: {:?}", r.plans);
        assert_eq!(r.counters["engine.compile_hinted"], 1);
        assert_eq!(r.strategies[0].algebra, "min_plus");
        let x: Vec<f64> = (0..48).map(|i| i as f64 * 0.5).collect();
        let (mut y1, mut y2) = (vec![f64::INFINITY; 48], vec![f64::INFINITY; 48]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm.run(&a, &x, &mut y2).unwrap();
        assert_eq!(
            y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // The non-commutative algebra's serial verdict replays as-is.
        let cold_fnz = SemiringSpmvEngine::<FirstNonZero>::compile_in(&a, &par).unwrap();
        assert_eq!(cold_fnz.strategy(), Strategy::Specialized);
        let warm_fnz =
            SemiringSpmvEngine::<FirstNonZero>::compile_hinted(&a, &par, &cold_fnz.hints())
                .unwrap();
        assert_eq!(warm_fnz.strategy(), Strategy::Specialized);
        // Semiring SpMM rides the seam too, bitwise.
        use bernoulli_relational::semiring::CountU64;
        let ca = Csr::from_triplets(&sample(24, 57));
        let cold_mm = SemiringSpmmEngine::<CountU64>::compile_in(&ca, &ca, &par).unwrap();
        let warm_mm =
            SemiringSpmmEngine::<CountU64>::compile_hinted(&ca, &ca, &par, &cold_mm.hints())
                .unwrap();
        assert_eq!(warm_mm.strategy(), cold_mm.strategy());
        assert_eq!(
            warm_mm.run_entries(&ca, &ca).unwrap(),
            cold_mm.run_entries(&ca, &ca).unwrap()
        );
    }

    #[test]
    fn fast_engine_pseudocode_shows_the_lane_split() {
        let t = sample(32, 50);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        let code = eng.pseudocode();
        assert!(code.contains("acc0 = acc1 = acc2 = acc3 = 0.0;"), "{code}");
        assert!(code.contains("Y[i] += ((acc0 + acc1) + (acc2 + acc3));"), "{code}");
        // The reference engine renders the classic loop.
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        let code = eng.pseudocode();
        assert!(code.contains("Y[i] += (a_val * x_val);"), "{code}");
        assert!(!code.contains("fast tier"), "{code}");
    }
}
