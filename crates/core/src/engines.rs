//! Executable engines for the paper's kernels, with plan-shape-directed
//! specialisation.
//!
//! The Bernoulli compiler emitted C tuned to each format; a library
//! cannot JIT, so the equivalent is **monomorphised kernels selected by
//! plan shape**: the planner runs exactly as in the paper, and when the
//! plan it produces is a format's natural traversal, execution
//! dispatches (once, outside all loops) to the hand-tuned kernel for
//! that traversal. Any other plan — exotic formats, sparse vectors,
//! unusual predicates — runs on the general interpreter, so the system
//! is never *wrong*, only occasionally slower. The dispatch-hoisting
//! ablation bench quantifies the difference.
//!
//! Every engine has exactly two entry points: `compile(operands)` — the
//! default serial, uninstrumented context — and
//! `compile_in(operands, &ExecCtx)`, which reads *all* policy (threads,
//! parallel threshold, checked mode, specialization, telemetry) from
//! the one context object instead of growing per-capability parameter
//! variants.

use crate::ast::{programs, LoopNest};
use crate::compile::{CompiledKernel, Compiler};
use bernoulli_formats::{
    fast,
    kernels, par_kernels, Csr, ExecConfig, ExecCtx, FormatKind, SparseMatrix, Validate,
};
use bernoulli_obs::events::{KernelCounters, StrategyEvent};
use bernoulli_obs::Obs;
use bernoulli_relational::access::{MatMeta, MatrixAccess, VecMeta};
use bernoulli_relational::error::{RelError, RelResult};
use bernoulli_relational::exec::Bindings;
use bernoulli_relational::ids::{MAT_A, MAT_B, MAT_C, VEC_X, VEC_Y};
use bernoulli_relational::planner::QueryMeta;
use bernoulli_relational::semiring::{AlgebraProps, Semiring};
use std::marker::PhantomData;

/// How a compiled engine will execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The plan matched the format's natural traversal: dispatch to the
    /// monomorphised kernel (the "generated code" path).
    Specialized,
    /// The plan matched the natural traversal *and* the operand is
    /// large enough to clear the [`ExecConfig`] work threshold:
    /// dispatch to the shared-memory parallel kernel of
    /// [`bernoulli_formats::par_kernels`]. Below the threshold an
    /// engine compiles to [`Strategy::Specialized`] with the identical
    /// plan, so small operands keep byte-identical serial behaviour.
    Parallel,
    /// General plan interpretation.
    Interpreted,
}

impl Strategy {
    /// The strategy's name as it appears in telemetry
    /// ([`StrategyEvent::strategy`], validated by the report schema).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Specialized => "Specialized",
            Strategy::Parallel => "Parallel",
            Strategy::Interpreted => "Interpreted",
        }
    }
}

/// The one strategy decision every engine routes through.
///
/// [`Strategy::Parallel`] requires all three gates: the plan must be
/// specialisable (a known hand-kernel traversal), the operand must
/// clear the [`ExecConfig`] work threshold, and the DO-ANY race checker
/// of `bernoulli-analysis` must certify the loop nest parallel-safe.
/// The canned kernels all carry a certificate (disjoint writes or a
/// commutative reduction), so behaviour is unchanged for them; a racy
/// nest (say, a scatter *assignment*) is provably downgraded to
/// [`Strategy::Specialized`] rather than run concurrently. Public so
/// tests and downstream engines can audit the exact decision their
/// `compile_in` makes.
pub fn choose_strategy(
    nest: &LoopNest,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
) -> Strategy {
    strategy_decision(nest, specializable, work, exec).strategy
}

/// A strategy decision plus the gate outcomes that produced it — what
/// [`StrategyEvent`] telemetry reports.
#[derive(Clone, Copy, Debug)]
struct Decision {
    strategy: Strategy,
    /// Whether the race checker ran at all (only once specialisation
    /// and the size gate both pass).
    race_checked: bool,
    race_safe: bool,
    /// Why a parallel-eligible plan fell back to serial (`""` = it
    /// didn't): `single_worker_pool` or `racy_nest`.
    downgrade: &'static str,
}

fn strategy_decision(
    nest: &LoopNest,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
) -> Decision {
    strategy_decision_in(nest, specializable, work, exec, &AlgebraProps::f64_plus())
}

/// [`strategy_decision`] under an explicit scalar algebra: the race
/// gate consults `check_do_any_in`, so a reduction nest over a
/// non-associative-commutative ⊕ (BA06) is provably downgraded to the
/// serial tier instead of run concurrently.
fn strategy_decision_in(
    nest: &LoopNest,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
    algebra: &AlgebraProps,
) -> Decision {
    if !specializable {
        return Decision {
            strategy: Strategy::Interpreted,
            race_checked: false,
            race_safe: false,
            downgrade: "",
        };
    }
    if !exec.should_parallelize(work) {
        return Decision {
            strategy: Strategy::Specialized,
            race_checked: false,
            race_safe: false,
            downgrade: "",
        };
    }
    // The size gate passed, so the plan *wants* to go parallel — but a
    // pool that can only run one worker at a time (requested threads
    // clamped to the hardware parallelism, unless oversubscription is
    // explicitly allowed) would pay pure fork/join overhead for it.
    // Downgrade to the serial specialized tier and say why.
    if exec.effective_workers() <= 1 {
        return Decision {
            strategy: Strategy::Specialized,
            race_checked: false,
            race_safe: false,
            downgrade: "single_worker_pool",
        };
    }
    let safe = bernoulli_analysis::race::check_do_any_in(nest, algebra).is_parallel_safe();
    Decision {
        strategy: if safe { Strategy::Parallel } else { Strategy::Specialized },
        race_checked: true,
        race_safe: safe,
        downgrade: if safe { "" } else { "racy_nest" },
    }
}

/// Record one engine's compile-time decision (and bump the compile
/// counter) through `obs`. Free on a disabled handle.
// One positional slot per StrategyEvent field this emits; bundling
// them into a struct would just restate the event type.
#[allow(clippy::too_many_arguments)]
fn record_strategy(
    obs: &Obs,
    op: &str,
    algebra: &'static str,
    d: Decision,
    specializable: bool,
    work: usize,
    exec: &ExecConfig,
    tier: &'static str,
) {
    obs.counter("engine.compile", 1);
    obs.strategy(|| StrategyEvent {
        op: op.to_string(),
        strategy: d.strategy.name().to_string(),
        algebra: algebra.to_string(),
        specializable,
        work: work as u64,
        threshold: exec.par_threshold_nnz as u64,
        threads: exec.threads_hint() as u64,
        race_checked: d.race_checked,
        race_safe: d.race_safe,
        tier: tier.to_string(),
        downgrade: d.downgrade.to_string(),
        // DO-ANY engines have no level schedule; the wavefront engines
        // (`trisolve.rs`) fill these from their certificate.
        levels: 0,
        max_level_width: 0,
        mean_level_width: 0.0,
    });
}

/// Telemetry name component for a format's specialised kernels
/// (matches the `kernels::spmv_*` function naming).
pub(crate) fn kind_slug(kind: FormatKind) -> &'static str {
    match kind {
        FormatKind::Dense => "dense",
        FormatKind::Coordinate => "coo",
        FormatKind::Csr => "csr",
        FormatKind::Ccs => "ccs",
        FormatKind::Cccs => "cccs",
        FormatKind::Diagonal => "diag",
        FormatKind::Itpack => "itpack",
        FormatKind::JDiag => "jdiag",
        FormatKind::Inode => "inode",
    }
}

/// The SpMV counter model: every stored nonzero is one multiply-add;
/// bytes = values + index structure read once (8-byte words each) plus
/// `x` read and `y` read+written once.
pub(crate) fn spmv_counters(m: &MatMeta) -> KernelCounters {
    let nnz = m.nnz as u64;
    KernelCounters {
        nnz,
        flops: 2 * nnz,
        bytes: 8 * (2 * nnz + m.ncols as u64 + 2 * m.nrows as u64),
        algebra: "f64_plus",
    }
}

/// The SpMM (sparse × sparse) counter model. Exact flops would need the
/// row-expansion sum; the estimate charges every `A` entry an average
/// `B` row scan, and bytes charge both operands read once plus the
/// expansion written through the accumulator.
pub(crate) fn spmm_counters(a: &MatMeta, b: &MatMeta) -> KernelCounters {
    let (an, bn) = (a.nnz as u64, b.nnz as u64);
    let expansion = an.saturating_mul(bn) / (b.nrows.max(1) as u64);
    KernelCounters {
        nnz: an + bn,
        flops: 2 * expansion,
        bytes: 8 * 2 * (an + bn) + 16 * expansion,
        algebra: "f64_plus",
    }
}

/// The multivector (sparse × skinny dense) counter model: each stored
/// nonzero does `k` multiply-adds against a dense row.
pub(crate) fn spmv_multi_counters(m: &MatMeta, k: usize) -> KernelCounters {
    let nnz = m.nnz as u64;
    let k = k.max(1) as u64;
    KernelCounters {
        nnz,
        flops: 2 * nnz * k,
        bytes: 8 * (2 * nnz + m.ncols as u64 * k + 2 * m.nrows as u64 * k),
        algebra: "f64_plus",
    }
}

/// Checked-mode operand gate: when [`ExecConfig::checked`] is set, run
/// the format-invariant sanitizer over the operand and refuse to
/// compile against a corrupt matrix ([`RelError::Validation`]).
fn check_operand(name: &str, m: &SparseMatrix, exec: &ExecConfig) -> RelResult<()> {
    if exec.checked {
        m.validate_ok()
            .map_err(|e| RelError::Validation(format!("operand {name}: {e}")))?;
    }
    Ok(())
}

/// The canonical matvec plan shape for each format orientation.
fn natural_spmv_shape(a: &SparseMatrix) -> &'static str {
    use bernoulli_relational::access::Orientation::*;
    match a.meta().orientation {
        RowMajor => "i:outer(A)>j:inner(A)[X?]",
        ColMajor => "j:outer(A)[X?]>i:inner(A)",
        Flat => "(i,j):flat(A)[X?]",
    }
}

/// The planning verdicts a structure-keyed plan cache stores per
/// structure and feeds back through [`SpmvEngine::compile_hinted`].
/// Everything here is a cached *decision* — strategy tier, plan shape,
/// fast-tier eligibility — never a proof: the hinted path skips the
/// planner search and the race-gate re-derivation, but checked-mode
/// validation still runs and the fast tier is armed only by a
/// certificate that covers the operand actually handed in.
#[derive(Clone, Debug)]
pub struct SpmvHints {
    /// The strategy the cold compile chose for this structure.
    pub strategy: Strategy,
    /// Plan-shape signature ([`CompiledKernel::shape`]) of the cold plan.
    pub plan_shape: String,
    /// Whether the cold compile certified the fast microkernel tier.
    pub fast_eligible: bool,
    /// In-memory tier only: the certificate from a previous compile of
    /// the *same* matrix instance. Never persisted to disk (it
    /// fingerprints heap addresses); reused only when
    /// [`fast::MatrixCert::covers`] accepts the operand, re-derived
    /// otherwise.
    pub fast_cert: Option<fast::MatrixCert>,
}

/// Where an engine's plan came from: the planner (cold) or a structure
/// cache replay (warm). Hinted engines never carry the interpreter
/// tier — [`SpmvEngine::compile_hinted`] falls back to the full
/// compile when the hinted strategy needs a real plan to interpret.
enum PlanSource {
    Compiled(CompiledKernel),
    Hinted { shape: String },
}

impl PlanSource {
    fn shape(&self) -> String {
        match self {
            PlanSource::Compiled(k) => k.shape(),
            PlanSource::Hinted { shape } => shape.clone(),
        }
    }
}

/// A compiled `y += A·x` engine for one matrix.
pub struct SpmvEngine {
    plan: PlanSource,
    strategy: Strategy,
    ctx: ExecCtx,
    /// Validation certificate for the fast microkernel tier, computed
    /// once at compile time when [`ExecCtx::fast_kernels`] armed it and
    /// the operand passed the full sanitizer. `None` = reference tier.
    fast_cert: Option<fast::MatrixCert>,
}

impl SpmvEngine {
    /// Compile for a matrix (dense `x`/`y`), choosing the execution
    /// strategy from the plan shape. Uses the default [`ExecCtx`]:
    /// serial, unchecked, uninstrumented — the original library
    /// behaviour. Use [`SpmvEngine::compile_in`] for thresholded
    /// parallel dispatch, checked mode or telemetry.
    pub fn compile(a: &SparseMatrix) -> RelResult<SpmvEngine> {
        Self::compile_in(a, &ExecCtx::default())
    }

    /// Compile under an execution context. The plan is exactly as in
    /// [`SpmvEngine::compile`]; the context decides everything else: a
    /// specialisable plan whose matrix clears the work threshold
    /// compiles to [`Strategy::Parallel`] (below the threshold, or
    /// serial, the engine is byte-identical to the default one — same
    /// plan shape, same kernel, same strategy);
    /// [`ExecCtx::specialization`]`(false)` forces the interpreter;
    /// [`ExecCtx::checked`] validates operands before compiling; an
    /// [instrumented](ExecCtx::instrument) context records plan
    /// provenance, the strategy decision and per-run kernel counters.
    pub fn compile_in(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<SpmvEngine> {
        check_operand("A", a, ctx.config())?;
        let m = a.meta();
        let meta = QueryMeta::new()
            .mat(MAT_A, m)
            .vec(VEC_X, VecMeta::dense(m.ncols))
            .vec(VEC_Y, VecMeta::dense(m.nrows));
        let nest = programs::matvec();
        let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
        // Both the format's natural hierarchical traversal and the flat
        // enumeration plan compute exactly what the format's hand
        // kernel computes (A enumerated once, X directly indexed), so
        // either shape dispatches to it.
        let shape = kernel.shape();
        let specializable = ctx.specialize()
            && (shape == natural_spmv_shape(a) || shape == "(i,j):flat(A)[X?]");
        let decision = strategy_decision(&nest, specializable, m.nnz, ctx.config());
        // The fast tier is armed only by explicit opt-in, only for the
        // serial specialized strategy, and only when the operand passes
        // the full Validate sanitizer *now* — a rejected certificate
        // silently keeps the reference tier (observable via `tier`).
        let fast_cert = if ctx.fast() && decision.strategy == Strategy::Specialized {
            fast::MatrixCert::certify(a).ok()
        } else {
            None
        };
        let tier = if fast_cert.is_some() { "fast" } else { "reference" };
        record_strategy(
            ctx.obs(),
            "spmv",
            "f64_plus",
            decision,
            specializable,
            m.nnz,
            ctx.config(),
            tier,
        );
        Ok(SpmvEngine {
            plan: PlanSource::Compiled(kernel),
            strategy: decision.strategy,
            ctx: ctx.clone(),
            fast_cert,
        })
    }

    /// Compile from cached hints, skipping the planner search and the
    /// race-gate re-derivation — the warm path of a structure-keyed
    /// plan cache. Every soundness gate is preserved: checked-mode
    /// operand validation still runs, the cheap O(1) parallel gates
    /// (work threshold, worker pool) are re-applied against *this*
    /// context, and the fast tier is armed only by a certificate that
    /// covers this exact operand — the cached one when its content
    /// fingerprint matches, else a fresh sanitizer run. A hinted
    /// [`Strategy::Interpreted`] needs a real plan to interpret, so it
    /// falls back to the full [`SpmvEngine::compile_in`]. Results are
    /// identical to the cold path on every tier; only compile latency
    /// changes.
    pub fn compile_hinted(
        a: &SparseMatrix,
        ctx: &ExecCtx,
        hints: &SpmvHints,
    ) -> RelResult<SpmvEngine> {
        if hints.strategy == Strategy::Interpreted || !ctx.specialize() {
            return Self::compile_in(a, ctx);
        }
        check_operand("A", a, ctx.config())?;
        let m = a.meta();
        // Re-apply the O(1) gates: a cached Parallel verdict still
        // needs this context's pool and this operand's size to pay for
        // fork/join. The expensive race-check verdict is what the cache
        // carries (it depends only on the canonical matvec nest).
        let cfg = ctx.config();
        let strategy = if hints.strategy == Strategy::Parallel
            && (!cfg.should_parallelize(m.nnz) || cfg.effective_workers() <= 1)
        {
            Strategy::Specialized
        } else {
            hints.strategy
        };
        let fast_cert = if ctx.fast() && strategy == Strategy::Specialized && hints.fast_eligible
        {
            match &hints.fast_cert {
                // Certification reuse, not certification skip: covers()
                // re-checks dimensions, addresses and the index-array
                // content hash before the certificate transfers.
                Some(c) if c.covers(a) => Some(*c),
                _ => fast::MatrixCert::certify(a).ok(),
            }
        } else {
            None
        };
        let tier = if fast_cert.is_some() { "fast" } else { "reference" };
        ctx.obs().counter("engine.compile_hinted", 1);
        record_strategy(
            ctx.obs(),
            "spmv",
            "f64_plus",
            Decision { strategy, race_checked: false, race_safe: false, downgrade: "" },
            true,
            m.nnz,
            cfg,
            tier,
        );
        Ok(SpmvEngine {
            plan: PlanSource::Hinted { shape: hints.plan_shape.clone() },
            strategy,
            ctx: ctx.clone(),
            fast_cert,
        })
    }

    /// Export this engine's decisions for a structure-keyed plan cache
    /// (the input [`SpmvEngine::compile_hinted`] replays).
    pub fn hints(&self) -> SpmvHints {
        SpmvHints {
            strategy: self.strategy,
            plan_shape: self.plan.shape(),
            fast_eligible: self.fast_cert.is_some(),
            fast_cert: self.fast_cert,
        }
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    pub fn plan_shape(&self) -> String {
        self.plan.shape()
    }

    /// Which kernel tier [`SpmvEngine::run`] will dispatch to:
    /// `"fast"` (certified bounds-check-free microkernels) or
    /// `"reference"` (the safe-indexed library kernels).
    pub fn tier(&self) -> &'static str {
        if self.fast_cert.is_some() {
            "fast"
        } else {
            "reference"
        }
    }

    /// Render this engine's plan as pseudocode, truthful about the
    /// tier: the fast tier shows the 4-lane unrolled reduction shape
    /// (see [`crate::codegen::emit_pseudocode_fast`]); the reference
    /// tier is the classic [`crate::codegen::emit_pseudocode`] loop.
    pub fn pseudocode(&self) -> String {
        let PlanSource::Compiled(kernel) = &self.plan else {
            return format!("// plan replayed from structure cache: {}", self.plan.shape());
        };
        match &self.fast_cert {
            Some(fast::MatrixCert::Csr(_)) => {
                crate::codegen::emit_pseudocode_fast(kernel, fast::LANES)
            }
            Some(_) => crate::codegen::emit_pseudocode_fast(kernel, 1),
            None => crate::codegen::emit_pseudocode(kernel),
        }
    }

    /// `y += A·x`. The matrix must be the one the engine was compiled
    /// for (same format and shape; enforced by the shape checks in the
    /// underlying paths).
    pub fn run(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        // The cached certificate only covers the exact arrays it was
        // computed over; a different matrix (or a clone — the arrays
        // moved) falls back to the reference kernel.
        let use_fast = self.strategy == Strategy::Specialized
            && self.fast_cert.as_ref().is_some_and(|c| c.covers(a));
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized if use_fast => {
                    format!("fast_spmv_{}", kind_slug(a.kind()))
                }
                Strategy::Specialized => format!("spmv_{}", kind_slug(a.kind())),
                Strategy::Parallel => format!("par_spmv_{}", kind_slug(a.kind())),
                Strategy::Interpreted => "interp_spmv".to_string(),
            };
            obs.kernel(&name, spmv_counters(&a.meta()));
        }
        match self.strategy {
            Strategy::Specialized => {
                if use_fast {
                    fast::spmv_acc_fast(a, x, y, self.fast_cert.as_ref().unwrap());
                } else {
                    a.spmv_acc(x, y);
                }
                Ok(())
            }
            Strategy::Parallel => {
                a.par_spmv_acc(x, y, &self.ctx);
                Ok(())
            }
            Strategy::Interpreted => {
                let PlanSource::Compiled(kernel) = &self.plan else {
                    unreachable!("hinted engines never carry the interpreter tier")
                };
                let mut b = Bindings::new();
                b.bind_mat(MAT_A, a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, y);
                kernel.run(&mut b)
            }
        }
    }
}

/// A compiled `C += A·B` engine (dense result, row-major buffer).
pub struct SpmmEngine {
    kernel: CompiledKernel,
    strategy: Strategy,
    ctx: ExecCtx,
}

impl SpmmEngine {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix, b: &SparseMatrix) -> RelResult<SpmmEngine> {
        Self::compile_in(a, b, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(
        a: &SparseMatrix,
        b: &SparseMatrix,
        ctx: &ExecCtx,
    ) -> RelResult<SpmmEngine> {
        check_operand("A", a, ctx.config())?;
        check_operand("B", b, ctx.config())?;
        let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta());
        let nest = programs::matmat();
        let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
        // Gustavson's traversal over two CSR operands is the one shape
        // with a hand-tuned kernel. Work estimate for the parallel gate:
        // the driver operand's nonzeros (each expands into a B-row scan).
        let gustavson = "i:outer(A)>k:inner(A)[B?]>j:inner(B)";
        let both_csr = matches!(a, SparseMatrix::Csr(_)) && matches!(b, SparseMatrix::Csr(_));
        let specializable =
            ctx.specialize() && both_csr && kernel.shape() == gustavson;
        let decision = strategy_decision(&nest, specializable, a.meta().nnz, ctx.config());
        record_strategy(ctx.obs(), "spmm", "f64_plus", decision, specializable, a.meta().nnz, ctx.config(), "reference");
        Ok(SpmmEngine { kernel, strategy: decision.strategy, ctx: ctx.clone() })
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// `C += A·B` into a dense row-major buffer `c` of shape
    /// `a.nrows() × b.ncols()`.
    pub fn run(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        c: &mut [f64],
    ) -> RelResult<()> {
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized => "spmm_csr_csr",
                Strategy::Parallel => "par_spmm_csr_csr",
                Strategy::Interpreted => "interp_spmm",
            };
            obs.kernel(name, spmm_counters(&a.meta(), &b.meta()));
        }
        match self.strategy {
            Strategy::Specialized | Strategy::Parallel => {
                let (SparseMatrix::Csr(ca), SparseMatrix::Csr(cb)) = (a, b) else {
                    unreachable!("specialised only for CSR×CSR")
                };
                let prod = if self.strategy == Strategy::Parallel {
                    par_kernels::par_spmm_csr_csr(ca, cb, &self.ctx)
                } else {
                    kernels::spmm_csr_csr(ca, cb)
                };
                let ncols = cb.ncols();
                for (i, j, v) in prod.to_triplets().canonicalize().entries().iter().copied() {
                    c[i * ncols + j] += v;
                }
                Ok(())
            }
            Strategy::Interpreted => {
                let mut binds = Bindings::new();
                binds.bind_mat(MAT_A, a).bind_mat(MAT_B, b).bind_mat_mut(
                    MAT_C,
                    c,
                    a.meta().nrows,
                    b.meta().ncols,
                );
                self.kernel.run(&mut binds)
            }
        }
    }
}

/// A compiled `Y += A·X` engine for a sparse matrix times a skinny
/// dense multivector (`X` is `ncols × k` row-major, `Y` is `nrows × k`)
/// — the paper's §6 "product of a sparse matrix and a skinny dense
/// matrix", the workhorse of block Krylov methods.
pub struct SpmvMultiEngine {
    kernel: CompiledKernel,
    strategy: Strategy,
    k: usize,
    ctx: ExecCtx,
}

impl SpmvMultiEngine {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix, k: usize) -> RelResult<SpmvMultiEngine> {
        Self::compile_in(a, k, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(
        a: &SparseMatrix,
        k: usize,
        ctx: &ExecCtx,
    ) -> RelResult<SpmvMultiEngine> {
        check_operand("A", a, ctx.config())?;
        let m = a.meta();
        // The multivector's metadata: a dense ncols × k matrix.
        let x_meta = bernoulli_formats::DenseMatrix::zeros(m.ncols, k).meta();
        let meta = QueryMeta::new().mat(MAT_A, m).mat(MAT_B, x_meta);
        let nest = programs::matvec_multi();
        let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
        // The natural shape: rows of A, then A's entries, then the
        // dense multivector row — CSR dispatches to the blocked kernel.
        // Work estimate: nnz·k fused multiply-adds.
        let natural = "i:outer(A)>j:inner(A)[B?]>k:inner(B)";
        let is_csr = matches!(a, SparseMatrix::Csr(_));
        let specializable = ctx.specialize() && is_csr && kernel.shape() == natural;
        let work = m.nnz.saturating_mul(k.max(1));
        let decision = strategy_decision(&nest, specializable, work, ctx.config());
        record_strategy(ctx.obs(), "spmv_multi", "f64_plus", decision, specializable, work, ctx.config(), "reference");
        Ok(SpmvMultiEngine { kernel, strategy: decision.strategy, k, ctx: ctx.clone() })
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    pub fn plan_shape(&self) -> String {
        self.kernel.shape()
    }

    /// The multivector width the engine was compiled for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `Y += A·X` with `X: ncols×k` and `Y: nrows×k`, both row-major.
    pub fn run(&self, a: &SparseMatrix, x: &[f64], y: &mut [f64]) -> RelResult<()> {
        let m = a.meta();
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let name = match self.strategy {
                Strategy::Specialized => "spmm_csr_dense",
                Strategy::Parallel => "par_spmm_csr_dense",
                Strategy::Interpreted => "interp_spmv_multi",
            };
            obs.kernel(name, spmv_multi_counters(&m, self.k));
        }
        match self.strategy {
            Strategy::Specialized => {
                let SparseMatrix::Csr(ca) = a else {
                    unreachable!("specialised only for CSR");
                };
                kernels::spmm_csr_dense(ca, x, self.k, y);
                Ok(())
            }
            Strategy::Parallel => {
                let SparseMatrix::Csr(ca) = a else {
                    unreachable!("specialised only for CSR");
                };
                par_kernels::par_spmm_csr_dense(ca, x, self.k, y, &self.ctx);
                Ok(())
            }
            Strategy::Interpreted => {
                let xm = bernoulli_formats::DenseMatrix::from_row_major(
                    m.ncols,
                    self.k,
                    x.to_vec(),
                );
                let mut binds = Bindings::new();
                binds
                    .bind_mat(MAT_A, a)
                    .bind_mat(MAT_B, &xm)
                    .bind_mat_mut(MAT_C, y, m.nrows, self.k);
                self.kernel.run(&mut binds)
            }
        }
    }
}

/// Algebra-qualified kernel telemetry name: the classical algebra keeps
/// the historical bare names (`spmv_csr`), every other algebra gets its
/// own stream (`spmv_csr.min_plus`) so one name never mixes algebras.
fn algebra_kernel_name(base: &str, algebra: &'static str) -> String {
    if algebra == "f64_plus" {
        base.to_string()
    } else {
        format!("{base}.{algebra}")
    }
}

/// A compiled `y = y ⊕ (A ⊗ x)` engine under an arbitrary
/// [`Semiring`] — SpMV as a relational query whose scalar algebra is a
/// type parameter. Same planner, same [`ExecCtx`] policy, same strategy
/// telemetry as [`SpmvEngine`]; three differences follow from leaving
/// the classical algebra:
///
/// * Stored values lift through `S::from_f64` (structural zeros lift to
///   `S::zero()`, so formats that pad — Dense, ITPACK, Diagonal — stay
///   correct under algebras like min-plus where the identity is +∞).
/// * There is no interpreter tier off the f64 algebra, so
///   [`ExecCtx::specialization`] is moot: every format dispatches to
///   its generic serial kernel, which *is* the baseline tier.
/// * The parallel gate consults the race checker **under `S`'s
///   algebra**: a non-associative-commutative ⊕ is refused the
///   reduction certificate (BA06) and provably compiles to the serial
///   tier — scatter-family formats additionally self-gate at run time.
pub struct SemiringSpmvEngine<S: Semiring> {
    shape: String,
    strategy: Strategy,
    ctx: ExecCtx,
    _algebra: PhantomData<S>,
}

impl<S: Semiring> SemiringSpmvEngine<S> {
    /// Compile with the default [`ExecCtx`] (serial, unchecked,
    /// uninstrumented).
    pub fn compile(a: &SparseMatrix) -> RelResult<SemiringSpmvEngine<S>> {
        Self::compile_in(a, &ExecCtx::default())
    }

    /// Compile under an execution context (see
    /// [`SpmvEngine::compile_in`] for the policy the ctx carries).
    pub fn compile_in(a: &SparseMatrix, ctx: &ExecCtx) -> RelResult<SemiringSpmvEngine<S>> {
        check_operand("A", a, ctx.config())?;
        let m = a.meta();
        let meta = QueryMeta::new()
            .mat(MAT_A, m)
            .vec(VEC_X, VecMeta::dense(m.ncols))
            .vec(VEC_Y, VecMeta::dense(m.nrows));
        let nest = programs::matvec();
        let kernel = Compiler::in_ctx(ctx).compile(&nest, &meta)?;
        let decision = strategy_decision_in(&nest, true, m.nnz, ctx.config(), &S::props());
        record_strategy(ctx.obs(), "spmv", S::NAME, decision, true, m.nnz, ctx.config(), "reference");
        Ok(SemiringSpmvEngine {
            shape: kernel.shape(),
            strategy: decision.strategy,
            ctx: ctx.clone(),
            _algebra: PhantomData,
        })
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    pub fn plan_shape(&self) -> String {
        self.shape.clone()
    }

    /// `y = y ⊕ (A ⊗ x)` under `S` (accumulating, like
    /// [`SpmvEngine::run`]).
    pub fn run(&self, a: &SparseMatrix, x: &[S::Elem], y: &mut [S::Elem]) -> RelResult<()> {
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let base = match self.strategy {
                Strategy::Specialized => format!("spmv_{}", kind_slug(a.kind())),
                Strategy::Parallel => format!("par_spmv_{}", kind_slug(a.kind())),
                Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
            };
            let name = algebra_kernel_name(&base, S::NAME);
            obs.kernel(&name, KernelCounters { algebra: S::NAME, ..spmv_counters(&a.meta()) });
        }
        match self.strategy {
            Strategy::Specialized => a.spmv_acc_in::<S>(x, y),
            Strategy::Parallel => a.par_spmv_acc_in::<S>(x, y, &self.ctx),
            Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
        }
        Ok(())
    }
}

/// A compiled `C = C ⊕ (A ⊗ B)` engine (CSR × CSR, sparse result)
/// under an arbitrary [`Semiring`] — Gustavson's algorithm with the
/// scalar algebra as a type parameter, the workhorse behind triangle
/// counting (`count_u64`) and transitive-step queries (`bool_or_and`).
/// Only CSR operands carry the generic hand kernel, so unlike
/// [`SpmmEngine`] the operands are [`Csr`] by construction.
pub struct SemiringSpmmEngine<S: Semiring> {
    strategy: Strategy,
    ctx: ExecCtx,
    _algebra: PhantomData<S>,
}

impl<S: Semiring> SemiringSpmmEngine<S> {
    /// Compile with the default [`ExecCtx`].
    pub fn compile(a: &Csr, b: &Csr) -> RelResult<SemiringSpmmEngine<S>> {
        Self::compile_in(a, b, &ExecCtx::default())
    }

    /// Compile under an execution context.
    pub fn compile_in(a: &Csr, b: &Csr, ctx: &ExecCtx) -> RelResult<SemiringSpmmEngine<S>> {
        if ctx.config().checked {
            a.validate_ok()
                .map_err(|e| RelError::Validation(format!("operand A: {e}")))?;
            b.validate_ok()
                .map_err(|e| RelError::Validation(format!("operand B: {e}")))?;
        }
        let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta());
        let nest = programs::matmat();
        Compiler::in_ctx(ctx).compile(&nest, &meta)?;
        // The parallel tier merges per-block partial products, which is
        // only sound when ⊕ is associative-commutative — the same BA06
        // gate the kernels self-apply.
        let decision = strategy_decision_in(&nest, true, a.nnz(), ctx.config(), &S::props());
        record_strategy(ctx.obs(), "spmm", S::NAME, decision, true, a.nnz(), ctx.config(), "reference");
        Ok(SemiringSpmmEngine { strategy: decision.strategy, ctx: ctx.clone(), _algebra: PhantomData })
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The product's nonzero entries `(i, j, v)` with `v ≠ S::zero()`,
    /// row-sorted, columns sorted within each row.
    pub fn run_entries(&self, a: &Csr, b: &Csr) -> RelResult<Vec<(usize, usize, S::Elem)>> {
        let obs = self.ctx.obs();
        if obs.is_enabled() {
            let base = match self.strategy {
                Strategy::Specialized => "spmm_csr_csr",
                Strategy::Parallel => "par_spmm_csr_csr",
                Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
            };
            let name = algebra_kernel_name(base, S::NAME);
            obs.kernel(&name, KernelCounters { algebra: S::NAME, ..spmm_counters(&a.meta(), &b.meta()) });
        }
        let mut entries = match self.strategy {
            Strategy::Specialized => kernels::spmm_csr_csr_in::<S>(a, b),
            Strategy::Parallel => par_kernels::par_spmm_csr_csr_in::<S>(a, b, &self.ctx),
            Strategy::Interpreted => unreachable!("no interpreter tier off the f64 algebra"),
        };
        entries.sort_by_key(|&(i, j, _)| (i, j));
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::{FormatKind, Triplets};

    fn sample(n: usize, seed: u64) -> Triplets {
        bernoulli_formats::gen::random_sparse(n, n, n * 3, seed)
    }

    #[test]
    fn spmv_specializes_on_natural_plans() {
        let t = sample(12, 1);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SpmvEngine::compile(&a).unwrap();
            assert_eq!(
                eng.strategy(),
                Strategy::Specialized,
                "format {kind} plan {}",
                eng.plan_shape()
            );
        }
    }

    #[test]
    fn spmv_specialized_and_interpreted_agree() {
        let t = sample(15, 2);
        let x: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let interp = ExecCtx::default().specialization(false);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let fast = SpmvEngine::compile(&a).unwrap();
            let slow = SpmvEngine::compile_in(&a, &interp).unwrap();
            assert_eq!(slow.strategy(), Strategy::Interpreted);
            let mut y1 = vec![0.0; 15];
            let mut y2 = vec![0.0; 15];
            fast.run(&a, &x, &mut y1).unwrap();
            slow.run(&a, &x, &mut y2).unwrap();
            for (a1, a2) in y1.iter().zip(&y2) {
                assert!((a1 - a2).abs() < 1e-12, "format {kind}");
            }
        }
    }

    #[test]
    fn spmm_csr_csr_specializes() {
        let ta = sample(10, 3);
        let tb = sample(10, 4);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let eng = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        let mut c1 = vec![0.0; 100];
        eng.run(&a, &b, &mut c1).unwrap();
        // Interpreted agrees.
        let slow =
            SpmmEngine::compile_in(&a, &b, &ExecCtx::default().specialization(false)).unwrap();
        let mut c2 = vec![0.0; 100];
        slow.run(&a, &b, &mut c2).unwrap();
        for (x1, x2) in c1.iter().zip(&c2) {
            assert!((x1 - x2).abs() < 1e-10);
        }
    }

    #[test]
    fn spmm_with_coordinate_driver_uses_flat_plan() {
        // COO has no hierarchy: the planner must open with a flat sweep
        // of A binding (i, k), then run B's row below it.
        let ta = sample(10, 31);
        let tb = sample(10, 32);
        let a = SparseMatrix::from_triplets(FormatKind::Coordinate, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let eng = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(eng.strategy(), Strategy::Interpreted);
        let mut c = vec![0.0; 100];
        eng.run(&a, &b, &mut c).unwrap();
        let da = bernoulli_formats::DenseMatrix::from_triplets(&ta);
        let db = bernoulli_formats::DenseMatrix::from_triplets(&tb);
        for i in 0..10 {
            for j in 0..10 {
                let mut want = 0.0;
                for k in 0..10 {
                    want += da[(i, k)] * db[(k, j)];
                }
                assert!((c[i * 10 + j] - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn multivector_product_specializes_for_csr() {
        let t = sample(12, 7);
        let k = 4;
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvMultiEngine::compile(&a, k).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized, "plan {}", eng.plan_shape());
        assert_eq!(eng.k(), k);
        let x: Vec<f64> = (0..12 * k).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; 12 * k];
        eng.run(&a, &x, &mut y).unwrap();
        // Column-by-column check against plain SpMV.
        for col in 0..k {
            let xc: Vec<f64> = (0..12).map(|r| x[r * k + col]).collect();
            let mut yc = vec![0.0; 12];
            t.matvec_acc(&xc, &mut yc);
            for r in 0..12 {
                assert!((y[r * k + col] - yc[r]).abs() < 1e-10, "col {col} row {r}");
            }
        }
        // Interpreted path agrees.
        let slow =
            SpmvMultiEngine::compile_in(&a, k, &ExecCtx::default().specialization(false)).unwrap();
        let mut y2 = vec![0.0; 12 * k];
        slow.run(&a, &x, &mut y2).unwrap();
        for (a1, a2) in y.iter().zip(&y2) {
            assert!((a1 - a2).abs() < 1e-10);
        }
    }

    #[test]
    fn multivector_product_other_formats_interpret() {
        let t = sample(9, 8);
        let k = 3;
        for kind in [FormatKind::Ccs, FormatKind::Coordinate, FormatKind::Itpack] {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SpmvMultiEngine::compile(&a, k).unwrap();
            let x: Vec<f64> = (0..9 * k).map(|i| i as f64 * 0.25 - 2.0).collect();
            let mut y = vec![0.0; 9 * k];
            eng.run(&a, &x, &mut y).unwrap();
            for col in 0..k {
                let xc: Vec<f64> = (0..9).map(|r| x[r * k + col]).collect();
                let mut yc = vec![0.0; 9];
                t.matvec_acc(&xc, &mut yc);
                for r in 0..9 {
                    assert!((y[r * k + col] - yc[r]).abs() < 1e-10, "{kind} col {col}");
                }
            }
        }
    }

    #[test]
    fn spmv_parallel_only_above_threshold() {
        // The engine selects Parallel only when nnz clears the ctx's
        // work threshold, and below the threshold it is byte-identical
        // to the plain default engine — same strategy, same plan shape,
        // same results.
        let t = sample(64, 11);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            // Each format's own work measure (Dense reports nrows·ncols).
            let nnz = a.meta().nnz;
            let serial = SpmvEngine::compile(&a).unwrap();

            // Threshold above nnz: parallel ctx degrades to the exact
            // serial engine.
            let below =
                SpmvEngine::compile_in(&a, &ExecCtx::with_threads(4).threshold(nnz + 1)).unwrap();
            assert_eq!(below.strategy(), Strategy::Specialized, "format {kind}");
            assert_eq!(below.strategy(), serial.strategy(), "format {kind}");
            assert_eq!(below.plan_shape(), serial.plan_shape(), "format {kind}");

            // Threshold at/below nnz: Parallel, same plan shape.
            let above =
                SpmvEngine::compile_in(&a, &ExecCtx::with_threads(4).threshold(1).oversubscribe(true)).unwrap();
            assert_eq!(above.strategy(), Strategy::Parallel, "format {kind}");
            assert_eq!(above.plan_shape(), serial.plan_shape(), "format {kind}");

            // All three paths agree (row-family formats bit-for-bit;
            // everything in FormatKind::ALL here is deterministic, so
            // compare within reduction tolerance to stay format-generic).
            let n = a.meta().ncols;
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
            let mut y_ser = vec![0.0; a.meta().nrows];
            let mut y_bel = y_ser.clone();
            let mut y_par = y_ser.clone();
            serial.run(&a, &x, &mut y_ser).unwrap();
            below.run(&a, &x, &mut y_bel).unwrap();
            above.run(&a, &x, &mut y_par).unwrap();
            assert_eq!(y_ser, y_bel, "below-threshold engine must be bitwise serial ({kind})");
            for (p, s) in y_par.iter().zip(&y_ser) {
                assert!((p - s).abs() <= 1e-12 * s.abs().max(1.0), "format {kind}");
            }
        }
    }

    #[test]
    fn spmv_serial_ctx_never_parallelizes() {
        let t = sample(64, 12);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
    }

    #[test]
    fn spmm_and_multivector_parallel_above_threshold_agree() {
        let ta = sample(40, 13);
        let tb = sample(40, 14);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let hot = ExecCtx::with_threads(4).threshold(1).oversubscribe(true);
        let par = SpmmEngine::compile_in(&a, &b, &hot).unwrap();
        assert_eq!(par.strategy(), Strategy::Parallel);
        let ser = SpmmEngine::compile(&a, &b).unwrap();
        assert_eq!(ser.strategy(), Strategy::Specialized);
        let mut c1 = vec![0.0; 1600];
        let mut c2 = vec![0.0; 1600];
        par.run(&a, &b, &mut c1).unwrap();
        ser.run(&a, &b, &mut c2).unwrap();
        for (x1, x2) in c1.iter().zip(&c2) {
            assert!((x1 - x2).abs() <= 1e-12 * x2.abs().max(1.0));
        }

        let k = 3;
        let mpar = SpmvMultiEngine::compile_in(&a, k, &hot).unwrap();
        assert_eq!(mpar.strategy(), Strategy::Parallel);
        let mser = SpmvMultiEngine::compile(&a, k).unwrap();
        let x: Vec<f64> = (0..40 * k).map(|i| (i as f64 * 0.17).cos()).collect();
        let mut y1 = vec![0.0; 40 * k];
        let mut y2 = vec![0.0; 40 * k];
        mpar.run(&a, &x, &mut y1).unwrap();
        mser.run(&a, &x, &mut y2).unwrap();
        // Row-partitioned multivector kernel is bit-identical to serial.
        assert_eq!(y1, y2);
    }

    #[test]
    fn parallel_refused_for_racy_nest() {
        // A nest the race checker rejects can never compile to
        // Strategy::Parallel, even when the plan is specialisable and
        // the work clears the threshold. `Y(i) = A(i,j)·X(j)` as a
        // scatter *assignment* races on Y(i) across j-iterations (BA01).
        use bernoulli_relational::scalar::UpdateOp;
        let mut racy = programs::matvec();
        racy.op = UpdateOp::Assign;
        let exec = ExecConfig::with_threads(4).threshold(1).oversubscribe(true);
        assert_eq!(choose_strategy(&racy, true, 1 << 20, &exec), Strategy::Specialized);
        // Same gates, the genuine reduction nest: Parallel granted.
        assert_eq!(
            choose_strategy(&programs::matvec(), true, 1 << 20, &exec),
            Strategy::Parallel
        );
        // All engine nests carry a certificate.
        for nest in [programs::matvec(), programs::matmat(), programs::matvec_multi()] {
            assert!(bernoulli_analysis::race::check_do_any(&nest).is_parallel_safe());
        }
    }

    #[test]
    fn checked_mode_refuses_corrupt_operand() {
        use bernoulli_formats::Csr;
        // Row 0 stores columns out of order: the sanitizer flags BA23
        // and checked compilation refuses the operand up front.
        let bad = SparseMatrix::Csr(Csr::from_raw_unchecked(
            2,
            3,
            vec![0, 2, 2],
            vec![2, 0],
            vec![1.0, 2.0],
        ));
        let checked = ExecCtx::serial().checked(true);
        match SpmvEngine::compile_in(&bad, &checked) {
            Err(RelError::Validation(msg)) => {
                assert!(msg.contains("BA23"), "{msg}");
                assert!(msg.contains("operand A"), "{msg}");
            }
            Err(other) => panic!("expected Validation, got {other:?}"),
            Ok(_) => panic!("corrupt operand compiled"),
        }
        // The same matrix compiles fine unchecked (and would compute
        // garbage — exactly what checked mode exists to prevent)…
        SpmvEngine::compile_in(&bad, &ExecCtx::serial()).unwrap();
        // …and a clean operand passes checked compilation untouched.
        let good = SparseMatrix::from_triplets(FormatKind::Csr, &sample(8, 21));
        let eng = SpmvEngine::compile_in(&good, &checked).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        // SpMM checks both operands: B is the corrupt one here.
        let ga = SparseMatrix::from_triplets(FormatKind::Csr, &sample(2, 22));
        match SpmmEngine::compile_in(&ga, &bad, &checked) {
            Err(RelError::Validation(msg)) => assert!(msg.contains("operand B"), "{msg}"),
            other => panic!("expected Validation for B, got {:?}", other.err()),
        }
    }

    #[test]
    fn spmm_mixed_formats_interpret() {
        let ta = sample(8, 5);
        let tb = sample(8, 6);
        // The paper's 36-versions point: any format pairing compiles.
        for (ka, kb) in [
            (FormatKind::Csr, FormatKind::Ccs),
            (FormatKind::Ccs, FormatKind::Csr),
            (FormatKind::Itpack, FormatKind::Csr),
            (FormatKind::Csr, FormatKind::Cccs),
        ] {
            let a = SparseMatrix::from_triplets(ka, &ta);
            let b = SparseMatrix::from_triplets(kb, &tb);
            let eng = SpmmEngine::compile(&a, &b).unwrap();
            let mut c = vec![0.0; 64];
            eng.run(&a, &b, &mut c).unwrap();
            // Dense reference.
            let da = bernoulli_formats::DenseMatrix::from_triplets(&ta);
            let db = bernoulli_formats::DenseMatrix::from_triplets(&tb);
            for i in 0..8 {
                for j in 0..8 {
                    let mut want = 0.0;
                    for k in 0..8 {
                        want += da[(i, k)] * db[(k, j)];
                    }
                    assert!(
                        (c[i * 8 + j] - want).abs() < 1e-10,
                        "({ka:?},{kb:?}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn semiring_spmv_engine_relaxes_over_every_format() {
        use bernoulli_relational::semiring::MinPlus;
        // One Bellman-Ford step from source 0 on the weighted path
        // 0 →(2) 1 →(3) 2, plus the direct edge 0 →(7) 2: the engine
        // computes min-plus SpMV identically across all format kinds.
        let t = Triplets::from_entries(3, 3, &[(1, 0, 2.0), (2, 0, 7.0), (2, 1, 3.0)]);
        let d0 = [0.0, f64::INFINITY, f64::INFINITY];
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let eng = SemiringSpmvEngine::<MinPlus>::compile(&a).unwrap();
            assert_eq!(eng.strategy(), Strategy::Specialized, "format {kind}");
            let mut d1 = d0;
            eng.run(&a, &d0, &mut d1).unwrap();
            assert_eq!(d1, [0.0, 2.0, 7.0], "format {kind}");
            let mut d2 = d1;
            eng.run(&a, &d1, &mut d2).unwrap();
            assert_eq!(d2, [0.0, 2.0, 5.0], "format {kind}: relaxation via 1 must win");
        }
    }

    #[test]
    fn semiring_engine_parallel_tier_is_per_algebra() {
        use bernoulli_relational::semiring::{FirstNonZero, MinPlus};
        let t = sample(64, 17);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let hot = ExecCtx::with_threads(4).threshold(1).oversubscribe(true);
        // An associative-commutative ⊕ clears the race gate…
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<MinPlus>::compile_in(
            &a,
            &hot.clone().instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
        let s = &obs.report().strategies[0];
        assert_eq!((s.algebra.as_str(), s.race_checked, s.race_safe), ("min_plus", true, true));
        // …while a non-commutative ⊕ is refused the reduction
        // certificate (BA06) and provably downgraded to serial.
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<FirstNonZero>::compile_in(
            &a,
            &hot.clone().instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        let s = &obs.report().strategies[0];
        assert_eq!(
            (s.algebra.as_str(), s.race_checked, s.race_safe),
            ("first_nonzero", true, false)
        );
    }

    #[test]
    fn semiring_spmm_engine_counts_triangle_paths() {
        use bernoulli_relational::semiring::CountU64;
        // A = K3 adjacency; under the counting semiring A² holds the
        // number of length-2 walks: 2 on the diagonal, 1 elsewhere.
        let t = Triplets::from_entries(
            3,
            3,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 1, 1.0)],
        );
        let a = Csr::from_triplets(&t);
        for ctx in [ExecCtx::default(), ExecCtx::with_threads(4).threshold(1)] {
            let eng = SemiringSpmmEngine::<CountU64>::compile_in(&a, &a, &ctx).unwrap();
            let entries = eng.run_entries(&a, &a).unwrap();
            assert_eq!(entries.len(), 9);
            for (i, j, walks) in entries {
                assert_eq!(walks, if i == j { 2 } else { 1 }, "({i},{j})");
            }
        }
    }

    #[test]
    fn semiring_engines_record_algebra_qualified_telemetry() {
        use bernoulli_relational::semiring::MinPlus;
        let t = sample(16, 18);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SemiringSpmvEngine::<MinPlus>::compile_in(
            &a,
            &ExecCtx::serial().instrument(obs.clone()),
        )
        .unwrap();
        let x = vec![0.0; 16];
        let mut y = vec![f64::INFINITY; 16];
        eng.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        let k = &r.kernels["spmv_csr.min_plus"];
        assert_eq!((k.calls, k.algebra), (1, "min_plus"));
        assert!(r.to_json().contains("\"algebra\":\"min_plus\""));
    }

    #[test]
    fn obs_records_plan_strategy_and_kernel_streams() {
        let t = sample(16, 41);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng =
            SpmvEngine::compile_in(&a, &ExecCtx::serial().instrument(obs.clone())).unwrap();
        let x = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        eng.run(&a, &x, &mut y).unwrap();
        eng.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        // Plan provenance from the planner seam.
        assert_eq!(r.plans.len(), 1);
        assert_eq!(r.plans[0].shape, "i:outer(A)>j:inner(A)[X?]");
        assert!(r.plans[0].explain.contains("probe X(j)"), "{}", r.plans[0].explain);
        // The strategy decision with its gates.
        assert_eq!(r.strategies.len(), 1);
        assert_eq!(r.strategies[0].op, "spmv");
        assert_eq!(r.strategies[0].strategy, "Specialized");
        assert!(r.strategies[0].specializable);
        assert!(!r.strategies[0].race_checked, "serial config never reaches the race gate");
        assert_eq!(r.counters["engine.compile"], 1);
        // Per-kernel counters merged across the two runs.
        let k = &r.kernels["spmv_csr"];
        let nnz = a.meta().nnz as u64;
        assert_eq!((k.calls, k.nnz, k.flops), (2, 2 * nnz, 4 * nnz));
        assert!(k.bytes > 0);
    }

    #[test]
    fn obs_disabled_engine_is_identical_and_silent() {
        let t = sample(20, 42);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.13).sin()).collect();
        let silent = Obs::disabled();
        let eng_obs =
            SpmvEngine::compile_in(&a, &ExecCtx::serial().instrument(silent.clone())).unwrap();
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng_obs.strategy(), eng.strategy());
        assert_eq!(eng_obs.plan_shape(), eng.plan_shape());
        let mut y1 = vec![0.0; 20];
        let mut y2 = vec![0.0; 20];
        eng_obs.run(&a, &x, &mut y1).unwrap();
        eng.run(&a, &x, &mut y2).unwrap();
        assert_eq!(y1, y2, "obs-threaded engine must be byte-identical when disabled");
        assert!(silent.report().kernels.is_empty());
    }

    #[test]
    fn obs_reports_race_gate_in_parallel_strategy() {
        let t = sample(64, 43);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SpmvEngine::compile_in(
            &a,
            &ExecCtx::with_threads(4).threshold(1).oversubscribe(true).instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
        let r = obs.report();
        let s = &r.strategies[0];
        assert_eq!(s.strategy, "Parallel");
        assert!(s.race_checked && s.race_safe);
        assert_eq!(s.threads, 4);
        assert_eq!(s.threshold, 1);
        assert_eq!(s.work, a.meta().nnz as u64);
    }

    #[test]
    fn spmm_and_multivector_obs_kernel_names_track_strategy() {
        let ta = sample(40, 44);
        let tb = sample(40, 45);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &ta);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &tb);
        let obs = Obs::enabled();
        let par = ExecCtx::with_threads(2).threshold(1).oversubscribe(true).instrument(obs.clone());
        let spmm = SpmmEngine::compile_in(&a, &b, &par).unwrap();
        let mut c = vec![0.0; 1600];
        spmm.run(&a, &b, &mut c).unwrap();
        let multi = SpmvMultiEngine::compile_in(&a, 3, &par).unwrap();
        let x = vec![1.0; 120];
        let mut y = vec![0.0; 120];
        multi.run(&a, &x, &mut y).unwrap();
        let r = obs.report();
        r.validate().unwrap();
        assert!(r.kernels.contains_key("par_spmm_csr_csr"), "{:?}", r.kernels.keys());
        assert!(r.kernels.contains_key("par_spmm_csr_dense"), "{:?}", r.kernels.keys());
        let ops: Vec<&str> = r.strategies.iter().map(|s| s.op.as_str()).collect();
        assert_eq!(ops, ["spmm", "spmv_multi"]);
        assert_eq!(r.plans.len(), 2);
    }

    #[test]
    fn single_worker_pool_downgrades_parallel_with_reason() {
        let t = sample(64, 46);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        // Request 4 workers without oversubscription: on a machine with
        // one hardware thread the effective pool is 1 worker and the
        // plan is downgraded to serial with the recorded reason; on a
        // bigger machine the plan goes parallel with no downgrade.
        let ctx = ExecCtx::with_threads(4).threshold(1).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let s = &obs.report().strategies[0];
        if hw <= 1 {
            assert_eq!(eng.strategy(), Strategy::Specialized);
            assert_eq!(s.downgrade, "single_worker_pool");
            assert!(!s.race_checked);
        } else {
            assert_eq!(eng.strategy(), Strategy::Parallel);
            assert_eq!(s.downgrade, "");
        }
        // Oversubscription restores the historical behaviour anywhere.
        let eng = SpmvEngine::compile_in(&a, &ctx.clone().oversubscribe(true)).unwrap();
        assert_eq!(eng.strategy(), Strategy::Parallel);
    }

    #[test]
    fn racy_nest_downgrade_reason_is_recorded() {
        use bernoulli_relational::scalar::UpdateOp;
        let mut racy = programs::matvec();
        racy.op = UpdateOp::Assign;
        let exec = ExecConfig::with_threads(4).threshold(1).oversubscribe(true);
        let d = strategy_decision(&racy, true, 1 << 20, &exec);
        assert_eq!(d.strategy, Strategy::Specialized);
        assert_eq!(d.downgrade, "racy_nest");
        let d = strategy_decision(&programs::matvec(), true, 1 << 20, &exec);
        assert_eq!(d.strategy, Strategy::Parallel);
        assert_eq!(d.downgrade, "");
    }

    #[test]
    fn fast_tier_dispatches_certified_csr() {
        let t = sample(64, 47);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let ctx = ExecCtx::serial().fast_kernels(true).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        assert_eq!(eng.strategy(), Strategy::Specialized);
        assert_eq!(eng.tier(), "fast");
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut y = vec![0.0; 64];
        eng.run(&a, &x, &mut y).unwrap();
        // Bitwise: the fast kernel matches its documented lane order.
        let mut y_ref = vec![0.0; 64];
        if let SparseMatrix::Csr(m) = &a {
            fast::spmv_csr_lanes(m, &x, &mut y_ref);
        }
        for (p, q) in y.iter().zip(&y_ref) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        let r = obs.report();
        r.validate().unwrap();
        assert_eq!(r.strategies[0].tier, "fast");
        assert!(r.kernels.contains_key("fast_spmv_csr"), "{:?}", r.kernels.keys());
        // The fast tier stays opt-in: a default ctx reports reference.
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        assert_eq!(eng.tier(), "reference");
    }

    #[test]
    fn fast_tier_refused_without_certificate() {
        // An uncovered format stays on the reference tier…
        let t = sample(32, 48);
        let a = SparseMatrix::from_triplets(FormatKind::Ccs, &t);
        let obs = Obs::enabled();
        let ctx = ExecCtx::serial().fast_kernels(true).instrument(obs.clone());
        let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
        assert_eq!(eng.tier(), "reference");
        assert_eq!(obs.report().strategies[0].tier, "reference");
        // …and so does a matrix the sanitizer rejects (columns out of
        // order, BA23 — the reference kernel still computes correctly).
        let bad = SparseMatrix::Csr(Csr::from_raw_unchecked(
            2,
            3,
            vec![0, 2, 2],
            vec![2, 0],
            vec![1.0, 2.0],
        ));
        let eng = SpmvEngine::compile_in(&bad, &ExecCtx::serial().fast_kernels(true)).unwrap();
        assert_eq!(eng.tier(), "reference");
        let mut y = vec![0.0; 2];
        eng.run(&bad, &[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, [3.0, 0.0]);
    }

    #[test]
    fn fast_engine_falls_back_to_reference_for_uncovered_matrix() {
        // The certificate fingerprints the exact arrays it certified; a
        // clone has different storage, so the engine falls back to the
        // reference kernel instead of trusting a stale certificate.
        let t = sample(48, 49);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let obs = Obs::enabled();
        let eng = SpmvEngine::compile_in(
            &a,
            &ExecCtx::serial().fast_kernels(true).instrument(obs.clone()),
        )
        .unwrap();
        assert_eq!(eng.tier(), "fast");
        let b = a.clone();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut y = vec![0.0; 48];
        eng.run(&b, &x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        b.spmv_acc(&x, &mut y_ref);
        assert_eq!(y, y_ref, "clone must take the reference path bitwise");
        let r = obs.report();
        assert!(r.kernels.contains_key("spmv_csr"), "{:?}", r.kernels.keys());
        assert!(!r.kernels.contains_key("fast_spmv_csr"), "{:?}", r.kernels.keys());
    }

    #[test]
    fn hinted_compile_replays_cold_decisions_bitwise() {
        let t = sample(64, 51);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let cold = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        assert_eq!((cold.strategy(), cold.tier()), (Strategy::Specialized, "fast"));
        let hints = cold.hints();
        let obs = Obs::enabled();
        let warm = SpmvEngine::compile_hinted(
            &a,
            &ExecCtx::serial().fast_kernels(true).instrument(obs.clone()),
            &hints,
        )
        .unwrap();
        assert_eq!(warm.strategy(), cold.strategy());
        assert_eq!(warm.plan_shape(), cold.plan_shape());
        assert_eq!(warm.tier(), "fast");
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin()).collect();
        let (mut y_cold, mut y_warm) = (vec![0.0; 64], vec![0.0; 64]);
        cold.run(&a, &x, &mut y_cold).unwrap();
        warm.run(&a, &x, &mut y_warm).unwrap();
        assert_eq!(
            y_cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let r = obs.report();
        // The warm path skipped the planner entirely: no plan event,
        // but the strategy decision and the hinted counter are there.
        assert!(r.plans.is_empty(), "{:?}", r.plans);
        assert_eq!(r.counters["engine.compile_hinted"], 1);
        assert_eq!(r.strategies[0].strategy, "Specialized");
        assert!(!r.strategies[0].race_checked, "hinted path never re-runs the race gate");
        assert!(warm.pseudocode().contains("plan replayed from structure cache"));
    }

    #[test]
    fn hinted_compile_recertifies_fast_tier_on_a_rebuilt_matrix() {
        // The cached certificate fingerprints the cold operand's
        // buffers; a structurally identical rebuild misses covers() and
        // must earn a *fresh* certificate, not inherit the stale one.
        let t = sample(48, 52);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let cold = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        let hints = cold.hints();
        assert!(hints.fast_cert.is_some());
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let warm =
            SpmvEngine::compile_hinted(&b, &ExecCtx::serial().fast_kernels(true), &hints).unwrap();
        assert_eq!(warm.tier(), "fast", "re-derived certificate still arms the fast tier");
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.29).cos()).collect();
        let mut y = vec![0.0; 48];
        warm.run(&b, &x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        if let SparseMatrix::Csr(m) = &b {
            fast::spmv_csr_lanes(m, &x, &mut y_ref);
        }
        for (p, q) in y.iter().zip(&y_ref) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn hinted_parallel_verdict_regates_against_this_context() {
        let t = sample(64, 53);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let par = ExecCtx::with_threads(2).threshold(1).oversubscribe(true);
        let cold = SpmvEngine::compile_in(&a, &par).unwrap();
        assert_eq!(cold.strategy(), Strategy::Parallel);
        let hints = cold.hints();
        // Replaying a Parallel verdict under a serial context re-applies
        // the O(1) gates and lands on the serial specialized tier.
        let warm = SpmvEngine::compile_hinted(&a, &ExecCtx::serial(), &hints).unwrap();
        assert_eq!(warm.strategy(), Strategy::Specialized);
        // Under an equivalent parallel context the verdict replays as-is
        // and both engines agree bitwise.
        let warm_par = SpmvEngine::compile_hinted(&a, &par, &hints).unwrap();
        assert_eq!(warm_par.strategy(), Strategy::Parallel);
        let x: Vec<f64> = (0..64).map(|i| i as f64 * 0.11 - 3.0).collect();
        let (mut y1, mut y2) = (vec![0.0; 64], vec![0.0; 64]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm_par.run(&a, &x, &mut y2).unwrap();
        assert_eq!(
            y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hinted_interpreter_tier_falls_back_to_the_full_compile() {
        // An Interpreted hint needs a real plan to interpret, so the
        // warm path degenerates to the cold one (plan event and all).
        let t = sample(15, 54);
        let a = SparseMatrix::from_triplets(FormatKind::Coordinate, &t);
        let interp = ExecCtx::default().specialization(false);
        let cold = SpmvEngine::compile_in(&a, &interp).unwrap();
        assert_eq!(cold.strategy(), Strategy::Interpreted);
        let obs = Obs::enabled();
        let warm =
            SpmvEngine::compile_hinted(&a, &interp.clone().instrument(obs.clone()), &cold.hints())
                .unwrap();
        assert_eq!(warm.strategy(), Strategy::Interpreted);
        let r = obs.report();
        assert_eq!(r.plans.len(), 1, "fallback goes through the planner");
        assert!(!r.counters.contains_key("engine.compile_hinted"));
        let x: Vec<f64> = (0..15).map(|i| (i as f64).sqrt()).collect();
        let (mut y1, mut y2) = (vec![0.0; 15], vec![0.0; 15]);
        cold.run(&a, &x, &mut y1).unwrap();
        warm.run(&a, &x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn fast_engine_pseudocode_shows_the_lane_split() {
        let t = sample(32, 50);
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        let code = eng.pseudocode();
        assert!(code.contains("acc0 = acc1 = acc2 = acc3 = 0.0;"), "{code}");
        assert!(code.contains("Y[i] += ((acc0 + acc1) + (acc2 + acc3));"), "{code}");
        // The reference engine renders the classic loop.
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial()).unwrap();
        let code = eng.pseudocode();
        assert!(code.contains("Y[i] += (a_val * x_val);"), "{code}");
        assert!(!code.contains("fast tier"), "{code}");
    }
}
