//! # bernoulli-graph
//!
//! Graph algorithms as sparse relational queries — the payoff of the
//! semiring-generic kernel refactor. A graph is its adjacency matrix;
//! one traversal template (SpMV / SpGEMM through the planner, engine
//! and [`ExecCtx`] policy path) instantiates at three different scalar
//! algebras to give three different algorithms:
//!
//! * **PageRank** — classical `(+, ×)` over `f64`: power iteration on
//!   the damped column-stochastic walk matrix, one [`SpmvEngine`]
//!   application per step.
//! * **BFS level assignment** — `bool_or_and`: a frontier is a boolean
//!   vector, one masked Bool-SpMV ([`SemiringSpmvEngine`]) advances it
//!   one hop.
//! * **Triangle counting** — `count_u64`: `A²` under the counting
//!   semiring holds length-2-walk counts; masking by `A` and summing
//!   counts each triangle six times ([`SemiringSpmmEngine`]).
//!
//! Everything policy-like (threads, parallel threshold, checked mode,
//! telemetry) flows through the [`ExecCtx`] exactly as it does for the
//! f64 solvers; parallel tiers are granted per-algebra by the race
//! checker (`bool_or_and` and `count_u64` are associative-commutative,
//! so the certificates hold).

use std::collections::HashSet;

use bernoulli::engines::{SemiringSpmmEngine, SemiringSpmvEngine, SpmvEngine};
use bernoulli::{ExecCtx, RelError, RelResult};
use bernoulli_formats::{Csr, SparseMatrix, Triplets};
use bernoulli_relational::semiring::{BoolOrAnd, CountU64};

/// Knobs for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankOptions {
    /// Damping factor `d` (the classical 0.85).
    pub damping: f64,
    /// L1 convergence tolerance on successive rank vectors.
    pub tol: f64,
    pub max_iters: usize,
}

impl Default for PageRankOptions {
    fn default() -> PageRankOptions {
        PageRankOptions { damping: 0.85, tol: 1e-12, max_iters: 200 }
    }
}

/// [`pagerank`]'s result: ranks sum to 1 (within roundoff).
#[derive(Clone, Debug)]
pub struct PageRank {
    pub ranks: Vec<f64>,
    pub iters: usize,
    pub converged: bool,
}

/// PageRank by power iteration: `r ← d·M·r + (1−d)/n + d·s/n` with
/// `M(v,u) = A(u,v)/outdeg(u)` the column-stochastic walk matrix and
/// `s` the rank mass sitting on dangling (outdegree-0) nodes, which is
/// redistributed uniformly. `adj(u,v) ≠ 0` is the edge `u → v`; edge
/// weights are ignored (the walk is uniform over out-neighbours). The
/// `M·r` product runs through a compiled [`SpmvEngine`] under `ctx`,
/// so the planner, strategy gates and telemetry all apply.
pub fn pagerank(adj: &Csr, opts: &PageRankOptions, ctx: &ExecCtx) -> RelResult<PageRank> {
    let n = adj.nrows();
    if adj.ncols() != n {
        return Err(RelError::Validation(format!(
            "pagerank: adjacency must be square, got {}×{}",
            n,
            adj.ncols()
        )));
    }
    if n == 0 {
        return Ok(PageRank { ranks: vec![], iters: 0, converged: true });
    }
    if !(0.0..1.0).contains(&opts.damping) {
        return Err(RelError::Validation(format!(
            "pagerank: damping must be in [0, 1), got {}",
            opts.damping
        )));
    }
    let entries = adj.to_triplets().canonicalize();
    let mut outdeg = vec![0u64; n];
    for &(u, _, _) in entries.entries() {
        outdeg[u] += 1;
    }
    // M(v, u) = 1/outdeg(u) for each edge u → v.
    let walk: Vec<(usize, usize, f64)> = entries
        .entries()
        .iter()
        .map(|&(u, v, _)| (v, u, 1.0 / outdeg[u] as f64))
        .collect();
    let m = SparseMatrix::Csr(Csr::from_triplets(&Triplets::from_entries(n, n, &walk)));
    let eng = SpmvEngine::compile_in(&m, ctx)?;

    let d = opts.damping;
    let teleport = (1.0 - d) / n as f64;
    let mut r = vec![1.0 / n as f64; n];
    let mut mr = vec![0.0; n];
    for it in 1..=opts.max_iters {
        mr.fill(0.0);
        eng.run(&m, &r, &mut mr)?;
        let dangling: f64 =
            r.iter().zip(&outdeg).filter(|(_, &deg)| deg == 0).map(|(ri, _)| ri).sum();
        let base = teleport + d * dangling / n as f64;
        let mut delta = 0.0;
        for (ri, &mri) in r.iter_mut().zip(&mr) {
            let next = d * mri + base;
            delta += (next - *ri).abs();
            *ri = next;
        }
        if delta < opts.tol {
            return Ok(PageRank { ranks: r, iters: it, converged: true });
        }
    }
    Ok(PageRank { ranks: r, iters: opts.max_iters, converged: false })
}

/// BFS level assignment from `source`: `levels[v]` is the hop count of
/// the shortest path `source → v`, or `-1` if unreachable. The frontier
/// is a boolean vector; each round is one Bool-SpMV `next = Aᵀ·frontier`
/// under the `bool_or_and` semiring (through a compiled
/// [`SemiringSpmvEngine`]), masked by the set of still-unvisited
/// vertices. `adj(u,v) ≠ 0` is the edge `u → v`.
pub fn bfs_levels(adj: &Csr, source: usize, ctx: &ExecCtx) -> RelResult<Vec<i64>> {
    let n = adj.nrows();
    if adj.ncols() != n {
        return Err(RelError::Validation(format!(
            "bfs: adjacency must be square, got {}×{}",
            n,
            adj.ncols()
        )));
    }
    if source >= n {
        return Err(RelError::Validation(format!("bfs: source {source} out of range for n={n}")));
    }
    // B(v, u) = adj(u, v): y = B·x computes y_v = ⋁_u adj(u,v) ∧ x_u,
    // the one-hop image of the frontier.
    let transposed: Vec<(usize, usize, f64)> =
        adj.to_triplets().entries().iter().map(|&(u, v, w)| (v, u, w)).collect();
    let b = SparseMatrix::Csr(Csr::from_triplets(&Triplets::from_entries(n, n, &transposed)));
    let eng = SemiringSpmvEngine::<BoolOrAnd>::compile_in(&b, ctx)?;

    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut frontier = vec![false; n];
    frontier[source] = true;
    let mut image = vec![false; n];
    for depth in 1..=n as i64 {
        image.fill(false);
        eng.run(&b, &frontier, &mut image)?;
        // Mask: only still-unvisited vertices enter the next frontier.
        let mut any = false;
        for v in 0..n {
            frontier[v] = image[v] && levels[v] < 0;
            if frontier[v] {
                levels[v] = depth;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    Ok(levels)
}

/// Triangle count of a simple undirected graph given as a symmetric
/// 0/1 adjacency with an empty diagonal. `A²` under the `count_u64`
/// semiring counts length-2 walks `i → k → j`; keeping only entries
/// where `(i, j)` is itself an edge (the mask) counts each triangle
/// once per ordered edge-and-apex choice — six times — so the masked
/// sum divides by 6. The product runs through a compiled
/// [`SemiringSpmmEngine`] under `ctx`.
pub fn triangle_count(adj: &Csr, ctx: &ExecCtx) -> RelResult<u64> {
    let n = adj.nrows();
    if adj.ncols() != n {
        return Err(RelError::Validation(format!(
            "triangles: adjacency must be square, got {}×{}",
            n,
            adj.ncols()
        )));
    }
    let entries = adj.to_triplets().canonicalize();
    let mut edges: HashSet<(usize, usize)> = HashSet::with_capacity(entries.entries().len());
    for &(u, v, _) in entries.entries() {
        if u == v {
            return Err(RelError::Validation(format!("triangles: self-loop at vertex {u}")));
        }
        edges.insert((u, v));
    }
    for &(u, v) in &edges {
        if !edges.contains(&(v, u)) {
            return Err(RelError::Validation(format!(
                "triangles: adjacency not symmetric (edge {u}→{v} has no mate)"
            )));
        }
    }
    let eng = SemiringSpmmEngine::<CountU64>::compile_in(adj, adj, ctx)?;
    let walks = eng.run_entries(adj, adj)?;
    let six_times: u64 =
        walks.iter().filter(|&&(i, j, _)| edges.contains(&(i, j))).map(|&(_, _, c)| c).sum();
    debug_assert_eq!(six_times % 6, 0, "masked walk count must be divisible by 6");
    Ok(six_times / 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K4 on vertices 0–3 plus the path 4–5–6, undirected.
    fn k4_plus_path() -> Csr {
        let mut e = Vec::new();
        for u in 0..4usize {
            for v in 0..4usize {
                if u != v {
                    e.push((u, v, 1.0));
                }
            }
        }
        for (u, v) in [(4, 5), (5, 4), (5, 6), (6, 5)] {
            e.push((u, v, 1.0));
        }
        Csr::from_triplets(&Triplets::from_entries(7, 7, &e))
    }

    #[test]
    fn pagerank_known_answers_on_k4_plus_path() {
        let g = k4_plus_path();
        for ctx in [ExecCtx::default(), ExecCtx::with_threads(4).threshold(1)] {
            let pr = pagerank(&g, &PageRankOptions::default(), &ctx).unwrap();
            assert!(pr.converged, "{} iters", pr.iters);
            assert!((pr.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // K4 is vertex-transitive and isolated from the path except
            // through teleporting: its nodes each hold exactly 1/7.
            for v in 0..4 {
                assert!((pr.ranks[v] - 1.0 / 7.0).abs() < 1e-9, "vertex {v}: {}", pr.ranks[v]);
            }
            // Path closed form: t = (1−d)/7; ends b = t(1+d/2)/(1−d²),
            // middle c = t + 2db.
            let d = 0.85;
            let t = 0.15 / 7.0;
            let b = t * (1.0 + d / 2.0) / (1.0 - d * d);
            let c = t + 2.0 * d * b;
            assert!((pr.ranks[4] - b).abs() < 1e-9, "end: {} vs {b}", pr.ranks[4]);
            assert!((pr.ranks[6] - b).abs() < 1e-9);
            assert!((pr.ranks[5] - c).abs() < 1e-9, "middle: {} vs {c}", pr.ranks[5]);
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        // 0 → 1 → 2, vertex 2 dangles: total mass must stay 1 and the
        // chain must order ranks 2 > 1 > 0 (rank flows downstream).
        let g = Csr::from_triplets(&Triplets::from_entries(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 1.0)],
        ));
        let pr = pagerank(&g, &PageRankOptions::default(), &ExecCtx::default()).unwrap();
        assert!(pr.converged);
        assert!((pr.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr.ranks[2] > pr.ranks[1] && pr.ranks[1] > pr.ranks[0], "{:?}", pr.ranks);
    }

    #[test]
    fn bfs_levels_on_k4_plus_path() {
        let g = k4_plus_path();
        for ctx in [ExecCtx::default(), ExecCtx::with_threads(4).threshold(1)] {
            assert_eq!(bfs_levels(&g, 0, &ctx).unwrap(), [0, 1, 1, 1, -1, -1, -1]);
            assert_eq!(bfs_levels(&g, 4, &ctx).unwrap(), [-1, -1, -1, -1, 0, 1, 2]);
        }
    }

    #[test]
    fn bfs_follows_edge_direction() {
        // Directed chain 0 → 1 → 2: forward BFS reaches everything,
        // backward BFS from 2 reaches nothing.
        let g = Csr::from_triplets(&Triplets::from_entries(
            3,
            3,
            &[(0, 1, 1.0), (1, 2, 1.0)],
        ));
        assert_eq!(bfs_levels(&g, 0, &ExecCtx::default()).unwrap(), [0, 1, 2]);
        assert_eq!(bfs_levels(&g, 2, &ExecCtx::default()).unwrap(), [-1, -1, 0]);
    }

    #[test]
    fn triangle_count_on_k4_plus_path() {
        let g = k4_plus_path();
        for ctx in [ExecCtx::default(), ExecCtx::with_threads(4).threshold(1)] {
            // K4 has C(4,3) = 4 triangles; the path has none.
            assert_eq!(triangle_count(&g, &ctx).unwrap(), 4);
        }
    }

    #[test]
    fn triangle_count_rejects_malformed_adjacency() {
        let loops =
            Csr::from_triplets(&Triplets::from_entries(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]));
        assert!(matches!(
            triangle_count(&loops, &ExecCtx::default()),
            Err(RelError::Validation(msg)) if msg.contains("self-loop")
        ));
        let asym = Csr::from_triplets(&Triplets::from_entries(2, 2, &[(0, 1, 1.0)]));
        assert!(matches!(
            triangle_count(&asym, &ExecCtx::default()),
            Err(RelError::Validation(msg)) if msg.contains("symmetric")
        ));
    }

    #[test]
    fn input_validation() {
        let rect = Csr::from_triplets(&Triplets::from_entries(2, 3, &[(0, 1, 1.0)]));
        assert!(pagerank(&rect, &PageRankOptions::default(), &ExecCtx::default()).is_err());
        assert!(bfs_levels(&rect, 0, &ExecCtx::default()).is_err());
        assert!(triangle_count(&rect, &ExecCtx::default()).is_err());
        let g = k4_plus_path();
        assert!(bfs_levels(&g, 99, &ExecCtx::default()).is_err());
        let bad = PageRankOptions { damping: 1.5, ..Default::default() };
        assert!(pagerank(&g, &bad, &ExecCtx::default()).is_err());
    }
}
