//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate, implementing the data-parallel subset the workspace's
//! parallel kernels use over `std::thread::scope`.
//!
//! The build environment has no crates.io access, so this crate
//! provides rayon's *names and semantics* for exactly the operations
//! `bernoulli_formats::par_kernels` and the benchmark harness need:
//!
//! - [`slice::ParallelSliceMut::par_chunks_mut`] /
//!   [`slice::ParallelSlice::par_chunks`] with `enumerate` + `for_each`
//! - [`iter::IntoParallelIterator`] for `Range<usize>` and `Vec<T>`
//!   with `map` → `collect`/`sum`/`reduce` and `for_each`
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] and
//!   [`current_num_threads`] for thread-count control
//! - [`join`] / [`scope`]
//!
//! Execution model: each parallel call spawns up to
//! `current_num_threads() - 1` helper threads in a `std::thread::scope`
//! (the calling thread works too) and drains a shared chunk queue, so
//! uneven chunks load-balance. Ordered operations (`map().collect()`)
//! process contiguous sub-ranges and reassemble in index order, so
//! results are deterministic and independent of the worker count.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel calls on this thread will use:
/// an enclosing [`ThreadPool::install`] override, else
/// `RAYON_NUM_THREADS`, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here; kept
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default" (as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes a thread-count override: work executed under
/// [`ThreadPool::install`] uses this pool's thread count. (Threads are
/// spawned per parallel call, not parked — adequate for kernels whose
/// runtime dwarfs thread spawn, which is the regime the parallel
/// dispatch threshold guarantees.)
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined closure panicked");
        (ra, rb)
    })
}

/// Scoped task spawning (thin wrapper over `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
{
    std::thread::scope(f)
}

/// Drain `items` through `f` on up to `current_num_threads()` workers
/// (the calling thread included), pulling from a shared queue so uneven
/// items load-balance.
fn run_tasks<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: &F) {
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    let next = || queue.lock().expect("task queue poisoned").next();
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(|| {
                while let Some(item) = next() {
                    f(item);
                }
            });
        }
        while let Some(item) = next() {
            f(item);
        }
    });
}

/// Apply `f` to `lo..hi` split into contiguous sub-ranges, returning
/// the per-index results in index order (worker-count independent).
fn map_range_ordered<O: Send>(
    range: Range<usize>,
    f: &(impl Fn(usize) -> O + Sync),
) -> Vec<O> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let subs: Vec<Range<usize>> = (0..workers)
        .map(|w| {
            let lo = range.start + w * chunk;
            let hi = (lo + chunk).min(range.end);
            lo..hi
        })
        .filter(|r| r.start < r.end)
        .collect();
    let parts: Mutex<Vec<(usize, Vec<O>)>> = Mutex::new(Vec::new());
    run_tasks(subs, &|sub: Range<usize>| {
        let start = sub.start;
        let mapped: Vec<O> = sub.map(f).collect();
        parts.lock().expect("result store poisoned").push((start, mapped));
    });
    let mut parts = parts.into_inner().expect("result store poisoned");
    parts.sort_by_key(|&(start, _)| start);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

pub mod iter {
    use super::{map_range_ordered, run_tasks};
    use std::ops::Range;
    use std::sync::Mutex;

    /// Conversion into a parallel iterator, mirroring rayon's trait.
    pub trait IntoParallelIterator {
        type Iter;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = RangeParIter;
        type Item = usize;
        fn into_par_iter(self) -> RangeParIter {
            RangeParIter { range: self }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = VecParIter<T>;
        type Item = T;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct RangeParIter {
        range: Range<usize>,
    }

    impl RangeParIter {
        pub fn map<O, F: Fn(usize) -> O>(self, f: F) -> MapRange<F> {
            MapRange { range: self.range, f }
        }

        pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
            let items: Vec<usize> = self.range.collect();
            run_tasks(items, &f);
        }
    }

    /// `range.into_par_iter().map(f)`: the one adapter the kernels use.
    pub struct MapRange<F> {
        range: Range<usize>,
        f: F,
    }

    impl<F> MapRange<F> {
        /// Ordered parallel collect: results arrive in index order
        /// regardless of how many workers ran.
        pub fn collect<C, O>(self) -> C
        where
            F: Fn(usize) -> O + Sync,
            O: Send,
            C: FromIterator<O>,
        {
            map_range_ordered(self.range, &self.f).into_iter().collect()
        }

        /// Parallel map + *sequential in-order* sum, so the result is
        /// deterministic for a fixed chunking (independent of workers).
        pub fn sum<S>(self) -> S
        where
            F: Fn(usize) -> S + Sync,
            S: Send + std::iter::Sum<S>,
        {
            map_range_ordered(self.range, &self.f).into_iter().sum()
        }

        /// Parallel map + sequential in-order fold with `op`.
        pub fn reduce<O, ID, OP>(self, identity: ID, op: OP) -> O
        where
            F: Fn(usize) -> O + Sync,
            O: Send,
            ID: Fn() -> O,
            OP: Fn(O, O) -> O,
        {
            map_range_ordered(self.range, &self.f).into_iter().fold(identity(), op)
        }
    }

    /// Parallel iterator over an owned `Vec`.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> VecParIter<T> {
        pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
            run_tasks(self.items, &f);
        }

        /// Ordered parallel map over the items.
        pub fn map_collect<O, C, F>(self, f: F) -> C
        where
            F: Fn(T) -> O + Sync,
            O: Send,
            C: FromIterator<O>,
        {
            let slots: Vec<Mutex<Option<O>>> =
                self.items.iter().map(|_| Mutex::new(None)).collect();
            let indexed: Vec<(usize, T)> = self.items.into_iter().enumerate().collect();
            run_tasks(indexed, &|(i, item): (usize, T)| {
                *slots[i].lock().expect("slot poisoned") = Some(f(item));
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("slot poisoned").expect("slot filled"))
                .collect()
        }
    }
}

pub mod slice {
    use super::run_tasks;

    /// `par_chunks` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks { chunks: self.chunks(chunk_size).collect() }
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
        }
    }

    pub struct ParChunks<'a, T> {
        chunks: Vec<&'a [T]>,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        pub fn len(&self) -> usize {
            self.chunks.len()
        }

        pub fn is_empty(&self) -> bool {
            self.chunks.is_empty()
        }

        pub fn enumerate(self) -> EnumerateParChunks<'a, T> {
            EnumerateParChunks { chunks: self.chunks.into_iter().enumerate().collect() }
        }

        pub fn for_each<F: Fn(&[T]) + Sync>(self, f: F) {
            run_tasks(self.chunks, &|c: &[T]| f(c));
        }
    }

    pub struct EnumerateParChunks<'a, T> {
        chunks: Vec<(usize, &'a [T])>,
    }

    impl<T: Sync> EnumerateParChunks<'_, T> {
        pub fn for_each<F: Fn((usize, &[T])) + Sync>(self, f: F) {
            run_tasks(self.chunks, &f);
        }
    }

    pub struct ParChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        pub fn len(&self) -> usize {
            self.chunks.len()
        }

        pub fn is_empty(&self) -> bool {
            self.chunks.is_empty()
        }

        pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
            EnumerateParChunksMut { chunks: self.chunks.into_iter().enumerate().collect() }
        }

        pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
            run_tasks(self.chunks, &|c: &mut [T]| f(c));
        }
    }

    pub struct EnumerateParChunksMut<'a, T> {
        chunks: Vec<(usize, &'a mut [T])>,
    }

    impl<T: Send> EnumerateParChunksMut<'_, T> {
        pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
            run_tasks(self.chunks, &f);
        }
    }
}

pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_mut_cover_slice_once() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + k;
            }
        });
        let want: Vec<usize> = (0..103).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn map_collect_is_ordered() {
        let got: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 3).collect();
        let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sum_matches_serial() {
        let got: f64 = (0..512).into_par_iter().map(|i| i as f64 * 0.5).sum();
        let want: f64 = (0..512).map(|i| i as f64 * 0.5).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 2);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn vec_for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        (1..=100usize).collect::<Vec<_>>().into_par_iter().for_each(|v| {
            total.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }
}
