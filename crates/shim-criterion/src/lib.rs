//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`measurement_time`/
//! `warm_up_time`/`bench_function`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! wall-clock loop: each sample runs the closure repeatedly for at
//! least ~1ms, and the harness prints min/mean/max per-iteration time.
//! There is no statistical analysis, outlier rejection, plotting, or
//! baseline comparison.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Older-API convenience kept for compatibility: `configure_from_args`
    /// is a no-op in this shim (there is no CLI to parse).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Top-level single benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher { samples: Vec::new(), batch: 1 };

        // Warm-up: run without recording until the warm-up budget is
        // spent, and calibrate the per-sample batch size so one sample
        // takes roughly a millisecond (keeps Instant overhead small
        // relative to the workload).
        let warm_start = Instant::now();
        let mut calibrated = false;
        while warm_start.elapsed() < self.warm_up_time || !calibrated {
            let t = Instant::now();
            f(&mut b);
            let per_iter = t.elapsed();
            if !calibrated && per_iter > Duration::ZERO {
                let target = Duration::from_millis(1);
                b.batch = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
                calibrated = true;
            }
            if warm_start.elapsed() > self.warm_up_time + Duration::from_secs(2) {
                break;
            }
        }
        b.samples.clear();

        let measure_start = Instant::now();
        while b.samples.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time * 4
        {
            f(&mut b);
            if measure_start.elapsed() >= self.measurement_time
                && b.samples.len() >= self.sample_size.min(3)
            {
                break;
            }
        }

        if b.samples.is_empty() {
            println!("{}/{name}: no samples collected", self.name);
            return self;
        }
        let min = b.samples.iter().copied().min().unwrap();
        let max = b.samples.iter().copied().max().unwrap();
        let sum: Duration = b.samples.iter().sum();
        let mean = sum / b.samples.len() as u32;
        println!(
            "{}/{name}: [{} {} {}] ({} samples)",
            self.name,
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max),
            b.samples.len(),
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Passed to each benchmark closure; `iter` times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
    batch: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.batch as u32);
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
