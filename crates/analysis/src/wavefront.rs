//! DO-ACROSS wavefront dependence analysis for triangular sweeps.
//!
//! The [`race`](crate::race) pass certifies DO-ANY nests — iterations
//! that may run in any order. Triangular solve and Gauss-Seidel are the
//! canonical nests it must *refuse* (`BA01`/`BA02`: the written vector
//! is also read across iterations). This pass recovers their
//! parallelism anyway, per-operand: the loop-carried dependence
//! relation of a sweep is exactly the sparsity structure (row `i`
//! depends on row `j` iff `A[i][j] != 0` with `j < i` for a forward
//! sweep), and that relation is a DAG whenever the operand is
//! triangular. Rows at equal longest-path depth in the DAG (a *level*)
//! are mutually independent, so levels execute as parallel waves while
//! the level sequence preserves every dependence — classic DO-ACROSS
//! level scheduling, derived from the actual operand at plan time as in
//! SpComp-style per-structure compilation.
//!
//! Two artifacts come out of [`analyze_wavefront`]:
//!
//! * a [`LevelSchedule`] — rows grouped level-major, the execution
//!   order the parallel kernels follow;
//! * an unforgeable [`WavefrontCert`] — the DO-ACROSS analogue of the
//!   race checker's `DisjointWrites`/`Reduction` certificates. It is
//!   only constructible here, fingerprints the analyzed index structure
//!   (pointer + length, like `fast.rs` certificates) *and* the exact
//!   schedule (FNV-1a over its contents), and kernels re-check
//!   [`WavefrontCert::covers`] at entry, falling back to serial on any
//!   mismatch.
//!
//! Independently of certification, [`verify_level_schedule`] re-checks
//! an arbitrary schedule against the operand in the spirit of
//! `plan_verify.rs`: the engine runs it on every schedule before the
//! parallel tier is allowed, so even a bug in the level computation
//! cannot license a racy wave. Its codes are the `BA4x` family:
//! `BA41` non-triangular (cyclic) structure, `BA42` non-topological
//! level assignment, `BA43` missing/duplicate/out-of-range row, `BA44`
//! same-level dependence overlap.

use crate::diag::{codes, Diagnostic, Span};

/// Which half of the matrix a sweep traverses — and therefore which
/// stored entries are loop-carried dependences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangle {
    /// Forward sweep over a lower-triangular pattern: row `i` depends
    /// on row `j` for every stored `A[i][j]` with `j < i`.
    Lower,
    /// Backward sweep over an upper-triangular pattern: row `i` depends
    /// on row `j` for every stored `A[i][j]` with `j > i`.
    Upper,
}

impl Triangle {
    fn name(self) -> &'static str {
        match self {
            Triangle::Lower => "lower",
            Triangle::Upper => "upper",
        }
    }
}

/// Rows grouped by longest-path depth in the dependence DAG.
///
/// `rows` lists every row exactly once in level-major order;
/// `level_ptr[l]..level_ptr[l + 1]` delimits level `l`. Rows within a
/// level are mutually independent (no stored entry connects them), so
/// a kernel may compute them concurrently; levels execute in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSchedule {
    nrows: usize,
    rows: Vec<usize>,
    level_ptr: Vec<usize>,
}

impl LevelSchedule {
    /// Number of rows the schedule covers.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of levels (parallel waves).
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len().saturating_sub(1)
    }

    /// The rows of level `l`.
    pub fn level(&self, l: usize) -> &[usize] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// All rows in level-major execution order.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Level boundaries into [`Self::rows`].
    pub fn level_ptr(&self) -> &[usize] {
        &self.level_ptr
    }

    /// Widest level (rows per wave at the parallel peak).
    pub fn max_level_width(&self) -> usize {
        (0..self.num_levels()).map(|l| self.level(l).len()).max().unwrap_or(0)
    }

    /// Mean rows per level — the average parallelism a level-scheduled
    /// execution can exploit (1.0 means the schedule is a serial chain).
    pub fn mean_level_width(&self) -> f64 {
        if self.num_levels() == 0 {
            0.0
        } else {
            self.nrows as f64 / self.num_levels() as f64
        }
    }

    /// Build a schedule from raw parts **without** any checking — the
    /// corrupt-schedule corpus uses this to craft invalid schedules
    /// that [`verify_level_schedule`] must reject. A schedule built
    /// here never carries a certificate: [`WavefrontCert::covers`]
    /// compares the schedule hash, so only the exact schedule computed
    /// by [`analyze_wavefront`] unlocks the parallel tier.
    pub fn from_raw_unchecked(nrows: usize, rows: Vec<usize>, level_ptr: Vec<usize>) -> LevelSchedule {
        LevelSchedule { nrows, rows, level_ptr }
    }
}

/// O(1) identity fingerprint of a slice: address + length. The same
/// scheme as the fast-tier certificates — sound against accidental
/// operand swaps because nothing in the workspace exposes `&mut`
/// access to index structure after construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SliceId {
    ptr: usize,
    len: usize,
}

fn slice_id<T>(s: &[T]) -> SliceId {
    SliceId { ptr: s.as_ptr() as usize, len: s.len() }
}

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100000001b3)
}

fn schedule_hash(s: &LevelSchedule) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    h = fnv(h, s.nrows as u64);
    h = fnv(h, s.level_ptr.len() as u64);
    for &p in &s.level_ptr {
        h = fnv(h, p as u64);
    }
    for &r in &s.rows {
        h = fnv(h, r as u64);
    }
    h
}

/// Proof that a specific `(pattern, schedule)` pair admits DO-ACROSS
/// level-parallel execution. Only [`analyze_wavefront`] constructs one
/// (private fields), and it binds both the index structure it analyzed
/// (by slice identity) and the exact schedule it computed (by content
/// hash); [`WavefrontCert::covers`] re-checks both at kernel entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WavefrontCert {
    nrows: usize,
    triangle: Triangle,
    rowptr: SliceId,
    colind: SliceId,
    schedule_hash: u64,
    levels: usize,
    max_width: usize,
}

impl WavefrontCert {
    /// Does this certificate license running `sched` against the given
    /// pattern? True only for the exact slices analyzed and the exact
    /// schedule computed at certification time.
    pub fn covers(
        &self,
        nrows: usize,
        rowptr: &[usize],
        colind: &[usize],
        triangle: Triangle,
        sched: &LevelSchedule,
    ) -> bool {
        self.nrows == nrows
            && self.triangle == triangle
            && self.rowptr == slice_id(rowptr)
            && self.colind == slice_id(colind)
            && sched.nrows == nrows
            && self.schedule_hash == schedule_hash(sched)
    }

    /// Number of levels in the certified schedule.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Widest certified level.
    pub fn max_level_width(&self) -> usize {
        self.max_width
    }

    /// Mean rows per certified level.
    pub fn mean_level_width(&self) -> f64 {
        if self.levels == 0 {
            0.0
        } else {
            self.nrows as f64 / self.levels as f64
        }
    }
}

/// The pass's verdict: a schedule + certificate when the operand's
/// dependence relation is a DAG, plus any findings.
#[derive(Clone, Debug)]
pub struct WavefrontReport {
    /// The level schedule, present iff certification succeeded.
    pub schedule: Option<LevelSchedule>,
    /// The certificate licensing `schedule` on the analyzed pattern.
    pub certificate: Option<WavefrontCert>,
    pub diagnostics: Vec<Diagnostic>,
}

impl WavefrontReport {
    /// May a level-parallel kernel run this operand?
    pub fn is_parallel_safe(&self) -> bool {
        self.certificate.is_some()
    }
}

/// Basic CSR-pattern shape checks shared by the analyzer and the
/// verifier, reusing the sanitizer's `BA21`/`BA22` codes: a malformed
/// pattern is a format defect, not a scheduling defect.
fn check_pattern_shape(nrows: usize, rowptr: &[usize], colind: &[usize]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if rowptr.len() != nrows + 1 {
        diags.push(Diagnostic::error(
            codes::FMT_BAD_PTR,
            Span::Component { name: "rowptr", at: None },
            format!("rowptr has length {} for {nrows} rows (want {})", rowptr.len(), nrows + 1),
        ));
        return diags;
    }
    if rowptr[0] != 0 {
        diags.push(Diagnostic::error(
            codes::FMT_BAD_PTR,
            Span::Component { name: "rowptr", at: Some(0) },
            format!("rowptr starts at {} (want 0)", rowptr[0]),
        ));
    }
    for k in 1..rowptr.len() {
        if rowptr[k] < rowptr[k - 1] {
            diags.push(Diagnostic::error(
                codes::FMT_BAD_PTR,
                Span::Component { name: "rowptr", at: Some(k) },
                format!("rowptr decreases at {k}: {} -> {}", rowptr[k - 1], rowptr[k]),
            ));
            return diags;
        }
    }
    if rowptr[nrows] != colind.len() {
        diags.push(Diagnostic::error(
            codes::FMT_BAD_PTR,
            Span::Component { name: "rowptr", at: Some(nrows) },
            format!("rowptr ends at {} but colind has {} entries", rowptr[nrows], colind.len()),
        ));
        return diags;
    }
    for (k, &j) in colind.iter().enumerate() {
        if j >= nrows {
            diags.push(Diagnostic::error(
                codes::FMT_INDEX_OOB,
                Span::Component { name: "colind", at: Some(k) },
                format!("column index {j} out of bounds for {nrows} rows"),
            ));
        }
    }
    diags
}

/// Is stored entry `(i, j)` a loop-carried dependence of the sweep
/// (`Some(j)`), a diagonal entry (`None`), or on the wrong side of the
/// diagonal for the claimed triangle (`Err`)?
fn classify(triangle: Triangle, i: usize, j: usize) -> Result<Option<usize>, ()> {
    match (triangle, j.cmp(&i)) {
        (_, std::cmp::Ordering::Equal) => Ok(None),
        (Triangle::Lower, std::cmp::Ordering::Less) => Ok(Some(j)),
        (Triangle::Upper, std::cmp::Ordering::Greater) => Ok(Some(j)),
        _ => Err(()),
    }
}

fn wrong_side_diag(triangle: Triangle, i: usize, j: usize, k: usize) -> Diagnostic {
    Diagnostic::error(
        codes::WAVE_NOT_TRIANGULAR,
        Span::Component { name: "colind", at: Some(k) },
        format!(
            "row {i} stores an entry at column {j}: matrix is not {} triangular, so the \
             dependence relation of the sweep is cyclic and no wavefront order exists",
            triangle.name()
        ),
    )
}

/// Extract the loop-carried dependence relation of a triangular sweep
/// from the sparsity pattern and compute its level sets (longest-path
/// depth in the dependence DAG). Returns the schedule and an
/// unforgeable [`WavefrontCert`] when the pattern is triangular for the
/// claimed [`Triangle`]; otherwise `BA41` (plus any `BA21`/`BA22`
/// shape findings) and no certificate.
///
/// Takes the raw CSR index structure rather than a format type so the
/// pass stays below `bernoulli-formats` in the crate DAG; callers pass
/// `csr.rowptr()` / `csr.colind()` (values are irrelevant — only the
/// pattern carries dependences; an explicitly stored zero is treated
/// as a dependence, which is conservative and always safe).
pub fn analyze_wavefront(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    triangle: Triangle,
) -> WavefrontReport {
    let mut diags = check_pattern_shape(nrows, rowptr, colind);
    if !diags.is_empty() {
        return WavefrontReport { schedule: None, certificate: None, diagnostics: diags };
    }

    // Longest-path depth: sweep rows in dependence order (ascending for
    // Lower, descending for Upper) so every dependence's level is final
    // before its dependents read it. Triangularity makes this a valid
    // topological order; a wrong-side entry is reported as BA41.
    let mut level = vec![0usize; nrows];
    let order: Box<dyn Iterator<Item = usize>> = match triangle {
        Triangle::Lower => Box::new(0..nrows),
        Triangle::Upper => Box::new((0..nrows).rev()),
    };
    for i in order {
        let mut lv = 0usize;
        let (s, e) = (rowptr[i], rowptr[i + 1]);
        for (k, &j) in colind[s..e].iter().enumerate().map(|(dk, j)| (s + dk, j)) {
            match classify(triangle, i, j) {
                Ok(Some(dep)) => lv = lv.max(level[dep] + 1),
                Ok(None) => {}
                Err(()) => diags.push(wrong_side_diag(triangle, i, j, k)),
            }
        }
        level[i] = lv;
    }
    if !diags.is_empty() {
        return WavefrontReport { schedule: None, certificate: None, diagnostics: diags };
    }

    // Bucket rows level-major (stable: ascending row order within each
    // level, so the parallel kernels' write-back order is deterministic).
    let num_levels = level.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut level_ptr = vec![0usize; num_levels + 1];
    for &l in &level {
        level_ptr[l + 1] += 1;
    }
    for l in 0..num_levels {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut next = level_ptr.clone();
    let mut rows = vec![0usize; nrows];
    for (i, &l) in level.iter().enumerate() {
        rows[next[l]] = i;
        next[l] += 1;
    }
    let sched = LevelSchedule { nrows, rows, level_ptr };

    // Defense in depth: the certificate is only issued if the
    // *independent* verifier also accepts the schedule we just built.
    let verdict = verify_level_schedule(nrows, rowptr, colind, triangle, &sched);
    if !verdict.is_empty() {
        diags.extend(verdict);
        return WavefrontReport { schedule: None, certificate: None, diagnostics: diags };
    }

    let cert = WavefrontCert {
        nrows,
        triangle,
        rowptr: slice_id(rowptr),
        colind: slice_id(colind),
        schedule_hash: schedule_hash(&sched),
        levels: sched.num_levels(),
        max_width: sched.max_level_width(),
    };
    WavefrontReport { schedule: Some(sched), certificate: Some(cert), diagnostics: diags }
}

/// Issue a [`WavefrontCert`] for a schedule obtained *outside*
/// [`analyze_wavefront`] — e.g. one rebuilt from a structure-keyed plan
/// cache via [`LevelSchedule::from_raw_unchecked`]. The certificate is
/// only issued if the independent verifier accepts the schedule against
/// this operand's pattern, so a stale or corrupted cached schedule can
/// never arm a parallel sweep: reuse skips the O(nnz) *construction* of
/// the schedule, never the verification gate. On rejection the
/// diagnostics are returned instead.
pub fn certify_schedule(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    triangle: Triangle,
    sched: &LevelSchedule,
) -> Result<WavefrontCert, Vec<Diagnostic>> {
    let verdict = verify_level_schedule(nrows, rowptr, colind, triangle, sched);
    if !verdict.is_empty() {
        return Err(verdict);
    }
    Ok(WavefrontCert {
        nrows,
        triangle,
        rowptr: slice_id(rowptr),
        colind: slice_id(colind),
        schedule_hash: schedule_hash(sched),
        levels: sched.num_levels(),
        max_width: sched.max_level_width(),
    })
}

/// Independently re-check a level schedule against a sweep's dependence
/// relation — the `plan_verify` analogue for wavefront schedules. Does
/// not trust [`analyze_wavefront`]: it recomputes nothing, it only
/// checks the claimed schedule, so the two can cross-validate.
///
/// Emits:
/// * `BA21`/`BA22` — malformed pattern (shared with the sanitizer);
/// * `BA41` — stored entry on the wrong side of the diagonal (the
///   dependence relation is cyclic; no schedule can be valid);
/// * `BA42` — a row is scheduled at or before a level that must
///   precede it (dependence points to a *later* level);
/// * `BA43` — schedule fails to list every row exactly once, lists an
///   out-of-range row, or has malformed level boundaries;
/// * `BA44` — two rows in the *same* level are connected by a
///   dependence, so the wave would race on the written vector.
pub fn verify_level_schedule(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    triangle: Triangle,
    sched: &LevelSchedule,
) -> Vec<Diagnostic> {
    let mut diags = check_pattern_shape(nrows, rowptr, colind);
    if !diags.is_empty() {
        return diags;
    }

    // Schedule structure: level_ptr must delimit rows, rows must be a
    // permutation of 0..nrows.
    if sched.nrows != nrows {
        diags.push(Diagnostic::error(
            codes::WAVE_BAD_COVERAGE,
            Span::Whole,
            format!("schedule covers {} rows but operand has {nrows}", sched.nrows),
        ));
        return diags;
    }
    let lp = &sched.level_ptr;
    if lp.first() != Some(&0)
        || lp.last() != Some(&sched.rows.len())
        || lp.windows(2).any(|w| w[1] < w[0])
    {
        diags.push(Diagnostic::error(
            codes::WAVE_BAD_COVERAGE,
            Span::Component { name: "level_ptr", at: None },
            "level boundaries are not a monotone cover of the scheduled rows".to_string(),
        ));
        return diags;
    }
    if sched.rows.len() != nrows {
        diags.push(Diagnostic::error(
            codes::WAVE_BAD_COVERAGE,
            Span::Component { name: "rows", at: None },
            format!("schedule lists {} rows but operand has {nrows}", sched.rows.len()),
        ));
        return diags;
    }
    // Position of each row in the schedule; doubles as the
    // duplicate/missing detector.
    let mut level_of = vec![usize::MAX; nrows];
    for l in 0..sched.num_levels() {
        for &i in sched.level(l) {
            if i >= nrows {
                diags.push(Diagnostic::error(
                    codes::WAVE_BAD_COVERAGE,
                    Span::Component { name: "rows", at: Some(i) },
                    format!("scheduled row {i} out of bounds for {nrows} rows"),
                ));
                return diags;
            }
            if level_of[i] != usize::MAX {
                diags.push(Diagnostic::error(
                    codes::WAVE_BAD_COVERAGE,
                    Span::Component { name: "rows", at: Some(i) },
                    format!("row {i} scheduled more than once"),
                ));
                return diags;
            }
            level_of[i] = l;
        }
    }
    if let Some(i) = level_of.iter().position(|&l| l == usize::MAX) {
        diags.push(Diagnostic::error(
            codes::WAVE_BAD_COVERAGE,
            Span::Component { name: "rows", at: Some(i) },
            format!("row {i} is missing from the schedule"),
        ));
        return diags;
    }

    // Every dependence must point to a strictly earlier level.
    for i in 0..nrows {
        let (s, e) = (rowptr[i], rowptr[i + 1]);
        for (k, &j) in colind[s..e].iter().enumerate().map(|(dk, j)| (s + dk, j)) {
            match classify(triangle, i, j) {
                Ok(Some(dep)) => {
                    if level_of[dep] == level_of[i] {
                        diags.push(Diagnostic::error(
                            codes::WAVE_LEVEL_OVERLAP,
                            Span::Component { name: "rows", at: Some(i) },
                            format!(
                                "rows {i} and {dep} share level {} but row {i} depends on \
                                 row {dep}: the wave would read {dep}'s write mid-flight",
                                level_of[i]
                            ),
                        ));
                    } else if level_of[dep] > level_of[i] {
                        diags.push(Diagnostic::error(
                            codes::WAVE_NON_TOPOLOGICAL,
                            Span::Component { name: "rows", at: Some(i) },
                            format!(
                                "row {i} (level {}) depends on row {dep} scheduled later \
                                 (level {}): the schedule is not a topological order",
                                level_of[i], level_of[dep]
                            ),
                        ));
                    }
                }
                Ok(None) => {}
                Err(()) => diags.push(wrong_side_diag(triangle, i, j, k)),
            }
        }
    }
    diags
}

/// Lower-triangular pattern of `struct(A) ∪ struct(Aᵀ)` — the
/// dependence relation of a *Gauss-Seidel* sweep over a general square
/// `A`. A forward sweep's row `i` both reads `x[j]` for every stored
/// `A[i][j]` (flow dependence when `j < i`) and is read by row `j`'s
/// update for every stored `A[j][i]` (anti-dependence when `j > i`
/// writes after reading), so two rows may share a level only when
/// *neither* `A[i][j]` nor `A[j][i]` is stored. Symmetrizing the
/// pattern covers both hazard directions for any square `A`; the
/// result feeds [`analyze_wavefront`] with [`Triangle::Lower`] for the
/// forward sweep and [`Triangle::Upper`] (on the transposed-equivalent
/// upper pattern, which for a symmetrized structure is the mirror) for
/// the backward sweep.
///
/// Returns strictly-lower CSR `(rowptr, colind)` with sorted,
/// duplicate-free rows.
pub fn symmetrize_lower(nrows: usize, rowptr: &[usize], colind: &[usize]) -> (Vec<usize>, Vec<usize>) {
    symmetrize(nrows, rowptr, colind, |i, j| if i > j { (i, j) } else { (j, i) })
}

/// Mirror of [`symmetrize_lower`]: strictly-upper CSR pattern of
/// `struct(A) ∪ struct(Aᵀ)` — the dependence relation of a *backward*
/// Gauss-Seidel sweep (row `i` depends on rows `j > i`).
pub fn symmetrize_upper(nrows: usize, rowptr: &[usize], colind: &[usize]) -> (Vec<usize>, Vec<usize>) {
    symmetrize(nrows, rowptr, colind, |i, j| if i < j { (i, j) } else { (j, i) })
}

/// Shared symmetrization: scatter every off-diagonal entry to the row
/// `orient` picks, then sort and deduplicate each row in place. Flat
/// counting-sort layout — one pass to size the rows, one to scatter,
/// one to compact — because this runs on *every* compile (a plan-cache
/// warm replay included, where it dominates once the wavefront
/// analysis itself is skipped); the obvious `Vec<Vec<usize>>` build
/// costs one heap allocation per row.
fn symmetrize(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    orient: impl Fn(usize, usize) -> (usize, usize),
) -> (Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; nrows + 1];
    for i in 0..nrows {
        for &j in &colind[rowptr[i]..rowptr[i + 1]] {
            if i != j {
                counts[orient(i, j).0 + 1] += 1;
            }
        }
    }
    for r in 0..nrows {
        counts[r + 1] += counts[r];
    }
    let mut scattered = vec![0usize; counts[nrows]];
    let mut next = counts.clone();
    for i in 0..nrows {
        for &j in &colind[rowptr[i]..rowptr[i + 1]] {
            if i != j {
                let (row, dep) = orient(i, j);
                scattered[next[row]] = dep;
                next[row] += 1;
            }
        }
    }
    let mut out_ptr = Vec::with_capacity(nrows + 1);
    let mut out_ind = Vec::with_capacity(scattered.len());
    out_ptr.push(0);
    for r in 0..nrows {
        let row = &mut scattered[counts[r]..counts[r + 1]];
        row.sort_unstable();
        let mut prev = usize::MAX;
        for &dep in row.iter() {
            if dep != prev {
                out_ind.push(dep);
                prev = dep;
            }
        }
        out_ptr.push(out_ind.len());
    }
    (out_ptr, out_ind)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lower-triangular chain: row i depends on row i-1.
    fn chain(n: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rowptr = vec![0];
        let mut colind = Vec::new();
        for i in 0..n {
            if i > 0 {
                colind.push(i - 1);
            }
            colind.push(i);
            rowptr.push(colind.len());
        }
        (rowptr, colind)
    }

    /// Block-diagonal-ish pattern: rows only depend on the diagonal —
    /// everything lands in level 0.
    fn diagonal(n: usize) -> (Vec<usize>, Vec<usize>) {
        let rowptr = (0..=n).collect();
        let colind = (0..n).collect();
        (rowptr, colind)
    }

    #[test]
    fn chain_is_serial_and_certified() {
        let (rp, ci) = chain(6);
        let rep = analyze_wavefront(6, &rp, &ci, Triangle::Lower);
        assert!(rep.is_parallel_safe());
        let s = rep.schedule.unwrap();
        assert_eq!(s.num_levels(), 6);
        assert_eq!(s.max_level_width(), 1);
        assert!((s.mean_level_width() - 1.0).abs() < 1e-15);
        for l in 0..6 {
            assert_eq!(s.level(l), &[l]);
        }
    }

    #[test]
    fn diagonal_is_one_wide_level() {
        let (rp, ci) = diagonal(5);
        let rep = analyze_wavefront(5, &rp, &ci, Triangle::Lower);
        let s = rep.schedule.unwrap();
        assert_eq!(s.num_levels(), 1);
        assert_eq!(s.level(0), &[0, 1, 2, 3, 4]);
        assert_eq!(s.max_level_width(), 5);
    }

    #[test]
    fn upper_chain_levels_run_backward() {
        // Upper chain: row i depends on i+1.
        let n = 4;
        let mut rowptr = vec![0];
        let mut colind = Vec::new();
        for i in 0..n {
            colind.push(i);
            if i + 1 < n {
                colind.push(i + 1);
            }
            rowptr.push(colind.len());
        }
        let rep = analyze_wavefront(n, &rowptr, &colind, Triangle::Upper);
        let s = rep.schedule.unwrap();
        assert_eq!(s.num_levels(), n);
        assert_eq!(s.level(0), &[n - 1]);
        assert_eq!(s.level(n - 1), &[0]);
    }

    #[test]
    fn non_triangular_is_refused_with_ba41() {
        // Entry (0, 2) is above the diagonal of a claimed-lower matrix.
        let rowptr = vec![0, 2, 3, 4];
        let colind = vec![0, 2, 1, 2];
        let rep = analyze_wavefront(3, &rowptr, &colind, Triangle::Lower);
        assert!(!rep.is_parallel_safe());
        assert!(rep.schedule.is_none());
        assert!(rep.diagnostics.iter().any(|d| d.code == codes::WAVE_NOT_TRIANGULAR));
    }

    #[test]
    fn malformed_pattern_reuses_sanitizer_codes() {
        let rep = analyze_wavefront(3, &[0, 1], &[0], Triangle::Lower);
        assert!(rep.diagnostics.iter().any(|d| d.code == codes::FMT_BAD_PTR));
        let rep = analyze_wavefront(2, &[0, 1, 2], &[0, 7], Triangle::Lower);
        assert!(rep.diagnostics.iter().any(|d| d.code == codes::FMT_INDEX_OOB));
    }

    #[test]
    fn verifier_accepts_computed_schedule() {
        let (rp, ci) = chain(8);
        let rep = analyze_wavefront(8, &rp, &ci, Triangle::Lower);
        let s = rep.schedule.unwrap();
        assert!(verify_level_schedule(8, &rp, &ci, Triangle::Lower, &s).is_empty());
    }

    #[test]
    fn verifier_rejects_non_topological_swap() {
        let (rp, ci) = chain(3);
        // Rows 0 and 2 swapped: row 1 now depends on a later level.
        let s = LevelSchedule::from_raw_unchecked(3, vec![2, 1, 0], vec![0, 1, 2, 3]);
        let diags = verify_level_schedule(3, &rp, &ci, Triangle::Lower, &s);
        assert!(diags.iter().any(|d| d.code == codes::WAVE_NON_TOPOLOGICAL), "{diags:?}");
    }

    #[test]
    fn verifier_rejects_same_level_dependence() {
        let (rp, ci) = chain(3);
        // Rows 1 and 2 merged into one wave, but 2 depends on 1.
        let s = LevelSchedule::from_raw_unchecked(3, vec![0, 1, 2], vec![0, 1, 3]);
        let diags = verify_level_schedule(3, &rp, &ci, Triangle::Lower, &s);
        assert!(diags.iter().any(|d| d.code == codes::WAVE_LEVEL_OVERLAP), "{diags:?}");
    }

    #[test]
    fn verifier_rejects_bad_coverage() {
        let (rp, ci) = chain(3);
        for (rows, lp) in [
            (vec![0, 1], vec![0, 1, 2]),          // dropped row
            (vec![0, 1, 1], vec![0, 1, 2, 3]),    // duplicate row
            (vec![0, 1, 9], vec![0, 1, 2, 3]),    // out-of-range row
            (vec![0, 1, 2], vec![0, 2, 1, 3]),    // non-monotone level_ptr
        ] {
            let s = LevelSchedule::from_raw_unchecked(3, rows, lp);
            let diags = verify_level_schedule(3, &rp, &ci, Triangle::Lower, &s);
            assert!(diags.iter().any(|d| d.code == codes::WAVE_BAD_COVERAGE), "{diags:?}");
        }
    }

    #[test]
    fn certificate_is_bound_to_pattern_and_schedule() {
        let (rp, ci) = chain(4);
        let rep = analyze_wavefront(4, &rp, &ci, Triangle::Lower);
        let (s, c) = (rep.schedule.unwrap(), rep.certificate.unwrap());
        assert!(c.covers(4, &rp, &ci, Triangle::Lower, &s));
        // Different slices (same contents) are refused — identity, not value.
        let rp2 = rp.clone();
        assert!(!c.covers(4, &rp2, &ci, Triangle::Lower, &s));
        // A tampered schedule is refused by the content hash.
        let mut rows = s.rows().to_vec();
        rows.swap(0, 3);
        let forged = LevelSchedule::from_raw_unchecked(4, rows, s.level_ptr().to_vec());
        assert!(!c.covers(4, &rp, &ci, Triangle::Lower, &forged));
        // Wrong triangle is refused.
        assert!(!c.covers(4, &rp, &ci, Triangle::Upper, &s));
    }

    #[test]
    fn certify_schedule_gates_cached_schedules_through_the_verifier() {
        let (rp, ci) = chain(5);
        let rep = analyze_wavefront(5, &rp, &ci, Triangle::Lower);
        let s = rep.schedule.unwrap();
        // A cache round-trip rebuilds the schedule from raw parts; the
        // re-issued certificate must cover operand + schedule exactly
        // like a freshly analyzed one.
        let rebuilt =
            LevelSchedule::from_raw_unchecked(s.nrows(), s.rows().to_vec(), s.level_ptr().to_vec());
        let cert = certify_schedule(5, &rp, &ci, Triangle::Lower, &rebuilt).unwrap();
        assert!(cert.covers(5, &rp, &ci, Triangle::Lower, &rebuilt));
        assert!(cert.covers(5, &rp, &ci, Triangle::Lower, &s));
        // A stale/corrupt cached schedule is refused with diagnostics,
        // never certified.
        let mut rows = s.rows().to_vec();
        rows.swap(0, 4);
        let forged = LevelSchedule::from_raw_unchecked(5, rows, s.level_ptr().to_vec());
        let diags = certify_schedule(5, &rp, &ci, Triangle::Lower, &forged).unwrap_err();
        assert!(diags.iter().any(|d| d.code == codes::WAVE_NON_TOPOLOGICAL), "{diags:?}");
        // Schedule for the wrong triangle direction is refused too.
        assert!(certify_schedule(5, &rp, &ci, Triangle::Upper, &s).is_err());
    }

    #[test]
    fn symmetrize_covers_both_hazard_directions() {
        // A = [[d, x, 0], [0, d, 0], [0, y, d]] — entry (0,1) is an
        // anti-dependence for the forward sweep, (2,1) a flow dep.
        let rowptr = vec![0, 2, 3, 5];
        let colind = vec![0, 1, 1, 1, 2];
        let (lp, li) = symmetrize_lower(3, &rowptr, &colind);
        assert_eq!(lp, vec![0, 0, 1, 2]);
        assert_eq!(li, vec![0, 1]); // row1 dep row0 (anti), row2 dep row1 (flow)
        let (up, ui) = symmetrize_upper(3, &rowptr, &colind);
        assert_eq!(up, vec![0, 1, 2, 2]);
        assert_eq!(ui, vec![1, 2]);
        // Both patterns certify; the schedules are mirrors.
        let f = analyze_wavefront(3, &lp, &li, Triangle::Lower);
        let b = analyze_wavefront(3, &up, &ui, Triangle::Upper);
        assert!(f.is_parallel_safe() && b.is_parallel_safe());
        assert_eq!(f.schedule.unwrap().num_levels(), 3);
        assert_eq!(b.schedule.unwrap().num_levels(), 3);
    }

    #[test]
    fn empty_matrix_certifies_trivially() {
        let rep = analyze_wavefront(0, &[0], &[], Triangle::Lower);
        assert!(rep.is_parallel_safe());
        let s = rep.schedule.unwrap();
        assert_eq!(s.num_levels(), 0);
        assert_eq!(s.mean_level_width(), 0.0);
    }
}
