//! Format-invariant sanitization.
//!
//! Storage formats are trusted blindly by their kernels: a non-monotone
//! row pointer, an out-of-bounds column index or a duplicate entry is
//! silently accepted and produces a wrong SpMV. The [`Validate`] trait
//! (implemented by every format in `bernoulli-formats`) checks the raw
//! structural invariants first — so corrupt data cannot panic the
//! checker — and only then exercises the access-method contract via
//! [`check_access_contract`], which subsumes the old
//! `relational::access_check::check_matrix_access`.
//!
//! The helpers here are the shared vocabulary of those impls: each
//! returns at most a handful of [`Diagnostic`]s and never panics on
//! arbitrary input.

use crate::diag::{self, codes, Diagnostic, Span};
use bernoulli_relational::access::{MatrixAccess, Orientation};
use bernoulli_relational::permutation::Permutation;

/// Self-check of a storage object's structural invariants.
///
/// Implementations must check *raw* invariants (pointer monotonicity,
/// index bounds, sortedness, duplicate-freedom, metadata consistency)
/// before touching any derived view, and should finish with
/// [`check_access_contract`] only when the raw checks pass.
pub trait Validate {
    /// All findings; empty means the object is well-formed.
    fn validate(&self) -> Vec<Diagnostic>;

    /// [`Validate::validate`] rendered as a `Result` (errors joined
    /// into one message; warnings ignored).
    fn validate_ok(&self) -> Result<(), String> {
        diag::into_result(&self.validate())
    }
}

/// Check a compressed pointer array: expected length, zero start,
/// monotone non-decreasing, expected end (`BA21`).
pub fn check_ptr(
    name: &'static str,
    ptr: &[usize],
    expected_len: usize,
    expected_end: usize,
) -> Vec<Diagnostic> {
    let at = |k| Span::Component { name, at: Some(k) };
    if ptr.len() != expected_len {
        return vec![Diagnostic::error(
            codes::FMT_BAD_PTR,
            Span::Component { name, at: None },
            format!("length {} but expected {expected_len}", ptr.len()),
        )];
    }
    if let Some(&first) = ptr.first() {
        if first != 0 {
            return vec![Diagnostic::error(codes::FMT_BAD_PTR, at(0), format!("starts at {first}, not 0"))];
        }
    }
    for (k, w) in ptr.windows(2).enumerate() {
        if w[1] < w[0] {
            return vec![Diagnostic::error(
                codes::FMT_BAD_PTR,
                at(k + 1),
                format!("decreases from {} to {}", w[0], w[1]),
            )];
        }
    }
    if let Some(&last) = ptr.last() {
        if last != expected_end {
            return vec![Diagnostic::error(
                codes::FMT_BAD_PTR,
                at(ptr.len() - 1),
                format!("ends at {last} but the data has {expected_end} slots"),
            )];
        }
    }
    Vec::new()
}

/// Check every stored index is `< bound` (`BA22`; first offender only).
pub fn check_bounds(name: &'static str, idx: &[usize], bound: usize) -> Vec<Diagnostic> {
    for (k, &i) in idx.iter().enumerate() {
        if i >= bound {
            return vec![Diagnostic::error(
                codes::FMT_INDEX_OOB,
                Span::Component { name, at: Some(k) },
                format!("index {i} out of bounds (< {bound})"),
            )];
        }
    }
    Vec::new()
}

/// Check one run of indices is strictly ascending: descent is `BA23`
/// (unsorted), equality is `BA24` (duplicate). First offender only.
pub fn check_sorted_strict(name: &'static str, run: &[usize], ctx: &str) -> Vec<Diagnostic> {
    for (k, w) in run.windows(2).enumerate() {
        if w[1] == w[0] {
            return vec![Diagnostic::error(
                codes::FMT_DUPLICATE,
                Span::Component { name, at: Some(k + 1) },
                format!("duplicate index {} in {ctx}", w[0]),
            )];
        }
        if w[1] < w[0] {
            return vec![Diagnostic::error(
                codes::FMT_UNSORTED,
                Span::Component { name, at: Some(k + 1) },
                format!("{} after {} in {ctx}", w[1], w[0]),
            )];
        }
    }
    Vec::new()
}

/// Report a metadata/data disagreement (`BA25`).
pub fn meta_mismatch(name: &'static str, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(codes::FMT_META_MISMATCH, Span::Component { name, at: None }, message)
}

/// Check a permutation is a bijection on `0..expected_len` with a
/// consistent inverse (`BA26`).
pub fn check_permutation(
    name: &'static str,
    p: &Permutation,
    expected_len: usize,
) -> Vec<Diagnostic> {
    let whole = Span::Component { name, at: None };
    if p.len() != expected_len {
        return vec![Diagnostic::error(
            codes::FMT_BAD_PERM,
            whole,
            format!("length {} but expected {expected_len}", p.len()),
        )];
    }
    let fwd = p.as_forward();
    let bwd = p.as_backward();
    if bwd.len() != fwd.len() {
        return vec![Diagnostic::error(
            codes::FMT_BAD_PERM,
            whole,
            format!("forward has {} entries but inverse has {}", fwd.len(), bwd.len()),
        )];
    }
    let n = fwd.len();
    for (k, &img) in fwd.iter().enumerate() {
        if img >= n {
            return vec![Diagnostic::error(
                codes::FMT_BAD_PERM,
                Span::Component { name, at: Some(k) },
                format!("maps {k} to {img}, outside 0..{n}"),
            )];
        }
        if bwd[img] != k {
            return vec![Diagnostic::error(
                codes::FMT_BAD_PERM,
                Span::Component { name, at: Some(k) },
                format!("not a bijection: {k}→{img} but inverse maps {img}→{}", bwd[img]),
            )];
        }
    }
    Vec::new()
}

/// Verify a [`MatrixAccess`] implementation honours its declared
/// contract. Subsumes the old `relational::access_check`:
///
/// 1. `meta().nnz` equals the flat tuple count (`BA25`);
/// 2. every flat tuple is inside `nrows × ncols` (`BA22`);
/// 3. the tuple set is duplicate-free (`BA24`);
/// 4. enumeration respects the declared sortedness (`BA23`);
/// 5. the hierarchical view (if any) agrees with the flat view, and
///    `search_inner`/`search_pair` agree with enumeration (`BA27`).
///
/// Call only after raw structural checks pass — enumerating a corrupt
/// format may panic.
pub fn check_access_contract(m: &dyn MatrixAccess) -> Vec<Diagnostic> {
    let meta = m.meta();
    let span = |name| Span::Component { name, at: None };
    let mut flat: Vec<(usize, usize, f64)> = m.enum_flat().collect();
    if flat.len() != meta.nnz {
        return vec![Diagnostic::error(
            codes::FMT_META_MISMATCH,
            span("meta.nnz"),
            format!("meta.nnz = {} but the flat view has {} tuples", meta.nnz, flat.len()),
        )];
    }
    for &(i, j, _) in &flat {
        if i >= meta.nrows || j >= meta.ncols {
            return vec![Diagnostic::error(
                codes::FMT_INDEX_OOB,
                span("flat"),
                format!("flat tuple ({i},{j}) outside {}x{}", meta.nrows, meta.ncols),
            )];
        }
    }
    {
        let mut sorted = flat.clone();
        sorted.sort_by_key(|t| (t.0, t.1));
        for w in sorted.windows(2) {
            if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
                return vec![Diagnostic::error(
                    codes::FMT_DUPLICATE,
                    span("flat"),
                    format!("duplicate tuple at ({}, {})", w[0].0, w[0].1),
                )];
            }
        }
    }

    // Hierarchical view, when present.
    if meta.orientation != Orientation::Flat {
        let mut hier: Vec<(usize, usize, f64)> = Vec::new();
        let mut last_outer: Option<usize> = None;
        for cursor in m.enum_outer() {
            if meta.outer.sortedness.is_sorted() {
                if let Some(lo) = last_outer {
                    if cursor.index <= lo {
                        return vec![Diagnostic::error(
                            codes::FMT_UNSORTED,
                            span("outer"),
                            format!("outer enumeration not ascending: {} after {lo}", cursor.index),
                        )];
                    }
                }
            }
            last_outer = Some(cursor.index);
            let mut last_inner: Option<usize> = None;
            for (inner, v) in m.enum_inner(&cursor) {
                if meta.inner.sortedness.is_sorted() {
                    if let Some(li) = last_inner {
                        if inner <= li {
                            return vec![Diagnostic::error(
                                codes::FMT_UNSORTED,
                                span("inner"),
                                format!(
                                    "inner enumeration of outer {} not ascending: {inner} after {li}",
                                    cursor.index
                                ),
                            )];
                        }
                    }
                }
                last_inner = Some(inner);
                let (i, j) = match meta.orientation {
                    Orientation::RowMajor => (cursor.index, inner),
                    Orientation::ColMajor => (inner, cursor.index),
                    Orientation::Flat => unreachable!(),
                };
                hier.push((i, j, v));
                // Inner search must find this entry. Values compare by
                // bit pattern: the contract is that both views expose
                // the *same stored value*, and `==` would spuriously
                // reject any matrix holding a NaN payload.
                if meta.inner.search.supported() {
                    match m.search_inner(&cursor, inner) {
                        Some(got) if got.to_bits() == v.to_bits() => {}
                        other => {
                            return vec![Diagnostic::error(
                                codes::FMT_CONTRACT,
                                span("search_inner"),
                                format!(
                                    "search_inner({}, {inner}) = {other:?}, enumeration says {v}",
                                    cursor.index
                                ),
                            )]
                        }
                    }
                }
            }
        }
        let key = |t: &(usize, usize, f64)| (t.0, t.1);
        let mut a = hier.clone();
        a.sort_by_key(key);
        flat.sort_by_key(key);
        if a.len() != flat.len() {
            return vec![Diagnostic::error(
                codes::FMT_CONTRACT,
                span("views"),
                format!("hierarchical view has {} tuples, flat view {}", a.len(), flat.len()),
            )];
        }
        for (h, f) in a.iter().zip(&flat) {
            if key(h) != key(f) || h.2.to_bits() != f.2.to_bits() {
                return vec![Diagnostic::error(
                    codes::FMT_CONTRACT,
                    span("views"),
                    format!("views disagree: hierarchical {h:?} vs flat {f:?}"),
                )];
            }
        }
    }

    // Pair probes agree with the tuple set.
    for &(i, j, v) in flat.iter().take(200) {
        match m.search_pair(i, j) {
            Some(got) if got.to_bits() == v.to_bits() => {}
            other => {
                return vec![Diagnostic::error(
                    codes::FMT_CONTRACT,
                    span("search_pair"),
                    format!("search_pair({i},{j}) = {other:?}, expected {v}"),
                )]
            }
        }
    }
    // A handful of definite misses.
    let present: std::collections::HashSet<(usize, usize)> =
        flat.iter().map(|&(i, j, _)| (i, j)).collect();
    let mut misses = 0;
    for i in 0..meta.nrows.min(20) {
        for j in 0..meta.ncols.min(20) {
            if !present.contains(&(i, j)) {
                if let Some(v) = m.search_pair(i, j) {
                    return vec![Diagnostic::error(
                        codes::FMT_CONTRACT,
                        span("search_pair"),
                        format!("search_pair({i},{j}) = Some({v}) for an absent tuple"),
                    )];
                }
                misses += 1;
                if misses >= 20 {
                    return Vec::new();
                }
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_relational::access::{FlatIter, InnerIter, MatMeta, OuterCursor, OuterIter};
    use bernoulli_relational::testmat::DokMatrix;

    #[test]
    fn helper_checks_accept_well_formed_data() {
        assert!(check_ptr("p", &[0, 2, 2, 5], 4, 5).is_empty());
        assert!(check_bounds("idx", &[0, 4, 2], 5).is_empty());
        assert!(check_sorted_strict("idx", &[1, 3, 9], "row 0").is_empty());
        let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        assert!(check_permutation("perm", &p, 3).is_empty());
    }

    #[test]
    fn ba21_ptr_violations() {
        assert_eq!(check_ptr("p", &[0, 2], 3, 2)[0].code, codes::FMT_BAD_PTR); // wrong length
        assert_eq!(check_ptr("p", &[1, 2, 3], 3, 3)[0].code, codes::FMT_BAD_PTR); // bad start
        assert_eq!(check_ptr("p", &[0, 3, 2], 3, 2)[0].code, codes::FMT_BAD_PTR); // decrease
        assert_eq!(check_ptr("p", &[0, 1, 2], 3, 9)[0].code, codes::FMT_BAD_PTR); // bad end
    }

    #[test]
    fn ba22_ba23_ba24_element_violations() {
        assert_eq!(check_bounds("i", &[0, 7], 5)[0].code, codes::FMT_INDEX_OOB);
        assert_eq!(check_sorted_strict("i", &[3, 1], "r")[0].code, codes::FMT_UNSORTED);
        assert_eq!(check_sorted_strict("i", &[3, 3], "r")[0].code, codes::FMT_DUPLICATE);
    }

    #[test]
    fn ba26_corrupt_permutation() {
        // Two sources map to the same image: not a bijection.
        let p = Permutation::from_raw_parts(vec![0, 0, 2], vec![0, 1, 2]);
        let d = check_permutation("perm", &p, 3);
        assert_eq!(d[0].code, codes::FMT_BAD_PERM);
        // Out-of-range image.
        let p = Permutation::from_raw_parts(vec![0, 9, 2], vec![0, 1, 2]);
        assert_eq!(check_permutation("perm", &p, 3)[0].code, codes::FMT_BAD_PERM);
        // Wrong length.
        let p = Permutation::identity(4);
        assert_eq!(check_permutation("perm", &p, 3)[0].code, codes::FMT_BAD_PERM);
    }

    #[test]
    fn contract_accepts_conforming_matrix() {
        let m = DokMatrix::from_triplets(
            5,
            6,
            &[(0, 1, 1.0), (0, 4, 2.0), (2, 0, 3.0), (4, 5, 4.0), (4, 0, 5.0)],
        );
        assert!(check_access_contract(&m).is_empty());
    }

    /// A deliberately broken format: claims sorted inner enumeration
    /// but yields descending columns.
    struct LyingFormat {
        inner: DokMatrix,
    }

    impl MatrixAccess for LyingFormat {
        fn meta(&self) -> MatMeta {
            self.inner.meta()
        }
        fn enum_outer(&self) -> OuterIter<'_> {
            self.inner.enum_outer()
        }
        fn search_outer(&self, index: usize) -> Option<OuterCursor> {
            self.inner.search_outer(index)
        }
        fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
            let mut v: Vec<(usize, f64)> = self.inner.enum_inner(outer).collect();
            v.reverse(); // violates the declared sortedness
            InnerIter::Boxed(Box::new(v.into_iter()))
        }
        fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
            self.inner.search_inner(outer, index)
        }
        fn enum_flat(&self) -> FlatIter<'_> {
            self.inner.enum_flat()
        }
    }

    #[test]
    fn ba23_lying_sortedness_detected() {
        let m = LyingFormat {
            inner: DokMatrix::from_triplets(2, 4, &[(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0)]),
        };
        let d = check_access_contract(&m);
        assert_eq!(d[0].code, codes::FMT_UNSORTED, "{d:?}");
        assert!(d[0].message.contains("not ascending"), "{}", d[0].message);
    }

    /// A format whose nnz lies.
    struct WrongNnz {
        inner: DokMatrix,
    }

    impl MatrixAccess for WrongNnz {
        fn meta(&self) -> MatMeta {
            MatMeta { nnz: self.inner.nnz() + 1, ..self.inner.meta() }
        }
        fn enum_outer(&self) -> OuterIter<'_> {
            self.inner.enum_outer()
        }
        fn search_outer(&self, index: usize) -> Option<OuterCursor> {
            self.inner.search_outer(index)
        }
        fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
            self.inner.enum_inner(outer)
        }
        fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
            self.inner.search_inner(outer, index)
        }
        fn enum_flat(&self) -> FlatIter<'_> {
            self.inner.enum_flat()
        }
    }

    #[test]
    fn ba25_wrong_nnz_detected() {
        let m = WrongNnz { inner: DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]) };
        let d = check_access_contract(&m);
        assert_eq!(d[0].code, codes::FMT_META_MISMATCH, "{d:?}");
        assert!(d[0].message.contains("meta.nnz"), "{}", d[0].message);
    }

    /// Every view honest except `search_pair`, which denies a stored
    /// entry — the cross-view disagreement case of `BA27`.
    struct LyingSearchPair {
        inner: DokMatrix,
    }

    impl MatrixAccess for LyingSearchPair {
        fn meta(&self) -> MatMeta {
            self.inner.meta()
        }
        fn enum_outer(&self) -> OuterIter<'_> {
            self.inner.enum_outer()
        }
        fn search_outer(&self, index: usize) -> Option<OuterCursor> {
            self.inner.search_outer(index)
        }
        fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
            self.inner.enum_inner(outer)
        }
        fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
            self.inner.search_inner(outer, index)
        }
        fn enum_flat(&self) -> FlatIter<'_> {
            self.inner.enum_flat()
        }
        fn search_pair(&self, _i: usize, _j: usize) -> Option<f64> {
            None
        }
    }

    #[test]
    fn ba27_view_disagreement_detected() {
        let m = LyingSearchPair { inner: DokMatrix::from_triplets(2, 2, &[(0, 1, 5.0)]) };
        let d = check_access_contract(&m);
        assert_eq!(d[0].code, codes::FMT_CONTRACT, "{d:?}");
        assert!(d[0].message.contains("search_pair"), "{}", d[0].message);
        // The honest inner matrix is the clean counterpart.
        assert!(check_access_contract(&m.inner).is_empty());
    }
}
