//! # bernoulli-analysis
//!
//! Static analysis passes for the Bernoulli sparse compiler.
//!
//! The paper's correctness story rests on *declared properties*: join
//! implementations are chosen purely from access-method properties
//! (sortedness, search cost, duplicate-freedom), and parallelization is
//! legal only because the input nests are DO-ANY. This crate actually
//! *checks* those claims, with three passes sharing one
//! [`diag::Diagnostic`] machinery and lint-style `BA..` codes:
//!
//! * [`race`] — the **DO-ANY / race checker** over
//!   [`ast::LoopNest`](bernoulli_relational::ast::LoopNest): proves each
//!   statement parallel-safe by checking that every written access
//!   either covers all enclosing loop variables or is updated only
//!   through a commutative reduction, and that no read-after-write
//!   aliasing exists. Engines consult it before granting
//!   `Strategy::Parallel`.
//! * [`plan_verify`] — the **plan verifier**: independently re-checks
//!   every [`Plan`](bernoulli_relational::plan::Plan) the planner emits
//!   against the declared [`LevelProps`](bernoulli_relational::props::LevelProps)
//!   — merge joins need sorted duplicate-free inputs on both sides,
//!   search joins need a supported `SearchCost`, lookups may only
//!   reference bound variables. Wired into `Planner::plan_all` under
//!   `debug_assertions` via the planner's `verifier` hook.
//! * [`validate`] — the **format-invariant sanitizer**: a [`validate::Validate`]
//!   trait (implemented by every format in `bernoulli-formats`) checking
//!   pointer monotonicity, index bounds, intra-row/col sortedness,
//!   duplicate-freedom, and permutation bijectivity, plus the
//!   access-method contract checker that subsumes the old
//!   `relational::access_check`.
//! * [`wavefront`] — the **DO-ACROSS dependence pass**: where the race
//!   checker must refuse (triangular solve, Gauss-Seidel — the written
//!   vector is read across iterations), this pass extracts the
//!   loop-carried dependence DAG from the operand's sparsity structure,
//!   computes level sets, and issues an unforgeable
//!   [`wavefront::WavefrontCert`] licensing level-parallel execution;
//!   an independent [`wavefront::verify_level_schedule`] re-checks any
//!   schedule (BA4x) before the parallel tier is allowed.

pub mod diag;
pub mod plan_verify;
pub mod race;
pub mod validate;
pub mod wavefront;

pub use diag::{codes, Diagnostic, Severity, Span};
pub use plan_verify::{verify_plan, verify_plan_hook};
pub use race::{check_do_any, ParallelCertificate, RaceReport};
pub use validate::Validate;
pub use wavefront::{
    analyze_wavefront, verify_level_schedule, LevelSchedule, Triangle, WavefrontCert,
    WavefrontReport,
};
