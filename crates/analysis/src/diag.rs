//! Shared diagnostic machinery for the lint passes.
//!
//! Every analysis reports through one [`Diagnostic`] type carrying a
//! lint-style `BA..` code, a [`Severity`], a human-readable message and
//! a [`Span`] locating the finding, so drivers (tests, the
//! `examples/lint.rs` sweep, engine checked mode) can collect, filter
//! and render findings uniformly.

use bernoulli_relational::ids::{RelId, Var};
use std::fmt;

/// Lint codes, grouped by pass: `BA0x` race checker, `BA1x` plan
/// verifier, `BA2x` format sanitizer, `BA3x` SPMD inspector, `BA4x`
/// wavefront dependence pass / level-schedule verifier.
pub mod codes {
    /// Non-reduction write does not cover every loop variable
    /// (write-write race under DO-ANY execution).
    pub const RACE_NON_COVERING_WRITE: &str = "BA01";
    /// Right-hand side reads the written array (read-after-write
    /// aliasing between iterations).
    pub const RACE_READS_TARGET: &str = "BA02";
    /// Array access uses a variable the nest does not bind.
    pub const NEST_UNBOUND_VAR: &str = "BA03";
    /// Access references an array with no declaration in the nest.
    pub const NEST_UNDECLARED_ARRAY: &str = "BA04";
    /// Access arity differs from the declared array rank.
    pub const NEST_ARITY_MISMATCH: &str = "BA05";
    /// A non-covering write needs a `Reduction` certificate, but the
    /// algebra's `⊕` is not an associative-commutative monoid, so
    /// reassociating partial accumulations changes the result.
    pub const RACE_NON_MONOID_REDUCTION: &str = "BA06";

    /// Merge join where either side is unsorted or may contain
    /// duplicate indices.
    pub const PLAN_BAD_MERGE: &str = "BA11";
    /// Search join against a level whose `SearchCost` is unsupported.
    pub const PLAN_BAD_SEARCH: &str = "BA12";
    /// Lookup or derivation references a variable not bound at its
    /// node, or disagrees with the query's permutation term.
    pub const PLAN_UNBOUND_LOOKUP: &str = "BA13";
    /// Plan fails to bind every query variable exactly once.
    pub const PLAN_BINDING_MISMATCH: &str = "BA14";
    /// Driver enumeration is unsound: the relation is outside the
    /// sparsity predicate and its enumerated level is not dense.
    pub const PLAN_UNSOUND_DRIVER: &str = "BA15";
    /// A relation in the query has no registered metadata.
    pub const PLAN_MISSING_META: &str = "BA16";
    /// Plan carries a non-finite cost estimate: the cost model broke
    /// down on the metadata, so the plan cannot be ranked against
    /// alternatives (the planner counts and discards such candidates;
    /// a hand-built plan reaching execution with one is a defect).
    pub const PLAN_NONFINITE_COST: &str = "BA17";

    /// Pointer array non-monotone, or wrong length / start / end.
    pub const FMT_BAD_PTR: &str = "BA21";
    /// Stored index out of bounds.
    pub const FMT_INDEX_OOB: &str = "BA22";
    /// Entries unsorted where the format declares sortedness.
    pub const FMT_UNSORTED: &str = "BA23";
    /// Duplicate entries where the format declares duplicate-freedom.
    pub const FMT_DUPLICATE: &str = "BA24";
    /// Stored metadata (nnz, dimensions, array lengths) disagrees with
    /// the data.
    pub const FMT_META_MISMATCH: &str = "BA25";
    /// Permutation is not a bijection.
    pub const FMT_BAD_PERM: &str = "BA26";
    /// Access-method views disagree (hierarchical vs flat enumeration,
    /// search vs enumeration).
    pub const FMT_CONTRACT: &str = "BA27";

    /// SPMD communication schedule internally inconsistent.
    pub const SPMD_BAD_SCHEDULE: &str = "BA31";

    /// Stored entry on the wrong side of the diagonal for the claimed
    /// triangle: the sweep's dependence relation is cyclic
    /// (non-triangular input), so no wavefront order exists.
    pub const WAVE_NOT_TRIANGULAR: &str = "BA41";
    /// Level schedule is not a topological order of the dependence
    /// DAG: a row depends on a row scheduled at a later level.
    pub const WAVE_NON_TOPOLOGICAL: &str = "BA42";
    /// Level schedule does not list every row exactly once (missing,
    /// duplicate or out-of-range row, or malformed level boundaries).
    pub const WAVE_BAD_COVERAGE: &str = "BA43";
    /// Two rows in the same level are connected by a dependence, so
    /// the parallel wave would overlap a read with its write.
    pub const WAVE_LEVEL_OVERLAP: &str = "BA44";

    /// `(code, summary)` for every diagnostic the passes emit — the
    /// table rendered by `examples/lint.rs` and DESIGN.md.
    pub const ALL: &[(&str, &str)] = &[
        (RACE_NON_COVERING_WRITE, "non-reduction write does not cover every loop variable"),
        (RACE_READS_TARGET, "right-hand side reads the written array"),
        (NEST_UNBOUND_VAR, "access uses a variable the nest does not bind"),
        (NEST_UNDECLARED_ARRAY, "access references an undeclared array"),
        (NEST_ARITY_MISMATCH, "access arity differs from declared rank"),
        (RACE_NON_MONOID_REDUCTION, "reduction over a non-associative-commutative algebra"),
        (PLAN_BAD_MERGE, "merge join with an unsorted or duplicate-bearing side"),
        (PLAN_BAD_SEARCH, "search join on a level with unsupported search cost"),
        (PLAN_UNBOUND_LOOKUP, "lookup/derivation references an unbound variable"),
        (PLAN_BINDING_MISMATCH, "plan does not bind every query variable exactly once"),
        (PLAN_UNSOUND_DRIVER, "driver outside the predicate enumerates a non-dense level"),
        (PLAN_MISSING_META, "query relation has no registered metadata"),
        (PLAN_NONFINITE_COST, "plan carries a non-finite cost estimate"),
        (FMT_BAD_PTR, "pointer array non-monotone or mis-sized"),
        (FMT_INDEX_OOB, "stored index out of bounds"),
        (FMT_UNSORTED, "entries unsorted where sortedness is declared"),
        (FMT_DUPLICATE, "duplicate entries where duplicate-freedom is declared"),
        (FMT_META_MISMATCH, "stored metadata disagrees with the data"),
        (FMT_BAD_PERM, "permutation is not a bijection"),
        (FMT_CONTRACT, "access-method views disagree"),
        (SPMD_BAD_SCHEDULE, "SPMD communication schedule inconsistent"),
        (WAVE_NOT_TRIANGULAR, "non-triangular input: sweep dependence relation is cyclic"),
        (WAVE_NON_TOPOLOGICAL, "level schedule is not a topological order of the dependences"),
        (WAVE_BAD_COVERAGE, "level schedule does not cover every row exactly once"),
        (WAVE_LEVEL_OVERLAP, "dependence between two rows of the same level"),
    ];
}

/// How bad a finding is. Only [`Severity::Error`] findings fail the
/// planner hook and engine checked mode; warnings are advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

/// Where a finding points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Span {
    /// The whole analyzed object.
    Whole,
    /// A relation (array) of a nest, query or plan.
    Rel(RelId),
    /// A loop variable.
    Var(Var),
    /// A plan node, by position in `Plan::nodes` (outermost = 0).
    PlanNode(usize),
    /// A storage component (e.g. `rowptr`), optionally at an element.
    Component { name: &'static str, at: Option<usize> },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Whole => write!(f, "-"),
            Span::Rel(r) => write!(f, "{r}"),
            Span::Var(v) => write!(f, "{v}"),
            Span::PlanNode(k) => write!(f, "node {k}"),
            Span::Component { name, at: None } => write!(f, "{name}"),
            Span::Component { name, at: Some(k) } => write!(f, "{name}[{k}]"),
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Lint code from [`codes`], e.g. `"BA21"`.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Error, message: message.into(), span }
    }

    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Warning, message: message.into(), span }
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}] at {}: {}", self.code, self.span, self.message)
    }
}

/// Whether any finding is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Render error findings into one `Result`-friendly string
/// (warnings omitted); `Ok(())` when there are none.
pub fn into_result(diags: &[Diagnostic]) -> Result<(), String> {
    let errs: Vec<String> =
        diags.iter().filter(|d| d.is_error()).map(Diagnostic::to_string).collect();
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_relational::ids::MAT_A;

    #[test]
    fn display_and_result_rendering() {
        let d = Diagnostic::error(codes::FMT_BAD_PTR, Span::Component { name: "rowptr", at: Some(3) }, "decreases");
        assert_eq!(d.to_string(), "error[BA21] at rowptr[3]: decreases");
        let w = Diagnostic::warning(codes::FMT_CONTRACT, Span::Rel(MAT_A), "odd");
        assert!(w.to_string().starts_with("warning[BA27] at A"));
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w.clone(), d.clone()]));
        into_result(std::slice::from_ref(&w)).unwrap();
        let msg = into_result(&[w, d]).unwrap_err();
        assert!(msg.contains("BA21") && !msg.contains("BA27"), "{msg}");
    }

    #[test]
    fn code_table_is_unique_and_complete() {
        let mut seen = std::collections::HashSet::new();
        for (code, summary) in codes::ALL {
            assert!(seen.insert(*code), "duplicate code {code}");
            assert!(code.starts_with("BA") && !summary.is_empty());
        }
        assert!(codes::ALL.len() >= 8);
    }
}
