//! Independent verification of planner output.
//!
//! The planner *chooses* join implementations from declared
//! [`LevelProps`]; this pass *re-derives* the legality of every choice
//! from the same properties, so a planner bug (or a hand-built plan)
//! cannot silently execute an illegal join:
//!
//! * merge joins require sorted, duplicate-free levels on **both**
//!   sides (`BA11`);
//! * search joins require a supported [`SearchCost`](bernoulli_relational::props::SearchCost) on the probed
//!   level (`BA12`);
//! * every lookup and derivation references only variables bound by
//!   enclosing plan nodes (`BA13`), and derivations agree with the
//!   query's permutation terms;
//! * the plan binds every query variable exactly once (`BA14`);
//! * drivers outside the sparsity predicate may only enumerate dense
//!   levels (`BA15` — skipping stored zeros elsewhere loses tuples);
//! * every relation has registered metadata (`BA16`);
//! * the cost estimate is finite (`BA17` — a non-finite estimate means
//!   the cost model broke down and the plan was never comparable; the
//!   planner counts and discards such candidates itself, so one
//!   reaching verification is a planner bug or a hand-built plan).
//!
//! [`verify_plan_hook`] packages the pass as a
//! [`PlanVerifier`](bernoulli_relational::planner::PlanVerifier) so
//! `Compiler::new()` can install it on the planner under
//! `debug_assertions`.

use crate::diag::{self, codes, Diagnostic, Span};
use bernoulli_relational::access::Orientation;
use bernoulli_relational::ids::{RelId, Var};
use bernoulli_relational::plan::{Driver, JoinMethod, Lookup, Plan, PlanNode, ProbeKind};
use bernoulli_relational::planner::QueryMeta;
use bernoulli_relational::props::LevelProps;
use bernoulli_relational::query::{Query, Term};

/// Re-check a plan against the query and declared metadata.
pub fn verify_plan(plan: &Plan, query: &Query, meta: &QueryMeta) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if !plan.est_cost.is_finite() {
        diags.push(Diagnostic::error(
            codes::PLAN_NONFINITE_COST,
            Span::Whole,
            format!(
                "plan cost estimate is {}: the cost model broke down, so this plan \
                 was never comparable against alternatives",
                plan.est_cost
            ),
        ));
    }

    // Metadata must exist for every joined relation; without it the
    // remaining checks cannot run.
    for t in &query.terms {
        let present = match t {
            Term::Mat { rel, .. } => meta.mat_meta(*rel).is_some(),
            Term::Vec { rel, .. } => meta.vec_meta(*rel).is_some(),
            Term::Perm { rel, .. } => meta.perm_len(*rel).is_some(),
        };
        if !present {
            diags.push(Diagnostic::error(
                codes::PLAN_MISSING_META,
                Span::Rel(t.rel()),
                format!("relation {} has no registered metadata", t.rel()),
            ));
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    let mut bound: Vec<Var> = Vec::new();
    let bind = |v: Var, k: usize, diags: &mut Vec<Diagnostic>, bound: &mut Vec<Var>| {
        if bound.contains(&v) {
            diags.push(Diagnostic::error(
                codes::PLAN_BINDING_MISMATCH,
                Span::PlanNode(k),
                format!("variable {v} bound twice"),
            ));
        } else if !query.vars.contains(&v) {
            diags.push(Diagnostic::error(
                codes::PLAN_BINDING_MISMATCH,
                Span::PlanNode(k),
                format!("plan binds {v}, which is not a query variable"),
            ));
        } else {
            bound.push(v);
        }
    };

    for (k, node) in plan.nodes.iter().enumerate() {
        let (derived, lookups) = match node {
            PlanNode::Loop(l) => {
                bind(l.var, k, &mut diags, &mut bound);
                (&l.derived, &l.lookups)
            }
            PlanNode::Flat(f) => {
                bind(f.row_var, k, &mut diags, &mut bound);
                bind(f.col_var, k, &mut diags, &mut bound);
                (&f.derived, &f.lookups)
            }
        };

        for d in derived {
            if !bound.contains(&d.from) {
                diags.push(Diagnostic::error(
                    codes::PLAN_UNBOUND_LOOKUP,
                    Span::PlanNode(k),
                    format!("derivation through {} starts from unbound variable {}", d.perm, d.from),
                ));
            }
            match query.term(d.perm) {
                Some(Term::Perm { from, to, .. }) => {
                    let want = if d.forward { (*from, *to) } else { (*to, *from) };
                    if (d.from, d.to) != want {
                        diags.push(Diagnostic::error(
                            codes::PLAN_UNBOUND_LOOKUP,
                            Span::PlanNode(k),
                            format!(
                                "derivation {}→{} disagrees with permutation term {}",
                                d.from, d.to, d.perm
                            ),
                        ));
                    }
                }
                _ => diags.push(Diagnostic::error(
                    codes::PLAN_UNBOUND_LOOKUP,
                    Span::PlanNode(k),
                    format!("derivation references {}, which is not a permutation term", d.perm),
                )),
            }
            bind(d.to, k, &mut diags, &mut bound);
        }

        for lk in lookups {
            for v in probe_vars(lk) {
                if !bound.contains(&v) {
                    diags.push(Diagnostic::error(
                        codes::PLAN_UNBOUND_LOOKUP,
                        Span::PlanNode(k),
                        format!("lookup {:?}({}) references unbound variable {v}", lk.kind, lk.rel),
                    ));
                }
            }
            // A MatInnerAt probe needs its outer cursor locatable, so
            // the relation's outer variable must already be bound.
            if let ProbeKind::MatInnerAt(_) = lk.kind {
                if let Some(ov) = outer_var(query, meta, lk.rel) {
                    if !bound.contains(&ov) {
                        diags.push(Diagnostic::error(
                            codes::PLAN_UNBOUND_LOOKUP,
                            Span::PlanNode(k),
                            format!(
                                "inner probe of {} before its outer variable {ov} is bound",
                                lk.rel
                            ),
                        ));
                    }
                }
            }
            check_method(node, lk, k, query, meta, &mut diags);
        }

        check_driver_sound(node, k, query, meta, &mut diags);
    }

    for v in &query.vars {
        if !bound.contains(v) {
            diags.push(Diagnostic::error(
                codes::PLAN_BINDING_MISMATCH,
                Span::Var(*v),
                format!("plan never binds query variable {v}"),
            ));
        }
    }

    diags
}

/// [`verify_plan`] rendered as a planner hook: errors joined into one
/// message, warnings ignored.
pub fn verify_plan_hook(plan: &Plan, query: &Query, meta: &QueryMeta) -> Result<(), String> {
    diag::into_result(&verify_plan(plan, query, meta))
}

fn probe_vars(lk: &Lookup) -> Vec<Var> {
    match lk.kind {
        ProbeKind::VecAt(v) | ProbeKind::MatOuterAt(v) | ProbeKind::MatInnerAt(v) => vec![v],
        ProbeKind::MatPairAt { outer_var, inner_var } => vec![outer_var, inner_var],
        ProbeKind::MatFlatPairAt { row_var, col_var } => vec![row_var, col_var],
    }
}

/// The variable a matrix's outer level enumerates, per its orientation.
fn outer_var(query: &Query, meta: &QueryMeta, rel: RelId) -> Option<Var> {
    let m = meta.mat_meta(rel)?;
    match query.term(rel)? {
        Term::Mat { row, col, .. } => match m.orientation {
            Orientation::RowMajor => Some(*row),
            Orientation::ColMajor => Some(*col),
            Orientation::Flat => None,
        },
        _ => None,
    }
}

/// The level a lookup probes, described by its `LevelProps` (`None` for
/// pair probes, which are handled specially).
fn probed_level(lk: &Lookup, meta: &QueryMeta) -> Option<LevelProps> {
    match lk.kind {
        ProbeKind::VecAt(_) => meta.vec_meta(lk.rel).map(|vm| vm.props),
        ProbeKind::MatOuterAt(_) => meta.mat_meta(lk.rel).map(|m| m.outer),
        ProbeKind::MatInnerAt(_) => meta.mat_meta(lk.rel).map(|m| m.inner),
        ProbeKind::MatPairAt { .. } | ProbeKind::MatFlatPairAt { .. } => None,
    }
}

/// Whether the node's driver produces its variable in ascending order —
/// the driver-side precondition for a merge join at that node.
fn driver_sorted(node: &PlanNode, meta: &QueryMeta) -> bool {
    match node {
        PlanNode::Flat(_) => false,
        PlanNode::Loop(l) => match l.driver {
            Driver::Range => true,
            Driver::Vector(r) => {
                meta.vec_meta(r).is_some_and(|vm| vm.props.sortedness.is_sorted())
            }
            Driver::MatOuter(r) => {
                meta.mat_meta(r).is_some_and(|m| m.outer.sortedness.is_sorted())
            }
            Driver::MatInner(r) => {
                meta.mat_meta(r).is_some_and(|m| m.inner.sortedness.is_sorted())
            }
        },
    }
}

fn check_method(
    node: &PlanNode,
    lk: &Lookup,
    k: usize,
    _query: &Query,
    meta: &QueryMeta,
    diags: &mut Vec<Diagnostic>,
) {
    match lk.method {
        JoinMethod::Merge => {
            let Some(level) = probed_level(lk, meta) else {
                diags.push(Diagnostic::error(
                    codes::PLAN_BAD_MERGE,
                    Span::PlanNode(k),
                    format!("pair probe of {} cannot be a merge join", lk.rel),
                ));
                return;
            };
            if !driver_sorted(node, meta) {
                diags.push(Diagnostic::error(
                    codes::PLAN_BAD_MERGE,
                    Span::PlanNode(k),
                    format!("merge join with {} at a node whose driver enumerates unsorted", lk.rel),
                ));
            }
            if !level.sortedness.is_sorted() {
                diags.push(Diagnostic::error(
                    codes::PLAN_BAD_MERGE,
                    Span::PlanNode(k),
                    format!("merge join against unsorted level of {}", lk.rel),
                ));
            }
            if level.duplicates {
                diags.push(Diagnostic::error(
                    codes::PLAN_BAD_MERGE,
                    Span::PlanNode(k),
                    format!("merge join against duplicate-bearing level of {}", lk.rel),
                ));
            }
        }
        JoinMethod::Search => {
            let supported = match lk.kind {
                ProbeKind::MatPairAt { .. } => meta.mat_meta(lk.rel).is_some_and(|m| {
                    m.outer.search.supported() && m.inner.search.supported()
                }),
                // Flat pair probes always have the flat-scan fallback.
                ProbeKind::MatFlatPairAt { .. } => true,
                _ => probed_level(lk, meta).is_some_and(|l| l.search.supported()),
            };
            if !supported {
                diags.push(Diagnostic::error(
                    codes::PLAN_BAD_SEARCH,
                    Span::PlanNode(k),
                    format!("search join against {} whose search cost is unsupported", lk.rel),
                ));
            }
        }
    }
}

/// A driver's enumeration skips unstored indices, which is only legal
/// when the relation is in the sparsity predicate (zeros may be
/// skipped) or the enumerated level is dense (nothing is skipped).
fn check_driver_sound(
    node: &PlanNode,
    k: usize,
    query: &Query,
    meta: &QueryMeta,
    diags: &mut Vec<Diagnostic>,
) {
    let (rel, dense) = match node {
        PlanNode::Flat(f) => {
            (Some(f.rel), meta.mat_meta(f.rel).is_some_and(|m| m.flat.is_dense()))
        }
        PlanNode::Loop(l) => match l.driver {
            Driver::Range => (None, true),
            Driver::Vector(r) => (Some(r), meta.vec_meta(r).is_some_and(|vm| vm.props.is_dense())),
            Driver::MatOuter(r) => (Some(r), meta.mat_meta(r).is_some_and(|m| m.outer.is_dense())),
            Driver::MatInner(r) => (Some(r), meta.mat_meta(r).is_some_and(|m| m.inner.is_dense())),
        },
    };
    if let Some(r) = rel {
        if !query.predicate.contains(&r) && !dense {
            diags.push(Diagnostic::error(
                codes::PLAN_UNSOUND_DRIVER,
                Span::PlanNode(k),
                format!(
                    "driver {r} is outside the sparsity predicate but enumerates \
                     a non-dense level: stored-zero tuples would be skipped"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use bernoulli_relational::access::{MatMeta, VecMeta};
    use bernoulli_relational::ids::{MAT_A, VAR_I, VAR_J, VAR_K, VEC_X};
    use bernoulli_relational::plan::LoopNode;
    use bernoulli_relational::planner::Planner;
    use bernoulli_relational::props::{LevelProps, SearchCost};
    use bernoulli_relational::query::QueryBuilder;

    fn csr_meta(n: usize, nnz: usize) -> MatMeta {
        MatMeta {
            nrows: n,
            ncols: n,
            nnz,
            orientation: Orientation::RowMajor,
            outer: LevelProps::dense(),
            inner: LevelProps::sparse_sorted(),
            flat: LevelProps::sparse_sorted(),
            pair_search_cheap: true,
        }
    }

    fn matvec_setup() -> (Query, QueryMeta) {
        let q = QueryBuilder::mat_vec_product().build();
        let meta =
            QueryMeta::new().mat(MAT_A, csr_meta(50, 200)).vec(VEC_X, VecMeta::dense(50));
        (q, meta)
    }

    /// The planner's own CSR matvec plan — used as the clean baseline
    /// in every trigger test below.
    fn clean_plan() -> (Plan, Query, QueryMeta) {
        let (q, meta) = matvec_setup();
        let plan = Planner::new().plan(&q, &meta).unwrap();
        (plan, q, meta)
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn planner_output_verifies_clean() {
        let (q, meta) = matvec_setup();
        for p in Planner::new().plan_all(&q, &meta).unwrap() {
            let diags = verify_plan(&p, &q, &meta);
            assert!(!has_errors(&diags), "plan {}: {diags:?}", p.shape());
        }
        let (p, q, meta) = clean_plan();
        verify_plan_hook(&p, &q, &meta).unwrap();
    }

    #[test]
    fn ba11_merge_against_unsorted_partner() {
        let (mut plan, q, _) = clean_plan();
        // Same shape, but X is declared unsorted while the plan merges.
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(50, 200))
            .vec(VEC_X, VecMeta { len: 50, nnz: 20, props: LevelProps::sparse_unsorted() });
        for n in &mut plan.nodes {
            if let PlanNode::Loop(l) = n {
                for lk in &mut l.lookups {
                    lk.method = JoinMethod::Merge;
                }
            }
        }
        let diags = verify_plan(&plan, &q, &meta);
        assert!(codes_of(&diags).contains(&codes::PLAN_BAD_MERGE), "{diags:?}");
        // Clean baseline does not emit BA11.
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_BAD_MERGE));
    }

    #[test]
    fn ba11_merge_against_duplicate_bearing_partner() {
        let (mut plan, q, _) = clean_plan();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(50, 200)).vec(
            VEC_X,
            VecMeta { len: 50, nnz: 20, props: LevelProps::sparse_sorted().with_duplicates(true) },
        );
        for n in &mut plan.nodes {
            if let PlanNode::Loop(l) = n {
                for lk in &mut l.lookups {
                    lk.method = JoinMethod::Merge;
                }
            }
        }
        let diags = verify_plan(&plan, &q, &meta);
        assert!(
            diags.iter().any(|d| d.code == codes::PLAN_BAD_MERGE && d.message.contains("duplicate")),
            "{diags:?}"
        );
    }

    #[test]
    fn ba12_search_against_unsearchable_partner() {
        let (plan, q, _) = clean_plan();
        // X now declares no search support, but the plan probes it.
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(50, 200)).vec(
            VEC_X,
            VecMeta {
                len: 50,
                nnz: 50,
                props: LevelProps::dense().with_search(SearchCost::Unsupported),
            },
        );
        let diags = verify_plan(&plan, &q, &meta);
        assert!(codes_of(&diags).contains(&codes::PLAN_BAD_SEARCH), "{diags:?}");
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_BAD_SEARCH));
    }

    #[test]
    fn ba13_lookup_references_unbound_var() {
        let (mut plan, q, meta) = clean_plan();
        // Point the X probe at a variable no node binds.
        for n in &mut plan.nodes {
            if let PlanNode::Loop(l) = n {
                for lk in &mut l.lookups {
                    if let ProbeKind::VecAt(_) = lk.kind {
                        lk.kind = ProbeKind::VecAt(VAR_K);
                    }
                }
            }
        }
        let diags = verify_plan(&plan, &q, &meta);
        assert!(codes_of(&diags).contains(&codes::PLAN_UNBOUND_LOOKUP), "{diags:?}");
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_UNBOUND_LOOKUP));
    }

    #[test]
    fn ba14_plan_missing_a_variable() {
        let (mut plan, q, meta) = clean_plan();
        plan.nodes.retain(|n| !matches!(n, PlanNode::Loop(l) if l.var == VAR_J));
        let diags = verify_plan(&plan, &q, &meta);
        assert!(codes_of(&diags).contains(&codes::PLAN_BINDING_MISMATCH), "{diags:?}");
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_BINDING_MISMATCH));
    }

    #[test]
    fn ba14_variable_bound_twice() {
        let (mut plan, q, meta) = clean_plan();
        plan.nodes.push(PlanNode::Loop(LoopNode {
            var: VAR_I,
            driver: Driver::Range,
            derived: vec![],
            lookups: vec![],
        }));
        let diags = verify_plan(&plan, &q, &meta);
        assert!(
            diags.iter().any(|d| d.code == codes::PLAN_BINDING_MISMATCH && d.message.contains("twice")),
            "{diags:?}"
        );
    }

    #[test]
    fn ba15_sparse_driver_outside_predicate() {
        let (mut plan, q, _) = clean_plan();
        // Make X sparse (and not in the predicate), then drive j from it.
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(50, 200))
            .vec(VEC_X, VecMeta::sparse_sorted(50, 10));
        for n in &mut plan.nodes {
            if let PlanNode::Loop(l) = n {
                if l.var == VAR_J {
                    l.driver = Driver::Vector(VEC_X);
                    l.lookups.clear();
                }
            }
        }
        let diags = verify_plan(&plan, &q, &meta);
        assert!(codes_of(&diags).contains(&codes::PLAN_UNSOUND_DRIVER), "{diags:?}");
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_UNSOUND_DRIVER));
    }

    #[test]
    fn ba16_missing_metadata() {
        let (plan, q, _) = clean_plan();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(50, 200)); // X unregistered
        let diags = verify_plan(&plan, &q, &meta);
        assert_eq!(codes_of(&diags), vec![codes::PLAN_MISSING_META]);
        let (p, q2, m2) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q2, &m2)).contains(&codes::PLAN_MISSING_META));
    }

    #[test]
    fn ba17_nonfinite_cost_estimate() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let (mut plan, q, meta) = clean_plan();
            plan.est_cost = bad;
            let diags = verify_plan(&plan, &q, &meta);
            assert!(codes_of(&diags).contains(&codes::PLAN_NONFINITE_COST), "{bad}: {diags:?}");
        }
        let (p, q, m) = clean_plan();
        assert!(!codes_of(&verify_plan(&p, &q, &m)).contains(&codes::PLAN_NONFINITE_COST));
    }

    #[test]
    fn permuted_plans_verify_clean() {
        let q = QueryBuilder::permuted_mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(40, 160))
            .vec(VEC_X, VecMeta::dense(40))
            .perm(bernoulli_relational::ids::PERM_P, 40);
        for p in Planner::new().plan_all(&q, &meta).unwrap() {
            let diags = verify_plan(&p, &q, &meta);
            assert!(!has_errors(&diags), "plan {}: {diags:?}", p.shape());
        }
    }
}
