//! DO-ANY / race checking for loop nests.
//!
//! A nest is DO-ANY when its iterations can run in any order — and
//! parallel-safe when they can run *concurrently*. This pass proves the
//! latter statically (§2 of the paper assumes it; PR 2's
//! `Strategy::Parallel` relies on it) with two certificates:
//!
//! * [`ParallelCertificate::DisjointWrites`] — the written access
//!   covers every loop variable (each iteration writes its own
//!   element), so even non-commutative updates are safe;
//! * [`ParallelCertificate::Reduction`] — some loop variables are
//!   *reduced over*: several iterations hit the same element, which is
//!   safe only because the update operator is a commutative reduction.
//!
//! Coverage is computed modulo permutation terms: `P` relating `i ↔ k`
//! means writing `Y(i)` also distinguishes iterations by `k` (the
//! permutation is a bijection — checked separately by the sanitizer's
//! `BA26`).
//!
//! Read-after-write aliasing: the right-hand side may read the written
//! array only when writes are disjoint *and* the read is the very
//! element being updated; anything else observes another iteration's
//! write and is rejected (`BA02`).

use crate::diag::{codes, Diagnostic, Span};
use bernoulli_relational::ast::{AccessRef, LoopNest};
use bernoulli_relational::ids::Var;
use bernoulli_relational::semiring::AlgebraProps;

/// Why the nest is parallel-safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelCertificate {
    /// Every loop variable is covered by the written access: iterations
    /// write disjoint elements.
    DisjointWrites,
    /// Uncovered loop variables exist, but the update operator is a
    /// commutative reduction, so accumulation order does not matter.
    Reduction,
}

/// The checker's verdict: a certificate (when safe) plus findings.
#[derive(Clone, Debug)]
pub struct RaceReport {
    pub certificate: Option<ParallelCertificate>,
    pub diagnostics: Vec<Diagnostic>,
}

impl RaceReport {
    /// May this nest run its iterations concurrently?
    pub fn is_parallel_safe(&self) -> bool {
        self.certificate.is_some()
    }
}

/// Check one loop nest for DO-ANY parallel safety under the classical
/// `(+, ×)` f64 algebra (see [`check_do_any_in`] for other semirings).
pub fn check_do_any(nest: &LoopNest) -> RaceReport {
    check_do_any_in(nest, &AlgebraProps::f64_plus())
}

/// Check one loop nest for DO-ANY parallel safety under a given
/// algebra.
///
/// The `Reduction` certificate generalizes from "`+` on f64" to "any
/// associative-commutative monoid": a reduction-style update (`⊕=`)
/// with uncovered loop variables is certified only when the algebra's
/// `⊕` is AC, because concurrent execution merges thread-local partial
/// accumulations in an order that differs from the serial chain. A
/// non-AC `⊕` (e.g. the first-nonzero-wins selection semiring) is
/// refused with diagnostic BA06. `DisjointWrites` certificates are
/// algebra-independent — each iteration owns its element, so the
/// serial per-element update order is preserved.
pub fn check_do_any_in(nest: &LoopNest, algebra: &AlgebraProps) -> RaceReport {
    let mut diags = Vec::new();

    // Structural sanity of every access (target + reads).
    let reads = nest.rhs.accesses();
    for acc in std::iter::once(&nest.target).chain(reads.iter().copied()) {
        check_access(nest, acc, &mut diags);
    }
    for p in &nest.perms {
        for v in [p.from, p.to] {
            if !nest.vars.contains(&v) {
                diags.push(Diagnostic::error(
                    codes::NEST_UNBOUND_VAR,
                    Span::Var(v),
                    format!("permutation {} relates variable {v} the nest does not bind", p.id),
                ));
            }
        }
    }

    // Variables equivalent modulo permutation terms: covering either
    // side of a bijection covers both.
    let class = |v: Var| -> Var {
        // Tiny union-find: ≤3 vars, ≤2 perms — chase perm links to a
        // canonical representative (the smallest var in the class).
        let mut cur = v;
        loop {
            let mut next = cur;
            for p in &nest.perms {
                if p.from == cur && p.to < next {
                    next = p.to;
                }
                if p.to == cur && p.from < next {
                    next = p.from;
                }
            }
            if next == cur {
                return cur;
            }
            cur = next;
        }
    };

    let covered: Vec<Var> = nest.target.indices.iter().map(|&v| class(v)).collect();
    let uncovered: Vec<Var> =
        nest.vars.iter().copied().filter(|&v| !covered.contains(&class(v))).collect();
    let all_covered = uncovered.is_empty();

    if !nest.op.is_commutative() && !all_covered {
        diags.push(Diagnostic::error(
            codes::RACE_NON_COVERING_WRITE,
            Span::Rel(nest.target.array),
            format!(
                "non-reduction write to {} does not cover loop variable(s) {uncovered:?}: \
                 concurrent iterations assign the same element",
                nest.target.array
            ),
        ));
    }

    for acc in &reads {
        if acc.array != nest.target.array {
            continue;
        }
        let same_element = acc.indices == nest.target.indices;
        let benign = nest.op.is_commutative() && all_covered && same_element;
        if !benign {
            diags.push(Diagnostic::error(
                codes::RACE_READS_TARGET,
                Span::Rel(acc.array),
                format!(
                    "right-hand side reads written array {}: another iteration's \
                     write may be observed",
                    acc.array
                ),
            ));
        }
    }

    if nest.op.is_commutative() && !all_covered && !algebra.plus_is_ac() {
        diags.push(Diagnostic::error(
            codes::RACE_NON_MONOID_REDUCTION,
            Span::Rel(nest.target.array),
            format!(
                "reduction over uncovered loop variable(s) {uncovered:?} requires an \
                 associative-commutative ⊕, but algebra '{}' is{}{}",
                algebra.name,
                if algebra.plus_associative { "" } else { " non-associative" },
                if algebra.plus_commutative { "" } else { " non-commutative" },
            ),
        ));
    }

    let certificate = if diags.iter().any(Diagnostic::is_error) {
        None
    } else if all_covered {
        Some(ParallelCertificate::DisjointWrites)
    } else {
        Some(ParallelCertificate::Reduction)
    };
    RaceReport { certificate, diagnostics: diags }
}

fn check_access(nest: &LoopNest, acc: &AccessRef, diags: &mut Vec<Diagnostic>) {
    for &v in &acc.indices {
        if !nest.vars.contains(&v) {
            diags.push(Diagnostic::error(
                codes::NEST_UNBOUND_VAR,
                Span::Var(v),
                format!("access {}({:?}) uses variable {v} the nest does not bind", acc.array, acc.indices),
            ));
        }
    }
    match nest.array(acc.array) {
        None => diags.push(Diagnostic::error(
            codes::NEST_UNDECLARED_ARRAY,
            Span::Rel(acc.array),
            format!("array {} is accessed but never declared", acc.array),
        )),
        Some(decl) if decl.rank != acc.indices.len() => diags.push(Diagnostic::error(
            codes::NEST_ARITY_MISMATCH,
            Span::Rel(acc.array),
            format!(
                "array {} declared rank {} but accessed with {} subscript(s)",
                acc.array,
                decl.rank,
                acc.indices.len()
            ),
        )),
        Some(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_relational::ast::{programs, AccessRef, ArrayDecl, ExprAst, LoopNest};
    use bernoulli_relational::ids::{MAT_A, VAR_I, VAR_J, VAR_K, VEC_X, VEC_Y};
    use bernoulli_relational::scalar::UpdateOp;

    fn decl(id: bernoulli_relational::ids::RelId, rank: usize) -> ArrayDecl {
        ArrayDecl { id, name: format!("{id}"), rank, sparse: false }
    }

    /// `Y(i) = A(i,j)·X(j)` — a *scatter assignment*: iterations with
    /// the same `i` but different `j` race on `Y(i)`.
    fn assign_matvec() -> LoopNest {
        let mut nest = programs::matvec();
        nest.op = UpdateOp::Assign;
        nest
    }

    #[test]
    fn canned_kernels_are_parallel_safe() {
        for (name, nest) in [
            ("matvec", programs::matvec()),
            ("matvec_transposed", programs::matvec_transposed()),
            ("matmat", programs::matmat()),
            ("matvec_multi", programs::matvec_multi()),
            ("mat_dot", programs::mat_dot()),
            ("vec_dot", programs::vec_dot(true, true)),
            ("matvec_row_permuted", programs::matvec_row_permuted()),
        ] {
            let r = check_do_any(&nest);
            assert!(r.is_parallel_safe(), "{name}: {:?}", r.diagnostics);
            assert!(r.diagnostics.is_empty(), "{name}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn reduction_only_write_certificate() {
        // mat_dot writes a scalar: nothing is covered, safety rests
        // entirely on the commutative reduction.
        let r = check_do_any(&programs::mat_dot());
        assert_eq!(r.certificate, Some(ParallelCertificate::Reduction));
        // matvec covers i, reduces over j: also a reduction.
        let r = check_do_any(&programs::matvec());
        assert_eq!(r.certificate, Some(ParallelCertificate::Reduction));
    }

    #[test]
    fn permuted_write_covers_through_bijection() {
        // Y(I) with P: I↔K covers both I and K; only J is reduced over.
        let r = check_do_any(&programs::matvec_row_permuted());
        assert_eq!(r.certificate, Some(ParallelCertificate::Reduction));
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn covered_assignment_gets_disjoint_writes() {
        // Y(i) = X(i): every loop var covered, Assign is fine.
        let nest = LoopNest::new(
            vec![VAR_I],
            vec![decl(VEC_X, 1), decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::Assign,
            ExprAst::access(AccessRef::vec(VEC_X, VAR_I)),
        );
        let r = check_do_any(&nest);
        assert_eq!(r.certificate, Some(ParallelCertificate::DisjointWrites));
    }

    #[test]
    fn ba01_non_covering_assign_rejected() {
        let r = check_do_any(&assign_matvec());
        assert!(!r.is_parallel_safe());
        assert!(r.diagnostics.iter().any(|d| d.code == codes::RACE_NON_COVERING_WRITE), "{:?}", r.diagnostics);
    }

    #[test]
    fn ba02_read_of_written_array_rejected() {
        // Y(i) += A(i,j)·Y(j): reads another iteration's accumulator.
        let nest = LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![decl(MAT_A, 2), decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                .mul(ExprAst::access(AccessRef::vec(VEC_Y, VAR_J))),
        );
        let r = check_do_any(&nest);
        assert!(!r.is_parallel_safe());
        assert!(r.diagnostics.iter().any(|d| d.code == codes::RACE_READS_TARGET), "{:?}", r.diagnostics);
    }

    #[test]
    fn ba02_self_update_is_benign_when_covered() {
        // Y(i) += Y(i): reads exactly the element being reduced, with
        // disjoint writes — allowed.
        let nest = LoopNest::new(
            vec![VAR_I],
            vec![decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(VEC_Y, VAR_I)),
        );
        let r = check_do_any(&nest);
        assert!(r.is_parallel_safe(), "{:?}", r.diagnostics);
    }

    #[test]
    fn ba06_non_ac_algebra_refused_for_reductions() {
        use bernoulli_relational::semiring::{AlgebraProps, FirstNonZero, Semiring};
        // matvec reduces over j: fine under f64 (+), refused under a
        // non-commutative ⊕.
        let nest = programs::matvec();
        assert!(check_do_any_in(&nest, &AlgebraProps::f64_plus()).is_parallel_safe());
        let r = check_do_any_in(&nest, &FirstNonZero::props());
        assert!(!r.is_parallel_safe());
        assert!(
            r.diagnostics.iter().any(|d| d.code == codes::RACE_NON_MONOID_REDUCTION),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn ba06_not_raised_for_disjoint_writes() {
        use bernoulli_relational::semiring::{FirstNonZero, Semiring};
        // Y(i) += X(i): each iteration owns its element, so even a
        // non-AC ⊕ keeps the serial per-element order — certified.
        let nest = LoopNest::new(
            vec![VAR_I],
            vec![decl(VEC_X, 1), decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(VEC_X, VAR_I)),
        );
        let r = check_do_any_in(&nest, &FirstNonZero::props());
        assert_eq!(r.certificate, Some(ParallelCertificate::DisjointWrites));
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn ba03_unbound_variable_flagged() {
        let nest = LoopNest::new(
            vec![VAR_I],
            vec![decl(MAT_A, 2), decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_K)), // K unbound
        );
        let r = check_do_any(&nest);
        assert!(r.diagnostics.iter().any(|d| d.code == codes::NEST_UNBOUND_VAR), "{:?}", r.diagnostics);
        assert!(!r.is_parallel_safe());
    }

    #[test]
    fn ba04_undeclared_array_flagged() {
        let nest = LoopNest::new(
            vec![VAR_I],
            vec![decl(VEC_Y, 1)], // X missing
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(VEC_X, VAR_I)),
        );
        let r = check_do_any(&nest);
        assert!(r.diagnostics.iter().any(|d| d.code == codes::NEST_UNDECLARED_ARRAY), "{:?}", r.diagnostics);
    }

    #[test]
    fn ba05_arity_mismatch_flagged() {
        let nest = LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![decl(MAT_A, 2), decl(VEC_Y, 1)],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(MAT_A, VAR_I)), // rank-2 A used as vector
        );
        let r = check_do_any(&nest);
        assert!(r.diagnostics.iter().any(|d| d.code == codes::NEST_ARITY_MISMATCH), "{:?}", r.diagnostics);
    }
}
