//! A simple sorted dictionary-of-keys matrix used as the reference
//! [`MatrixAccess`] implementation for this crate's own tests and docs.
//!
//! Real storage formats live in `bernoulli-formats`; `DokMatrix` exists
//! so the relational engine can be tested (and documented) without a
//! dependency cycle. It is deliberately naive: a sorted `Vec` of
//! `(row, col, value)` triplets exposing a row-major hierarchy.

use crate::access::{
    FlatIter, InnerIter, MatMeta, MatrixAccess, Orientation, OuterCursor, OuterIter,
};
use crate::props::LevelProps;

/// Sorted triplet matrix with a row-major two-level access hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct DokMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// `rowptr[i]..rowptr[i+1]` is the triplet range of row `i`.
    rowptr: Vec<usize>,
}

impl DokMatrix {
    /// Build from (row, col, value) triplets; duplicates are summed and
    /// explicit zeros dropped.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut t: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &t {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of {nrows}x{ncols}");
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for (r, c, v) in t {
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        // Drop entries that summed to exactly zero.
        let keep: Vec<bool> = vals.iter().map(|&v| v != 0.0).collect();
        let filt = |xs: Vec<usize>| -> Vec<usize> {
            xs.into_iter().zip(&keep).filter(|(_, &k)| k).map(|(x, _)| x).collect()
        };
        let rows = filt(rows);
        let cols = filt(cols);
        let vals: Vec<f64> = vals.into_iter().zip(&keep).filter(|(_, &k)| k).map(|(v, _)| v).collect();

        let mut rowptr = vec![0usize; nrows + 1];
        for &r in &rows {
            rowptr[r + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        DokMatrix { nrows, ncols, rows, cols, vals, rowptr }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// All stored triplets in (row, col) order.
    pub fn triplets(&self) -> Vec<(usize, usize, f64)> {
        (0..self.nnz()).map(|k| (self.rows[k], self.cols[k], self.vals[k])).collect()
    }

    /// Dense matvec reference: `y += self * x`.
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for k in 0..self.nnz() {
            y[self.rows[k]] += self.vals[k] * x[self.cols[k]];
        }
    }
}

impl MatrixAccess for DokMatrix {
    fn meta(&self) -> MatMeta {
        MatMeta {
            nrows: self.nrows,
            ncols: self.ncols,
            nnz: self.nnz(),
            orientation: Orientation::RowMajor,
            outer: LevelProps::dense(),
            inner: LevelProps::sparse_sorted(),
            flat: LevelProps::sparse_sorted(),
            pair_search_cheap: true,
        }
    }

    fn enum_outer(&self) -> OuterIter<'_> {
        Box::new((0..self.nrows).map(move |i| OuterCursor {
            index: i,
            a: self.rowptr[i],
            b: self.rowptr[i + 1],
        }))
    }

    fn search_outer(&self, index: usize) -> Option<OuterCursor> {
        if index < self.nrows {
            Some(OuterCursor { index, a: self.rowptr[index], b: self.rowptr[index + 1] })
        } else {
            None
        }
    }

    fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
        InnerIter::Pairs {
            idx: &self.cols[outer.a..outer.b],
            vals: &self.vals[outer.a..outer.b],
            pos: 0,
        }
    }

    fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
        let cols = &self.cols[outer.a..outer.b];
        cols.binary_search(&index).ok().map(|k| self.vals[outer.a + k])
    }

    fn enum_flat(&self) -> FlatIter<'_> {
        Box::new((0..self.nnz()).map(move |k| (self.rows[k], self.cols[k], self.vals[k])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DokMatrix {
        DokMatrix::from_triplets(
            3,
            4,
            &[(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0), (2, 2, 4.0), (2, 3, 5.0)],
        )
    }

    #[test]
    fn builder_sorts_and_sums_duplicates() {
        let m = DokMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0)]);
        assert_eq!(m.triplets(), vec![(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn builder_drops_cancelled_entries() {
        let m = DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.triplets(), vec![(1, 0, 2.0)]);
    }

    #[test]
    fn hierarchical_enumeration_matches_flat() {
        let m = sample();
        let mut via_hier = Vec::new();
        for c in m.enum_outer() {
            for (j, v) in m.enum_inner(&c) {
                via_hier.push((c.index, j, v));
            }
        }
        let via_flat: Vec<_> = m.enum_flat().collect();
        assert_eq!(via_hier, via_flat);
        assert_eq!(via_flat.len(), 5);
    }

    #[test]
    fn search_paths() {
        let m = sample();
        assert_eq!(m.search_pair(2, 2), Some(4.0));
        assert_eq!(m.search_pair(1, 1), None);
        let c = m.search_outer(0).unwrap();
        assert_eq!(m.search_inner(&c, 3), Some(2.0));
        assert_eq!(m.search_inner(&c, 2), None);
        assert!(m.search_outer(9).is_none());
    }

    #[test]
    fn matvec_reference() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 3];
        m.matvec_acc(&x, &mut y);
        assert_eq!(y, vec![1.0 * 2.0 + 2.0 * 4.0, 0.0, 3.0 * 1.0 + 4.0 * 3.0 + 5.0 * 4.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        DokMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
