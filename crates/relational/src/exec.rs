//! Plan execution: the general interpreter for physical plans.
//!
//! [`execute`] walks a [`Plan`] against a set of [`Bindings`] — actual
//! access methods for each relation plus a mutable target — evaluating
//! the query's per-tuple statement for every tuple that survives the
//! sparsity predicate. The interpreter is completely format-agnostic:
//! it only speaks the [`MatrixAccess`]/[`VectorAccess`] vocabulary.
//!
//! Downstream crates layer *specialised kernels* on top (selected by
//! [`Plan::shape`]) for the hot shapes; the interpreter is the
//! always-correct general path and the baseline of the
//! dispatch-hoisting ablation.

use crate::access::{InnerIter, MatrixAccess, OuterCursor, OuterIter, VectorAccess};
use crate::error::{RelError, RelResult};
use crate::ids::{RelId, Var};
use crate::permutation::Permutation;
use crate::plan::{Driver, JoinMethod, Lookup, Plan, PlanNode, ProbeKind};
use crate::query::{Query, Term};
use crate::scalar::{Target, UpdateOp};
use std::collections::HashMap;

/// Maximum loop variables per query (the paper's kernels need ≤ 3).
const MAX_VARS: usize = 4;
/// Maximum relations per query.
const MAX_RELS: usize = 8;

/// A mutable dense matrix target (row-major).
pub struct DenseMatMut<'a> {
    pub data: &'a mut [f64],
    pub nrows: usize,
    pub ncols: usize,
}

/// Relation bindings for one execution.
#[derive(Default)]
pub struct Bindings<'a> {
    mats: HashMap<RelId, &'a dyn MatrixAccess>,
    vecs: HashMap<RelId, &'a dyn VectorAccess>,
    perms: HashMap<RelId, &'a Permutation>,
    vec_muts: HashMap<RelId, &'a mut [f64]>,
    mat_muts: HashMap<RelId, DenseMatMut<'a>>,
    scalar_muts: HashMap<RelId, &'a mut f64>,
}

impl<'a> Bindings<'a> {
    pub fn new() -> Self {
        Bindings::default()
    }

    pub fn bind_mat(&mut self, rel: RelId, m: &'a dyn MatrixAccess) -> &mut Self {
        self.mats.insert(rel, m);
        self
    }

    pub fn bind_vec(&mut self, rel: RelId, v: &'a dyn VectorAccess) -> &mut Self {
        self.vecs.insert(rel, v);
        self
    }

    pub fn bind_perm(&mut self, rel: RelId, p: &'a Permutation) -> &mut Self {
        self.perms.insert(rel, p);
        self
    }

    pub fn bind_vec_mut(&mut self, rel: RelId, v: &'a mut [f64]) -> &mut Self {
        self.vec_muts.insert(rel, v);
        self
    }

    pub fn bind_mat_mut(
        &mut self,
        rel: RelId,
        data: &'a mut [f64],
        nrows: usize,
        ncols: usize,
    ) -> &mut Self {
        assert_eq!(data.len(), nrows * ncols, "dense target buffer size mismatch");
        self.mat_muts.insert(rel, DenseMatMut { data, nrows, ncols });
        self
    }

    pub fn bind_scalar_mut(&mut self, rel: RelId, s: &'a mut f64) -> &mut Self {
        self.scalar_muts.insert(rel, s);
        self
    }
}

/// Counters of the work one execution actually performed — the
/// empirical counterpart of the planner's cost estimate. A test can
/// assert that the cost model's *ordering* of candidate plans matches
/// the ordering of real work (see the planner-validation tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Candidates produced by drivers (loop-body entries before joins).
    pub driver_steps: u64,
    /// Search probes executed.
    pub probes: u64,
    /// Merge-stream advancement checks.
    pub merge_advances: u64,
    /// Statements fired (surviving tuples).
    pub tuples: u64,
}

impl ExecStats {
    /// A single scalar summarising total work, comparable across plans
    /// for the same query and bindings.
    pub fn total_work(&self) -> u64 {
        self.driver_steps + self.probes + self.merge_advances + self.tuples
    }
}

#[derive(Default)]
struct StatsCells {
    driver_steps: std::cell::Cell<u64>,
    probes: std::cell::Cell<u64>,
    merge_advances: std::cell::Cell<u64>,
    tuples: std::cell::Cell<u64>,
}

impl StatsCells {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            driver_steps: self.driver_steps.get(),
            probes: self.probes.get(),
            merge_advances: self.merge_advances.get(),
            tuples: self.tuples.get(),
        }
    }
}

/// Execute a plan: evaluate the query's statement for every surviving
/// tuple. The target relation named by `query.stmt.target` must be
/// bound mutably; every term relation must be bound.
pub fn execute(plan: &Plan, query: &Query, binds: &mut Bindings<'_>) -> RelResult<()> {
    execute_with_stats(plan, query, binds).map(|_| ())
}

/// As [`execute`], additionally returning work counters.
pub fn execute_with_stats(
    plan: &Plan,
    query: &Query,
    binds: &mut Bindings<'_>,
) -> RelResult<ExecStats> {
    query.validate()?;
    // --- variable slot assignment -------------------------------------
    let mut var_slot: HashMap<Var, usize> = HashMap::new();
    for v in &query.vars {
        let n = var_slot.len();
        var_slot.insert(*v, n);
    }
    if var_slot.len() > MAX_VARS {
        return Err(RelError::MalformedQuery("too many loop variables".into()));
    }
    for v in plan.bound_vars() {
        if !var_slot.contains_key(&v) {
            return Err(RelError::UnboundVar(v));
        }
    }
    // --- relation slot assignment --------------------------------------
    let mut rel_slot: HashMap<RelId, usize> = HashMap::new();
    for t in &query.terms {
        let n = rel_slot.len();
        rel_slot.entry(t.rel()).or_insert(n);
    }
    if rel_slot.len() > MAX_RELS {
        return Err(RelError::MalformedQuery("too many relations".into()));
    }

    // --- binding presence + shape validation ---------------------------
    let mut extents: HashMap<Var, usize> = HashMap::new();
    let mut constrain = |v: Var, n: usize, rel: RelId| -> RelResult<()> {
        match extents.get(&v) {
            None => {
                extents.insert(v, n);
                Ok(())
            }
            Some(&e) if e == n => Ok(()),
            Some(&e) => Err(RelError::ShapeMismatch {
                rel,
                detail: format!("variable {v} has extent {e} elsewhere but {n} here"),
            }),
        }
    };
    for t in &query.terms {
        match t {
            Term::Mat { rel, row, col } => {
                let m = binds.mats.get(rel).ok_or(RelError::MissingBinding(*rel))?;
                let meta = m.meta();
                constrain(*row, meta.nrows, *rel)?;
                constrain(*col, meta.ncols, *rel)?;
            }
            Term::Vec { rel, idx } => {
                let v = binds.vecs.get(rel).ok_or(RelError::MissingBinding(*rel))?;
                constrain(*idx, v.meta().len, *rel)?;
            }
            Term::Perm { rel, from, to } => {
                let p = binds.perms.get(rel).ok_or(RelError::MissingBinding(*rel))?;
                constrain(*from, p.len(), *rel)?;
                constrain(*to, p.len(), *rel)?;
            }
        }
    }
    for v in &query.vars {
        if !extents.contains_key(v) {
            return Err(RelError::UnboundVar(*v));
        }
    }

    // --- take the target out of the bindings ---------------------------

    let mut target = match query.stmt.target {
        Target::VecElem { rel, var } => {
            let buf = binds.vec_muts.remove(&rel).ok_or(RelError::NotWritable(rel))?;
            let want = extents[&var];
            if buf.len() != want {
                let got = buf.len();
                binds.vec_muts.insert(rel, buf);
                return Err(RelError::ShapeMismatch {
                    rel,
                    detail: format!("target length {got}, loop extent {want}"),
                });
            }
            TargetMut::Vec(buf)
        }
        Target::MatElem { rel, row, col } => {
            let m = binds.mat_muts.remove(&rel).ok_or(RelError::NotWritable(rel))?;
            if m.nrows != extents[&row] || m.ncols != extents[&col] {
                let detail = format!(
                    "target {}x{}, loop extents {}x{}",
                    m.nrows, m.ncols, extents[&row], extents[&col]
                );
                binds.mat_muts.insert(rel, m);
                return Err(RelError::ShapeMismatch { rel, detail });
            }
            TargetMut::Mat(m)
        }
        Target::Scalar { rel } => {
            let s = binds.scalar_muts.remove(&rel).ok_or(RelError::NotWritable(rel))?;
            TargetMut::Scalar(s)
        }
    };

    let stats = StatsCells::default();
    let ctx = ExecCtx {
        plan,
        query,
        binds,
        var_slot: &var_slot,
        rel_slot: &rel_slot,
        extents: &extents,
        stats: &stats,
    };
    let mut env = Env::new();
    let result = ctx.run(0, &mut env, &mut target);

    // Put the target back so Bindings can be reused.
    match (target, query.stmt.target) {
        (TargetMut::Vec(buf), Target::VecElem { rel, .. }) => {
            binds.vec_muts.insert(rel, buf);
        }
        (TargetMut::Mat(m), Target::MatElem { rel, .. }) => {
            binds.mat_muts.insert(rel, m);
        }
        (TargetMut::Scalar(s), Target::Scalar { rel }) => {
            binds.scalar_muts.insert(rel, s);
        }
        _ => unreachable!("target kind cannot change during execution"),
    }
    result.map(|()| stats.snapshot())
}

enum TargetMut<'a> {
    Vec(&'a mut [f64]),
    Mat(DenseMatMut<'a>),
    Scalar(&'a mut f64),
}

/// Per-tuple environment: bound variable values, per-relation value
/// fields and located outer cursors.
struct Env {
    vars: [usize; MAX_VARS],
    vals: [f64; MAX_RELS],
    cursors: [Option<OuterCursor>; MAX_RELS],
}

impl Env {
    fn new() -> Self {
        Env { vars: [0; MAX_VARS], vals: [0.0; MAX_RELS], cursors: [None; MAX_RELS] }
    }
}

struct ExecCtx<'a, 'b> {
    plan: &'a Plan,
    query: &'a Query,
    binds: &'a Bindings<'b>,
    var_slot: &'a HashMap<Var, usize>,
    rel_slot: &'a HashMap<RelId, usize>,
    extents: &'a HashMap<Var, usize>,
    stats: &'a StatsCells,
}

/// A merge-join partner stream with one-item lookahead.
struct MergeState<'a> {
    lookup: Lookup,
    iter: PartnerIter<'a>,
    current: Option<(usize, PartnerVal)>,
}

enum PartnerIter<'a> {
    Pairs(InnerIter<'a>),
    Outer(OuterIter<'a>),
}

#[derive(Clone, Copy)]
enum PartnerVal {
    Val(f64),
    Cur(OuterCursor),
}

impl<'a> MergeState<'a> {
    fn pull(&mut self) {
        self.current = match &mut self.iter {
            PartnerIter::Pairs(it) => it.next().map(|(i, v)| (i, PartnerVal::Val(v))),
            PartnerIter::Outer(it) => it.next().map(|c| (c.index, PartnerVal::Cur(c))),
        };
    }

    /// Advance until the stream's key is ≥ `key`; return the payload on
    /// an exact match. Returns the number of pulls in `advances`.
    fn advance_to(&mut self, key: usize, advances: &mut u64) -> Option<PartnerVal> {
        while let Some((k, v)) = self.current {
            *advances += 1;
            if k < key {
                self.pull();
            } else if k == key {
                return Some(v);
            } else {
                return None;
            }
        }
        None
    }
}

impl<'a, 'b> ExecCtx<'a, 'b> {
    fn vslot(&self, v: Var) -> usize {
        self.var_slot[&v]
    }

    fn rslot(&self, r: RelId) -> usize {
        self.rel_slot[&r]
    }

    fn run(&self, depth: usize, env: &mut Env, target: &mut TargetMut<'_>) -> RelResult<()> {
        if depth == self.plan.nodes.len() {
            self.fire(env, target);
            return Ok(());
        }
        match &self.plan.nodes[depth] {
            PlanNode::Flat(f) => {
                let mat = self.binds.mats[&f.rel];
                let rs = self.rslot(f.rel);
                let rvs = self.vslot(f.row_var);
                let cvs = self.vslot(f.col_var);
                for (i, j, v) in mat.enum_flat() {
                    self.stats.driver_steps.set(self.stats.driver_steps.get() + 1);
                    env.vars[rvs] = i;
                    env.vars[cvs] = j;
                    env.vals[rs] = v;
                    if !self.derive(&f.derived, env)? {
                        continue;
                    }
                    if !self.searches(&f.lookups, env)? {
                        continue;
                    }
                    self.run(depth + 1, env, target)?;
                }
                Ok(())
            }
            PlanNode::Loop(l) => {
                let vs = self.vslot(l.var);
                // Merge partners are (re)opened each time the node starts.
                let mut merges: Vec<MergeState<'_>> = Vec::new();
                for lk in &l.lookups {
                    if lk.method != JoinMethod::Merge {
                        continue;
                    }
                    let iter = self.open_partner(lk, env)?;
                    let mut st = MergeState { lookup: *lk, iter, current: None };
                    st.pull();
                    merges.push(st);
                }
                let searches: Vec<Lookup> = l
                    .lookups
                    .iter()
                    .copied()
                    .filter(|lk| lk.method == JoinMethod::Search)
                    .collect();

                macro_rules! body {
                    ($idx:expr) => {{
                        self.stats.driver_steps.set(self.stats.driver_steps.get() + 1);
                        env.vars[vs] = $idx;
                        let mut keep = self.derive(&l.derived, env)?;
                        if keep {
                            for m in merges.iter_mut() {
                                let mut adv = 0u64;
                                let hit = m.advance_to($idx, &mut adv);
                                self.stats
                                    .merge_advances
                                    .set(self.stats.merge_advances.get() + adv);
                                match hit {
                                    Some(pv) => self.apply_partner(&m.lookup, pv, env),
                                    None => {
                                        if m.lookup.in_predicate {
                                            keep = false;
                                            break;
                                        } else {
                                            self.apply_miss(&m.lookup, env);
                                        }
                                    }
                                }
                            }
                        }
                        if keep {
                            keep = self.searches(&searches, env)?;
                        }
                        if keep {
                            self.run(depth + 1, env, target)?;
                        }
                    }};
                }

                match l.driver {
                    Driver::Range => {
                        let extent = self.extents[&l.var];
                        for i in 0..extent {
                            body!(i);
                        }
                    }
                    Driver::Vector(r) => {
                        let rs = self.rslot(r);
                        let vecb = self.binds.vecs[&r];
                        for (i, v) in vecb.enumerate() {
                            env.vals[rs] = v;
                            body!(i);
                        }
                    }
                    Driver::MatOuter(r) => {
                        let rs = self.rslot(r);
                        let mat = self.binds.mats[&r];
                        for c in mat.enum_outer() {
                            env.cursors[rs] = Some(c);
                            body!(c.index);
                        }
                    }
                    Driver::MatInner(r) => {
                        let rs = self.rslot(r);
                        let mat = self.binds.mats[&r];
                        if let Some(c) = env.cursors[rs] {
                            for (i, v) in mat.enum_inner(&c) {
                                env.vals[rs] = v;
                                body!(i);
                            }
                        }
                        // Absent cursor: the relation has no entries at
                        // the bound outer index — zero iterations.
                    }
                }
                Ok(())
            }
        }
    }

    /// Bind permutation-derived variables. Returns false if a derived
    /// value falls outside its extent (skip the tuple).
    fn derive(&self, derived: &[crate::plan::Derivation], env: &mut Env) -> RelResult<bool> {
        for d in derived {
            let p = self.binds.perms.get(&d.perm).ok_or(RelError::MissingBinding(d.perm))?;
            let from = env.vars[self.vslot(d.from)];
            if from >= p.len() {
                return Ok(false);
            }
            let to = if d.forward { p.forward(from) } else { p.backward(from) };
            env.vars[self.vslot(d.to)] = to;
        }
        Ok(true)
    }

    /// Open a merge partner stream for a lookup.
    fn open_partner(&self, lk: &Lookup, env: &Env) -> RelResult<PartnerIter<'a>> {
        match lk.kind {
            ProbeKind::VecAt(_) => {
                let v = self.binds.vecs.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                Ok(PartnerIter::Pairs(v.enumerate()))
            }
            ProbeKind::MatInnerAt(_) => {
                let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                match env.cursors[self.rslot(lk.rel)] {
                    Some(c) => Ok(PartnerIter::Pairs(m.enum_inner(&c))),
                    None => Ok(PartnerIter::Pairs(InnerIter::Empty)),
                }
            }
            ProbeKind::MatOuterAt(_) => {
                let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                Ok(PartnerIter::Outer(m.enum_outer()))
            }
            ProbeKind::MatPairAt { .. } | ProbeKind::MatFlatPairAt { .. } => {
                Err(RelError::UnsupportedAccess {
                    rel: lk.rel,
                    detail: "pair probes cannot be merge joins".into(),
                })
            }
        }
    }

    fn apply_partner(&self, lk: &Lookup, pv: PartnerVal, env: &mut Env) {
        let rs = self.rslot(lk.rel);
        match pv {
            PartnerVal::Val(v) => env.vals[rs] = v,
            PartnerVal::Cur(c) => env.cursors[rs] = Some(c),
        }
    }

    fn apply_miss(&self, lk: &Lookup, env: &mut Env) {
        let rs = self.rslot(lk.rel);
        match lk.kind {
            ProbeKind::MatOuterAt(_) => env.cursors[rs] = None,
            _ => env.vals[rs] = 0.0,
        }
    }

    /// Run search lookups; false means the sparsity predicate failed.
    fn searches(&self, lks: &[Lookup], env: &mut Env) -> RelResult<bool> {
        for lk in lks {
            self.stats.probes.set(self.stats.probes.get() + 1);
            let rs = self.rslot(lk.rel);
            let hit = match lk.kind {
                ProbeKind::VecAt(v) => {
                    let vecb = self.binds.vecs.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                    match vecb.search(env.vars[self.vslot(v)]) {
                        Some(x) => {
                            env.vals[rs] = x;
                            true
                        }
                        None => false,
                    }
                }
                ProbeKind::MatOuterAt(v) => {
                    let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                    match m.search_outer(env.vars[self.vslot(v)]) {
                        Some(c) => {
                            env.cursors[rs] = Some(c);
                            true
                        }
                        None => {
                            env.cursors[rs] = None;
                            false
                        }
                    }
                }
                ProbeKind::MatInnerAt(v) => {
                    let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                    match env.cursors[rs] {
                        Some(c) => match m.search_inner(&c, env.vars[self.vslot(v)]) {
                            Some(x) => {
                                env.vals[rs] = x;
                                true
                            }
                            None => false,
                        },
                        None => false,
                    }
                }
                ProbeKind::MatPairAt { outer_var, inner_var } => {
                    let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                    match m.search_outer(env.vars[self.vslot(outer_var)]) {
                        Some(c) => match m.search_inner(&c, env.vars[self.vslot(inner_var)]) {
                            Some(x) => {
                                env.vals[rs] = x;
                                true
                            }
                            None => false,
                        },
                        None => false,
                    }
                }
                ProbeKind::MatFlatPairAt { row_var, col_var } => {
                    let m = self.binds.mats.get(&lk.rel).ok_or(RelError::MissingBinding(lk.rel))?;
                    match m.search_pair(env.vars[self.vslot(row_var)], env.vars[self.vslot(col_var)]) {
                        Some(x) => {
                            env.vals[rs] = x;
                            true
                        }
                        None => false,
                    }
                }
            };
            if !hit {
                if lk.in_predicate {
                    return Ok(false);
                }
                self.apply_miss(lk, env);
            }
        }
        Ok(true)
    }

    /// Evaluate the statement for the current tuple.
    fn fire(&self, env: &Env, target: &mut TargetMut<'_>) {
        self.stats.tuples.set(self.stats.tuples.get() + 1);
        let rel_slot = self.rel_slot;
        let vals = &env.vals;
        let rhs = self.query.stmt.rhs.eval(&|r: RelId| {
            rel_slot.get(&r).map_or(0.0, |&s| vals[s])
        });
        let cell: &mut f64 = match (&mut *target, self.query.stmt.target) {
            (TargetMut::Vec(buf), Target::VecElem { var, .. }) => {
                &mut buf[env.vars[self.vslot(var)]]
            }
            (TargetMut::Mat(m), Target::MatElem { row, col, .. }) => {
                let r = env.vars[self.vslot(row)];
                let c = env.vars[self.vslot(col)];
                &mut m.data[r * m.ncols + c]
            }
            (TargetMut::Scalar(s), Target::Scalar { .. }) => s,
            _ => unreachable!("target kind mismatch"),
        };
        match self.query.stmt.op {
            UpdateOp::Assign => *cell = rhs,
            UpdateOp::AddAssign => *cell += rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MAT_A, MAT_B, MAT_C, PERM_P, VEC_X, VEC_Y};
    use crate::planner::{Planner, QueryMeta};
    use crate::query::QueryBuilder;
    use crate::testmat::DokMatrix;

    fn plan_for(q: &Query, meta: &QueryMeta) -> Plan {
        Planner::new().plan(q, meta).unwrap()
    }

    #[test]
    fn matvec_row_major() {
        let a = DokMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)],
        );
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(3));
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y);
        execute(&plan, &q, &mut b).unwrap();
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn transposed_matvec() {
        let a = DokMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 3.0), (1, 2, 4.0)]);
        let x = vec![10.0, 20.0];
        let mut y = vec![0.0; 3];
        let q = QueryBuilder::mat_transposed_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(2));
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y);
        execute(&plan, &q, &mut b).unwrap();
        // y = Aᵀ x: y[0] = 3*20, y[1] = 2*10, y[2] = 4*20
        assert_eq!(y, vec![60.0, 20.0, 80.0]);
    }

    #[test]
    fn spmm_dense_result() {
        let a = DokMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let bm = DokMatrix::from_triplets(3, 2, &[(0, 1, 4.0), (1, 0, 5.0), (2, 1, 6.0)]);
        let mut c = vec![0.0; 4];
        let q = QueryBuilder::mat_mat_product().build();
        let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, bm.meta());
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_mat(MAT_B, &bm).bind_mat_mut(MAT_C, &mut c, 2, 2);
        execute(&plan, &q, &mut b).unwrap();
        // A*B = [[0, 16],[15, 0]]
        assert_eq!(c, vec![0.0, 4.0 + 12.0, 15.0, 0.0]);
    }

    #[test]
    fn mat_dot_scalar_target() {
        let a = DokMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
        let bm = DokMatrix::from_triplets(2, 2, &[(0, 0, 5.0), (0, 1, 7.0), (1, 1, 11.0)]);
        let mut s = 0.0;
        let q = QueryBuilder::mat_dot().build();
        let meta = QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, bm.meta());
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_mat(MAT_B, &bm).bind_scalar_mut(VEC_Y, &mut s);
        execute(&plan, &q, &mut b).unwrap();
        assert_eq!(s, 2.0 * 5.0 + 3.0 * 11.0);
    }

    #[test]
    fn permuted_matvec_via_perm_relation() {
        // Stored matrix As has rows permuted: stored row p.forward(i)
        // holds global row i. Query: y(i) += As(i', j) x(j), P(i,i').
        let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        // Global matrix: row0: [1 0 0]; row1: [0 2 0]; row2: [0 0 3]
        // Stored row for global i lives at p.forward(i).
        let a_stored = DokMatrix::from_triplets(
            3,
            3,
            &[(2, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0)],
        );
        let x = vec![1.0, 10.0, 100.0];
        let mut y = vec![0.0; 3];
        let q = QueryBuilder::permuted_mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a_stored.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(3))
            .perm(PERM_P, 3);
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a_stored)
            .bind_vec(VEC_X, &x)
            .bind_perm(PERM_P, &p)
            .bind_vec_mut(VEC_Y, &mut y);
        execute(&plan, &q, &mut b).unwrap();
        assert_eq!(y, vec![1.0, 20.0, 300.0]);
    }

    #[test]
    fn mat_pair_probe_when_inner_var_binds_first() {
        // Frobenius dot with B column-major: B's outer axis (j) binds
        // after its inner axis (i), forcing a combined MatPairAt probe.
        use crate::access::{MatMeta, Orientation};
        use crate::props::LevelProps;

        /// Column-major wrapper over DokMatrix (transposes the roles).
        struct ColMajor(DokMatrix);
        impl crate::access::MatrixAccess for ColMajor {
            fn meta(&self) -> MatMeta {
                MatMeta {
                    nrows: self.0.ncols(),
                    ncols: self.0.nrows(),
                    nnz: self.0.nnz(),
                    orientation: Orientation::ColMajor,
                    outer: LevelProps::dense(),
                    inner: LevelProps::sparse_sorted(),
                    flat: LevelProps::sparse_unsorted(),
                    pair_search_cheap: true,
                }
            }
            fn enum_outer(&self) -> crate::access::OuterIter<'_> {
                self.0.enum_outer()
            }
            fn search_outer(&self, index: usize) -> Option<OuterCursor> {
                self.0.search_outer(index)
            }
            fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
                self.0.enum_inner(outer)
            }
            fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
                self.0.search_inner(outer, index)
            }
            fn enum_flat(&self) -> crate::access::FlatIter<'_> {
                Box::new(self.0.enum_flat().map(|(i, j, v)| (j, i, v)))
            }
        }

        let a = DokMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 2, 3.0), (2, 1, 4.0)]);
        // B stored column-major: underlying Dok holds Bᵀ, so
        // B = {(0,0,5), (1,2,7), (2,1,11)} — all three overlap A.
        let b_t = DokMatrix::from_triplets(3, 3, &[(0, 0, 5.0), (2, 1, 7.0), (1, 2, 11.0)]);
        let bm = ColMajor(b_t);
        let want = 2.0 * 5.0 + 3.0 * 7.0 + 4.0 * 11.0;
        let q = QueryBuilder::mat_dot().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .mat(MAT_B, crate::access::MatrixAccess::meta(&bm));
        // Planner-chosen plan computes the right value...
        let plan = plan_for(&q, &meta);
        let mut s = 0.0;
        let mut binds = Bindings::new();
        binds.bind_mat(MAT_A, &a).bind_mat(MAT_B, &bm).bind_scalar_mut(VEC_Y, &mut s);
        execute(&plan, &q, &mut binds).unwrap();
        drop(binds);
        assert_eq!(s, want, "plan {}", plan.shape());
        // ...and so does a hand-built plan that forces the combined
        // MatPairAt probe (B's outer axis j binds after its inner i).
        use crate::plan::{Driver, LoopNode, PlanNode};
        let forced = Plan {
            nodes: vec![
                PlanNode::Loop(LoopNode {
                    var: crate::ids::VAR_I,
                    driver: Driver::MatOuter(MAT_A),
                    derived: vec![],
                    lookups: vec![],
                }),
                PlanNode::Loop(LoopNode {
                    var: crate::ids::VAR_J,
                    driver: Driver::MatInner(MAT_A),
                    derived: vec![],
                    lookups: vec![Lookup {
                        rel: MAT_B,
                        kind: ProbeKind::MatPairAt {
                            outer_var: crate::ids::VAR_J,
                            inner_var: crate::ids::VAR_I,
                        },
                        method: JoinMethod::Search,
                        in_predicate: true,
                    }],
                }),
            ],
            est_cost: 0.0,
        };
        let mut s2 = 0.0;
        let mut binds = Bindings::new();
        binds.bind_mat(MAT_A, &a).bind_mat(MAT_B, &bm).bind_scalar_mut(VEC_Y, &mut s2);
        execute(&forced, &q, &mut binds).unwrap();
        drop(binds);
        assert_eq!(s2, want);
    }

    #[test]
    fn forced_outer_level_merge_join() {
        // Hand-built plan: enumerate rows of A as a Range, merge B's
        // outer level alongside (PartnerIter::Outer path), then B's
        // inner enumeration drives j.
        use crate::plan::{Driver, LoopNode, Lookup, PlanNode};
        let a = DokMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 2, 5.0), (3, 0, 2.0)]);
        let bm = DokMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 10.0), (2, 2, 20.0), (3, 1, 30.0)],
        );
        let q = QueryBuilder::mat_dot().build();
        let plan = Plan {
            nodes: vec![
                PlanNode::Loop(LoopNode {
                    var: crate::ids::VAR_I,
                    driver: Driver::MatOuter(MAT_A),
                    derived: vec![],
                    lookups: vec![Lookup {
                        rel: MAT_B,
                        kind: ProbeKind::MatOuterAt(crate::ids::VAR_I),
                        method: JoinMethod::Merge,
                        in_predicate: true,
                    }],
                }),
                PlanNode::Loop(LoopNode {
                    var: crate::ids::VAR_J,
                    driver: Driver::MatInner(MAT_A),
                    derived: vec![],
                    lookups: vec![Lookup {
                        rel: MAT_B,
                        kind: ProbeKind::MatInnerAt(crate::ids::VAR_J),
                        method: JoinMethod::Search,
                        in_predicate: true,
                    }],
                }),
            ],
            est_cost: 0.0,
        };
        let mut s = 0.0;
        let mut binds = Bindings::new();
        binds.bind_mat(MAT_A, &a).bind_mat(MAT_B, &bm).bind_scalar_mut(VEC_Y, &mut s);
        execute(&plan, &q, &mut binds).unwrap();
        drop(binds);
        assert_eq!(s, 1.0 * 10.0 + 5.0 * 20.0);
    }

    #[test]
    fn missing_binding_is_reported() {
        let a = DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(2));
        let plan = plan_for(&q, &meta);
        let mut y = vec![0.0; 2];
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec_mut(VEC_Y, &mut y);
        assert_eq!(execute(&plan, &q, &mut b), Err(RelError::MissingBinding(VEC_X)));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let x = vec![0.0; 3]; // wrong length
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(2));
        let plan = plan_for(&q, &meta);
        let mut y = vec![0.0; 2];
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y);
        assert!(matches!(
            execute(&plan, &q, &mut b),
            Err(RelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn target_not_writable_reported_and_bindings_reusable() {
        let a = DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let x = vec![1.0, 1.0];
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, a.meta())
            .vec(VEC_X, crate::access::VecMeta::dense(2));
        let plan = plan_for(&q, &meta);
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x);
        assert_eq!(execute(&plan, &q, &mut b), Err(RelError::NotWritable(VEC_Y)));
        // Now bind the target and reuse the same Bindings twice.
        let mut y = vec![0.0; 2];
        b.bind_vec_mut(VEC_Y, &mut y);
        execute(&plan, &q, &mut b).unwrap();
        execute(&plan, &q, &mut b).unwrap();
        drop(b);
        assert_eq!(y, vec![2.0, 0.0]); // two accumulations
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::ids::{MAT_A, VAR_I, VAR_J, VEC_X, VEC_Y};
    use crate::planner::{Planner, QueryMeta};
    use crate::query::QueryBuilder;
    use crate::testmat::DokMatrix;

    fn grid_matrix(n: usize) -> DokMatrix {
        // n×n tridiagonal-ish: ~3 entries per row.
        let mut tr = Vec::new();
        for i in 0..n {
            tr.push((i, i, 2.0));
            if i + 1 < n {
                tr.push((i, i + 1, -1.0));
                tr.push((i + 1, i, -1.0));
            }
        }
        DokMatrix::from_triplets(n, n, &tr)
    }

    #[test]
    fn stats_count_the_obvious_quantities() {
        let n = 50;
        let a = grid_matrix(n);
        let nnz = a.nnz() as u64;
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, crate::access::MatrixAccess::meta(&a))
            .vec(VEC_X, crate::access::VecMeta::dense(n));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        let mut b = Bindings::new();
        b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y);
        let st = execute_with_stats(&plan, &q, &mut b).unwrap();
        // Every stored entry yields exactly one tuple (x dense).
        assert_eq!(st.tuples, nnz);
        // One probe of X per candidate entry.
        assert_eq!(st.probes, nnz);
        assert!(st.driver_steps >= nnz);
    }

    #[test]
    fn cost_model_ordering_matches_measured_work() {
        // The planner's candidate ordering should correlate with the
        // interpreter's actual work counters: in particular the chosen
        // plan must be within the best measured plans, and the cost
        // model's best must beat its worst by a real margin.
        let n = 120;
        let a = grid_matrix(n);
        let x = vec![1.0; n];
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, crate::access::MatrixAccess::meta(&a))
            .vec(VEC_X, crate::access::VecMeta::dense(n));
        let candidates = Planner::new().plan_all(&q, &meta).unwrap();
        assert!(candidates.len() >= 3);
        let work: Vec<u64> = candidates
            .iter()
            .map(|p| {
                let mut y = vec![0.0; n];
                let mut b = Bindings::new();
                b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y);
                execute_with_stats(p, &q, &mut b).unwrap().total_work()
            })
            .collect();
        let chosen = work[0];
        let best = *work.iter().min().unwrap();
        let worst = *work.iter().max().unwrap();
        assert!(
            chosen <= best * 2,
            "chosen plan does {chosen} work, the true best does {best}: {work:?}"
        );
        assert!(worst > best, "candidates should differ in measured work");
        let _ = (VAR_I, VAR_J);
    }
}
