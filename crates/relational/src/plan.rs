//! Physical query plans.
//!
//! A [`Plan`] is an ordered nest of loops, one per enumerated loop
//! variable (plus a combined node for flat-enumerated matrices that bind
//! two variables at once). Each loop names a *driver* — the relation
//! level whose enumeration produces candidate index values — and a set
//! of *joins* resolved at that variable, each implemented as a
//! merge-join against a sorted co-enumeration or as a search probe.
//!
//! The plan is pure data: it can be inspected, printed, compared by
//! shape (the basis for kernel specialisation downstream), and executed
//! by [`crate::exec::execute`].

use crate::ids::{RelId, Var};
use std::fmt;

/// How a joined relation is resolved at a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Co-enumerate the relation's sorted level alongside the driver,
    /// advancing both in index order (merge join).
    Merge,
    /// Probe the relation's search method once per driver candidate.
    Search,
}

/// The access path a probe uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Probe a vector at the given variable, producing its value field.
    VecAt(Var),
    /// Locate a hierarchical matrix's outer cursor at the variable.
    /// Produces no value yet; enables later inner access.
    MatOuterAt(Var),
    /// Probe a matrix's inner level (cursor already located) at the
    /// variable, producing the value field.
    MatInnerAt(Var),
    /// Locate the outer cursor at `outer_var` (already bound earlier)
    /// and immediately probe the inner level at `inner_var` (also
    /// already bound). Used when a matrix's outer-axis variable binds
    /// *after* its inner-axis variable.
    MatPairAt { outer_var: Var, inner_var: Var },
    /// Random whole-matrix probe `search_pair(i, j)` for flat formats.
    MatFlatPairAt { row_var: Var, col_var: Var },
}

/// One join resolved at a loop node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lookup {
    pub rel: RelId,
    pub kind: ProbeKind,
    pub method: JoinMethod,
    /// Whether the relation participates in the sparsity predicate: a
    /// miss skips the tuple rather than contributing 0.0.
    pub in_predicate: bool,
}

/// What enumerates the candidate values of a loop variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Enumerate the dense iteration-space range `0..extent` (extent
    /// resolved from relation shapes at bind time).
    Range,
    /// Enumerate a vector relation's stored entries.
    Vector(RelId),
    /// Enumerate a hierarchical matrix's outer level.
    MatOuter(RelId),
    /// Enumerate a hierarchical matrix's inner level (its outer cursor
    /// must have been located at an earlier node).
    MatInner(RelId),
}

impl Driver {
    pub fn rel(&self) -> Option<RelId> {
        match self {
            Driver::Range => None,
            Driver::Vector(r) | Driver::MatOuter(r) | Driver::MatInner(r) => Some(*r),
        }
    }
}

/// Derivation of a variable through a permutation relation (§2.2):
/// once `from` is bound, `to = P(from)` (or the inverse) in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Derivation {
    pub perm: RelId,
    pub from: Var,
    pub to: Var,
    /// `true`: `to = forward(from)`; `false`: `to = backward(from)`.
    pub forward: bool,
}

/// One loop of the nest.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNode {
    pub var: Var,
    pub driver: Driver,
    /// Permutation-derived variables bound immediately after `var`.
    pub derived: Vec<Derivation>,
    /// Joins resolved at this node (on `var` or a derived variable).
    pub lookups: Vec<Lookup>,
}

/// A flat-enumeration node binding a matrix's row and column variables
/// simultaneously from its `⟨i, j, v⟩` stream.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatNode {
    pub rel: RelId,
    pub row_var: Var,
    pub col_var: Var,
    pub derived: Vec<Derivation>,
    pub lookups: Vec<Lookup>,
}

/// A node of the loop nest.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    Loop(LoopNode),
    Flat(FlatNode),
}

impl PlanNode {
    /// Variables bound by this node, including derived ones.
    pub fn bound_vars(&self) -> Vec<Var> {
        match self {
            PlanNode::Loop(l) => {
                let mut v = vec![l.var];
                v.extend(l.derived.iter().map(|d| d.to));
                v
            }
            PlanNode::Flat(fnode) => {
                let mut v = vec![fnode.row_var, fnode.col_var];
                v.extend(fnode.derived.iter().map(|d| d.to));
                v
            }
        }
    }

    pub fn lookups(&self) -> &[Lookup] {
        match self {
            PlanNode::Loop(l) => &l.lookups,
            PlanNode::Flat(f) => &f.lookups,
        }
    }
}

/// A complete physical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    pub nodes: Vec<PlanNode>,
    /// The planner's cost estimate (abstract units; comparable only
    /// between plans for the same query + metadata).
    pub est_cost: f64,
}

impl Plan {
    /// A short structural signature, used by downstream crates to pick
    /// specialised kernels (plan-shape-directed monomorphisation — the
    /// reproduction's stand-in for the paper's code generation).
    pub fn shape(&self) -> String {
        let mut s = String::new();
        for (k, n) in self.nodes.iter().enumerate() {
            if k > 0 {
                s.push('>');
            }
            match n {
                PlanNode::Loop(l) => {
                    let d = match l.driver {
                        Driver::Range => "range".to_string(),
                        Driver::Vector(r) => format!("vec({r})"),
                        Driver::MatOuter(r) => format!("outer({r})"),
                        Driver::MatInner(r) => format!("inner({r})"),
                    };
                    s.push_str(&format!("{}:{}", l.var, d));
                    for lk in &l.lookups {
                        s.push_str(&format!(
                            "[{}{}]",
                            lk.rel,
                            if lk.method == JoinMethod::Merge { "~" } else { "?" }
                        ));
                    }
                }
                PlanNode::Flat(f) => {
                    s.push_str(&format!("({},{}):flat({})", f.row_var, f.col_var, f.rel));
                    for lk in &f.lookups {
                        s.push_str(&format!(
                            "[{}{}]",
                            lk.rel,
                            if lk.method == JoinMethod::Merge { "~" } else { "?" }
                        ));
                    }
                }
            }
        }
        s
    }

    /// All variables the plan binds, in binding order.
    pub fn bound_vars(&self) -> Vec<Var> {
        self.nodes.iter().flat_map(|n| n.bound_vars()).collect()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan (est cost {:.1}):", self.est_cost)?;
        for (depth, n) in self.nodes.iter().enumerate() {
            let pad = "  ".repeat(depth + 1);
            match n {
                PlanNode::Loop(l) => {
                    write!(f, "{pad}for {} in {:?}", l.var, l.driver)?;
                    for d in &l.derived {
                        write!(
                            f,
                            " derive {} = {}{}({})",
                            d.to,
                            d.perm,
                            if d.forward { "" } else { "⁻¹" },
                            d.from
                        )?;
                    }
                    for lk in &l.lookups {
                        write!(f, " join {} via {:?}/{:?}", lk.rel, lk.kind, lk.method)?;
                    }
                    writeln!(f)?;
                }
                PlanNode::Flat(fl) => {
                    write!(f, "{pad}for ({},{}) in flat({})", fl.row_var, fl.col_var, fl.rel)?;
                    for lk in &fl.lookups {
                        write!(f, " join {} via {:?}/{:?}", lk.rel, lk.kind, lk.method)?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MAT_A, VAR_I, VAR_J, VEC_X};

    fn sample_plan() -> Plan {
        Plan {
            nodes: vec![
                PlanNode::Loop(LoopNode {
                    var: VAR_I,
                    driver: Driver::MatOuter(MAT_A),
                    derived: vec![],
                    lookups: vec![],
                }),
                PlanNode::Loop(LoopNode {
                    var: VAR_J,
                    driver: Driver::MatInner(MAT_A),
                    derived: vec![],
                    lookups: vec![Lookup {
                        rel: VEC_X,
                        kind: ProbeKind::VecAt(VAR_J),
                        method: JoinMethod::Search,
                        in_predicate: false,
                    }],
                }),
            ],
            est_cost: 42.0,
        }
    }

    #[test]
    fn shape_signature_is_stable() {
        let p = sample_plan();
        assert_eq!(p.shape(), "i:outer(A)>j:inner(A)[X?]");
    }

    #[test]
    fn bound_vars_in_order() {
        assert_eq!(sample_plan().bound_vars(), vec![VAR_I, VAR_J]);
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", sample_plan());
        assert!(s.contains("for i"));
        assert!(s.contains("join X"));
    }

    #[test]
    fn flat_node_binds_two_vars() {
        let n = PlanNode::Flat(FlatNode {
            rel: MAT_A,
            row_var: VAR_I,
            col_var: VAR_J,
            derived: vec![],
            lookups: vec![],
        });
        assert_eq!(n.bound_vars(), vec![VAR_I, VAR_J]);
    }

    #[test]
    fn driver_rel() {
        assert_eq!(Driver::Range.rel(), None);
        assert_eq!(Driver::Vector(VEC_X).rel(), Some(VEC_X));
        assert_eq!(Driver::MatOuter(MAT_A).rel(), Some(MAT_A));
    }
}
