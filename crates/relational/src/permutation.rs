//! Index-translation (permutation) relations (§2.2 of the paper).
//!
//! A permutation `P` over `0..n` is viewed as a relation of
//! `⟨i, i'⟩` tuples, stored as the pair of arrays `PERM` / `IPERM`
//! (the map and its inverse), exactly as the paper describes for
//! jagged-diagonal storage. Both directions are O(1) lookups, which is
//! the property the planner relies on to treat permutation terms as
//! pure derivations rather than joins.

use crate::error::{RelError, RelResult};

/// A bijection on `0..n` with its inverse, usable as the relation
/// `P(i, i')` where `i' = perm[i]` and `i = iperm[i']`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    iperm: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation { iperm: perm.clone(), perm }
    }

    /// Build from the forward map `perm`, validating bijectivity.
    pub fn from_forward(perm: Vec<usize>) -> RelResult<Self> {
        let n = perm.len();
        let mut iperm = vec![usize::MAX; n];
        for (i, &p) in perm.iter().enumerate() {
            if p >= n {
                return Err(RelError::MalformedQuery(format!(
                    "permutation value {p} out of range 0..{n}"
                )));
            }
            if iperm[p] != usize::MAX {
                return Err(RelError::MalformedQuery(format!(
                    "permutation maps two sources to {p}"
                )));
            }
            iperm[p] = i;
        }
        Ok(Permutation { perm, iperm })
    }

    /// Build directly from the raw `PERM`/`IPERM` pair **without**
    /// checking bijectivity or mutual consistency. Exists so the
    /// static-analysis corpus can represent corrupt permutations; the
    /// sanitizer's `BA26` check (in `bernoulli-analysis`) is the
    /// validating counterpart.
    pub fn from_raw_parts(perm: Vec<usize>, iperm: Vec<usize>) -> Self {
        Permutation { perm, iperm }
    }

    /// Build the permutation that sorts the given keys ascending (stable):
    /// `forward(rank) = original position`... more precisely, this returns
    /// the permutation `σ` with `σ(i) = new position of element i`, such
    /// that applying it to the key array yields sorted order.
    pub fn sorting(keys: &[impl Ord]) -> Self {
        let n = keys.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
        // order[rank] = original index; we want perm[original] = rank.
        let mut perm = vec![0usize; n];
        for (rank, &orig) in order.iter().enumerate() {
            perm[orig] = rank;
        }
        Permutation::from_forward(perm).expect("sorting permutation is bijective")
    }

    pub fn len(&self) -> usize {
        self.perm.len()
    }

    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `i → i'`.
    #[inline]
    pub fn forward(&self, i: usize) -> usize {
        self.perm[i]
    }

    /// `i' → i`.
    #[inline]
    pub fn backward(&self, ip: usize) -> usize {
        self.iperm[ip]
    }

    /// The raw `PERM` array.
    pub fn as_forward(&self) -> &[usize] {
        &self.perm
    }

    /// The raw `IPERM` array.
    pub fn as_backward(&self) -> &[usize] {
        &self.iperm
    }

    /// The inverse permutation as a value.
    pub fn inverse(&self) -> Permutation {
        Permutation { perm: self.iperm.clone(), iperm: self.perm.clone() }
    }

    /// Composition: `(self ∘ other)(i) = self(other(i))`.
    pub fn compose(&self, other: &Permutation) -> RelResult<Permutation> {
        if self.len() != other.len() {
            return Err(RelError::MalformedQuery(format!(
                "composing permutations of lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        let perm: Vec<usize> = (0..self.len()).map(|i| self.forward(other.forward(i))).collect();
        Permutation::from_forward(perm)
    }

    /// Gather a vector through the permutation: `out[perm[i]] = v[i]`,
    /// i.e. element `i` moves to its permuted position.
    pub fn apply_to_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "vector/permutation length mismatch");
        let mut out = vec![0.0; v.len()];
        for (i, &x) in v.iter().enumerate() {
            out[self.perm[i]] = x;
        }
        out
    }

    /// Inverse application: `out[i] = v[perm[i]]`.
    pub fn unapply_to_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "vector/permutation length mismatch");
        (0..v.len()).map(|i| v[self.perm[i]]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.forward(i), i);
            assert_eq!(p.backward(i), i);
        }
    }

    #[test]
    fn from_forward_validates() {
        assert!(Permutation::from_forward(vec![1, 2, 0]).is_ok());
        assert!(Permutation::from_forward(vec![1, 1, 0]).is_err());
        assert!(Permutation::from_forward(vec![0, 3]).is_err());
    }

    #[test]
    fn forward_backward_inverse() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        for i in 0..4 {
            assert_eq!(p.backward(p.forward(i)), i);
            assert_eq!(p.forward(p.backward(i)), i);
        }
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.forward(i), p.backward(i));
        }
    }

    #[test]
    fn sorting_permutation_sorts() {
        // Jagged-diagonal use case: sort rows by descending row length.
        let row_lens = [2usize, 5, 1, 4];
        let neg: Vec<isize> = row_lens.iter().map(|&l| -(l as isize)).collect();
        let p = Permutation::sorting(&neg);
        // Row 1 (len 5) should land first, then row 3, row 0, row 2.
        assert_eq!(p.forward(1), 0);
        assert_eq!(p.forward(3), 1);
        assert_eq!(p.forward(0), 2);
        assert_eq!(p.forward(2), 3);
    }

    #[test]
    fn sorting_is_stable() {
        let keys = [1, 0, 1, 0];
        let p = Permutation::sorting(&keys);
        // The two zeros keep their relative order, as do the ones.
        assert!(p.forward(1) < p.forward(3));
        assert!(p.forward(0) < p.forward(2));
    }

    #[test]
    fn compose_matches_sequential_application() {
        let p = Permutation::from_forward(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_forward(vec![2, 1, 0]).unwrap();
        let pq = p.compose(&q).unwrap();
        for i in 0..3 {
            assert_eq!(pq.forward(i), p.forward(q.forward(i)));
        }
        let r = Permutation::identity(4);
        assert!(p.compose(&r).is_err());
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        let v = vec![10.0, 20.0, 30.0];
        let w = p.apply_to_vec(&v);
        assert_eq!(w, vec![20.0, 30.0, 10.0]);
        assert_eq!(p.unapply_to_vec(&w), v);
    }
}
