//! Error type shared across the relational engine.

use crate::ids::{RelId, Var};
use std::fmt;

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// No join order satisfying all hierarchy constraints exists
    /// (e.g. two column-major drivers forced into conflicting orders).
    NoFeasiblePlan(String),
    /// A relation referenced by the query has no metadata registered.
    MissingMeta(RelId),
    /// A relation referenced by the plan has no binding registered.
    MissingBinding(RelId),
    /// A binding's shape disagrees with the query (e.g. vector length
    /// vs. loop bound).
    ShapeMismatch { rel: RelId, detail: String },
    /// The statement writes a relation that was bound immutably.
    NotWritable(RelId),
    /// The query references a variable the plan does not produce.
    UnboundVar(Var),
    /// A plan node demands an operation the bound relation's access
    /// method does not support (guards against planner/metadata skew).
    UnsupportedAccess { rel: RelId, detail: String },
    /// Malformed query (duplicate terms, empty variable list, ...).
    MalformedQuery(String),
    /// An emitted plan failed independent verification (the planner's
    /// `verifier` hook — see `bernoulli-analysis`).
    PlanVerification(String),
    /// An operand failed invariant validation in checked execution mode.
    Validation(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::NoFeasiblePlan(s) => write!(f, "no feasible plan: {s}"),
            RelError::MissingMeta(r) => write!(f, "no metadata registered for relation {r}"),
            RelError::MissingBinding(r) => write!(f, "no binding registered for relation {r}"),
            RelError::ShapeMismatch { rel, detail } => {
                write!(f, "shape mismatch for relation {rel}: {detail}")
            }
            RelError::NotWritable(r) => write!(f, "relation {r} is not bound mutably"),
            RelError::UnboundVar(v) => write!(f, "variable {v} is not produced by the plan"),
            RelError::UnsupportedAccess { rel, detail } => {
                write!(f, "unsupported access on relation {rel}: {detail}")
            }
            RelError::MalformedQuery(s) => write!(f, "malformed query: {s}"),
            RelError::PlanVerification(s) => write!(f, "plan verification failed: {s}"),
            RelError::Validation(s) => write!(f, "operand validation failed: {s}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MAT_A, VAR_I};

    #[test]
    fn errors_display() {
        let cases: Vec<RelError> = vec![
            RelError::NoFeasiblePlan("x".into()),
            RelError::MissingMeta(MAT_A),
            RelError::MissingBinding(MAT_A),
            RelError::ShapeMismatch { rel: MAT_A, detail: "len".into() },
            RelError::NotWritable(MAT_A),
            RelError::UnboundVar(VAR_I),
            RelError::UnsupportedAccess { rel: MAT_A, detail: "search".into() },
            RelError::MalformedQuery("dup".into()),
            RelError::PlanVerification("merge on unsorted".into()),
            RelError::Validation("rowptr decreases".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
