//! Semiring abstraction over the kernels' scalar algebra.
//!
//! The paper's relational compilation story never assumed `(+, ×)` on
//! `f64`: joins and aggregations are algebra-agnostic, and the same
//! query plans evaluate graph algorithms once the scalar operations are
//! swapped — shortest paths over `(min, +)`, reachability over
//! `(∨, ∧)`, path counting over `(+, ×)` on integers. This module
//! defines the [`Semiring`] trait threaded through `formats::kernels`,
//! `par_kernels`, and the engines, plus the concrete instances shipped
//! with the repo.
//!
//! Two design constraints shape the trait:
//!
//! 1. **Formats store `f64`.** Every sparse format keeps its stored
//!    values as `f64`; a semiring lifts them on the fly via
//!    [`Semiring::from_f64`]. For [`F64Plus`] the lift is the identity,
//!    which is what makes the generic kernels compile to byte-identical
//!    code and output as the pre-refactor f64 kernels.
//! 2. **Parallel safety is per-algebra.** The reduction-style parallel
//!    kernels (CCS/CCCS/COO scatter with thread-local partials) merge
//!    partial results in an order that differs from the serial
//!    evaluation, so they are only offered when the additive monoid is
//!    associative and commutative. The race checker consumes the same
//!    facts as plain data ([`AlgebraProps`]) and refuses a `Reduction`
//!    certificate for a non-AC algebra (diagnostic BA06).
//!
//! Associativity here is *algebraic* associativity: for [`F64Plus`] the
//! floating-point sum is only associative up to rounding, matching the
//! long-standing convention that a `Reduction` certificate permits
//! reassociation within O(n·ε).

use std::fmt::Debug;

/// Plain-data description of a semiring's additive monoid, consumable
/// by crates that must not depend on a concrete [`Semiring`] type
/// (the race checker, codegen, telemetry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlgebraProps {
    /// Stable identifier recorded in telemetry (`bernoulli.profile/v1`
    /// `algebra` fields), e.g. `"f64_plus"` or `"min_plus"`.
    pub name: &'static str,
    /// `⊕` is associative (up to rounding for float instances).
    pub plus_associative: bool,
    /// `⊕` is commutative.
    pub plus_commutative: bool,
    /// Rendering hint for pseudocode emission, e.g. `"+"` or `"min"`.
    pub plus_symbol: &'static str,
    /// Rendering hint for pseudocode emission, e.g. `"*"`.
    pub times_symbol: &'static str,
}

impl AlgebraProps {
    /// The classical `(+, ×)` algebra on `f64` — the pre-refactor
    /// default everywhere.
    pub const fn f64_plus() -> Self {
        AlgebraProps {
            name: "f64_plus",
            plus_associative: true,
            plus_commutative: true,
            plus_symbol: "+",
            times_symbol: "*",
        }
    }

    /// Whether `⊕` forms an associative-commutative monoid — the
    /// property the `Reduction` parallel certificate requires.
    pub fn plus_is_ac(&self) -> bool {
        self.plus_associative && self.plus_commutative
    }
}

impl Default for AlgebraProps {
    fn default() -> Self {
        AlgebraProps::f64_plus()
    }
}

/// A semiring `(S, ⊕, ⊗, 0, 1)` driving the generic kernels.
///
/// Implementors are zero-sized marker types; all state lives in
/// `Elem`. `0` must be the identity of `⊕` and an annihilator of `⊗`
/// for the sparsity predicate (`A(i,j) = 0 ⇒` the tuple contributes
/// nothing) to remain sound — every instance here satisfies that.
pub trait Semiring: 'static {
    /// The carrier type.
    type Elem: Copy + PartialEq + Send + Sync + Debug;

    /// Stable algebra identifier (telemetry, diagnostics).
    const NAME: &'static str;
    /// `⊕` is associative (algebraically; up to rounding for floats).
    const PLUS_IS_ASSOCIATIVE: bool = true;
    /// `⊕` is commutative.
    const PLUS_IS_COMMUTATIVE: bool = true;
    /// Pseudocode rendering of `⊕`.
    const PLUS_SYMBOL: &'static str = "(+)";
    /// Pseudocode rendering of `⊗`.
    const TIMES_SYMBOL: &'static str = "(*)";

    /// Additive identity (and multiplicative annihilator).
    fn zero() -> Self::Elem;
    /// Multiplicative identity.
    fn one() -> Self::Elem;
    /// `a ⊕ b`. Left operand is the accumulator: non-commutative
    /// instances rely on this orientation.
    fn plus(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// `a ⊗ b`.
    fn times(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Lift a stored `f64` (all formats store `f64`) into the carrier.
    ///
    /// **Contract:** `from_f64(0.0)` must equal [`Semiring::zero`].
    /// Formats materialize structural zeros (dense storage, ITPACK
    /// padding, diagonal storage); those slots hold `0.0` and must
    /// lift to the inert element or the materializing formats would
    /// compute different answers than the compressed ones. The flip
    /// side is the standard "implicit zero" convention of semiring
    /// sparse algebra: an explicitly stored `0.0` is indistinguishable
    /// from an absent entry (e.g. a 0-weight edge is no edge under
    /// min-plus).
    fn from_f64(v: f64) -> Self::Elem;

    /// Column-skip gate for the CCS/transposed-CSR kernels: may the
    /// whole stored column scaled by `xj` be skipped without touching
    /// `y`? The default `false` never skips (always sound). [`F64Plus`]
    /// overrides it with the exact NaN-safe test of the pre-refactor
    /// f64 kernels (`xj == 0.0` and every stored value finite, so that
    /// `0 · v` cannot produce a NaN that must propagate).
    fn skip_scaled_column(_xj: Self::Elem, _stored: &[f64]) -> bool {
        false
    }

    /// The additive monoid's properties as plain data.
    fn props() -> AlgebraProps {
        AlgebraProps {
            name: Self::NAME,
            plus_associative: Self::PLUS_IS_ASSOCIATIVE,
            plus_commutative: Self::PLUS_IS_COMMUTATIVE,
            plus_symbol: Self::PLUS_SYMBOL,
            times_symbol: Self::TIMES_SYMBOL,
        }
    }
}

/// The classical algebra: `(f64, +, ×, 0.0, 1.0)`.
///
/// Generic kernels instantiated here are bitwise-identical to the
/// pre-refactor f64 kernels (pinned by the goldens in
/// `tests/observability.rs` and the proptest suite in
/// `tests/semiring_equivalence.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct F64Plus;

impl Semiring for F64Plus {
    type Elem = f64;
    const NAME: &'static str = "f64_plus";
    const PLUS_SYMBOL: &'static str = "+";
    const TIMES_SYMBOL: &'static str = "*";

    #[inline(always)]
    fn zero() -> f64 {
        0.0
    }

    #[inline(always)]
    fn one() -> f64 {
        1.0
    }

    #[inline(always)]
    fn plus(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline(always)]
    fn times(a: f64, b: f64) -> f64 {
        a * b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }

    #[inline(always)]
    fn skip_scaled_column(xj: f64, stored: &[f64]) -> bool {
        xj == 0.0 && stored.iter().all(|v| v.is_finite())
    }
}

/// Tropical min-plus: `(f64 ∪ {+∞}, min, +, +∞, 0.0)` — shortest
/// paths. `A^k x` relaxes distances over paths of length ≤ k. A
/// stored `0.0` lifts to the inert `+∞` (see the [`Semiring::from_f64`]
/// contract): edge weights must be nonzero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = f64;
    const NAME: &'static str = "min_plus";
    const PLUS_SYMBOL: &'static str = "min";
    const TIMES_SYMBOL: &'static str = "+";

    #[inline(always)]
    fn zero() -> f64 {
        f64::INFINITY
    }

    #[inline(always)]
    fn one() -> f64 {
        0.0
    }

    #[inline(always)]
    fn plus(a: f64, b: f64) -> f64 {
        // Deterministic tie-break: keep the accumulator on ties (and
        // on NaN in either operand), so serial and chunked-parallel
        // evaluations agree bit-for-bit on well-formed inputs.
        if b < a {
            b
        } else {
            a
        }
    }

    #[inline(always)]
    fn times(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        if v == 0.0 {
            f64::INFINITY
        } else {
            v
        }
    }
}

/// Tropical max-plus: `(f64 ∪ {−∞}, max, +, −∞, 0.0)` — critical
/// paths / longest bottleneck-free schedules. As with [`MinPlus`], a
/// stored `0.0` lifts to the inert `−∞`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxPlus;

impl Semiring for MaxPlus {
    type Elem = f64;
    const NAME: &'static str = "max_plus";
    const PLUS_SYMBOL: &'static str = "max";
    const TIMES_SYMBOL: &'static str = "+";

    #[inline(always)]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline(always)]
    fn one() -> f64 {
        0.0
    }

    #[inline(always)]
    fn plus(a: f64, b: f64) -> f64 {
        if b > a {
            b
        } else {
            a
        }
    }

    #[inline(always)]
    fn times(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        if v == 0.0 {
            f64::NEG_INFINITY
        } else {
            v
        }
    }
}

/// Boolean algebra: `({0,1}, ∨, ∧, false, true)` — reachability and
/// BFS frontiers. `y = A ⊗ x` computes "has a neighbor in `x`".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Elem = bool;
    const NAME: &'static str = "bool_or_and";
    const PLUS_SYMBOL: &'static str = "|";
    const TIMES_SYMBOL: &'static str = "&";

    #[inline(always)]
    fn zero() -> bool {
        false
    }

    #[inline(always)]
    fn one() -> bool {
        true
    }

    #[inline(always)]
    fn plus(a: bool, b: bool) -> bool {
        a | b
    }

    #[inline(always)]
    fn times(a: bool, b: bool) -> bool {
        a & b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> bool {
        v != 0.0
    }
}

/// Counting: `(u64, +, ×, 0, 1)` — path/triangle counting. A stored
/// nonzero lifts to 1, a stored (explicit) zero to 0, so `A ⊗ A`
/// counts length-2 paths through the pattern of `A`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountU64;

impl Semiring for CountU64 {
    type Elem = u64;
    const NAME: &'static str = "count_u64";
    const PLUS_SYMBOL: &'static str = "+";
    const TIMES_SYMBOL: &'static str = "*";

    #[inline(always)]
    fn zero() -> u64 {
        0
    }

    #[inline(always)]
    fn one() -> u64 {
        1
    }

    #[inline(always)]
    fn plus(a: u64, b: u64) -> u64 {
        a + b
    }

    #[inline(always)]
    fn times(a: u64, b: u64) -> u64 {
        a * b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> u64 {
        u64::from(v != 0.0)
    }
}

/// First-nonzero-wins selection: `⊕` keeps the accumulator unless it
/// is still `0.0` — associative but **not** commutative (parent
/// selection in traversals, where "which parent" depends on visit
/// order). Exists chiefly to exercise the race checker's per-semiring
/// refusal: the parallel reduction tier must decline this algebra
/// (diagnostic BA06) because merging thread-local partials reorders
/// the `⊕` chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FirstNonZero;

impl Semiring for FirstNonZero {
    type Elem = f64;
    const NAME: &'static str = "first_nonzero";
    const PLUS_IS_COMMUTATIVE: bool = false;
    const PLUS_SYMBOL: &'static str = "first";
    const TIMES_SYMBOL: &'static str = "*";

    #[inline(always)]
    fn zero() -> f64 {
        0.0
    }

    #[inline(always)]
    fn one() -> f64 {
        1.0
    }

    #[inline(always)]
    fn plus(a: f64, b: f64) -> f64 {
        if a != 0.0 {
            a
        } else {
            b
        }
    }

    #[inline(always)]
    fn times(a: f64, b: f64) -> f64 {
        a * b
    }

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monoid_laws<S: Semiring>(samples: &[S::Elem]) {
        for &a in samples {
            // Identity laws.
            assert_eq!(S::plus(S::zero(), a), a, "{}: 0 ⊕ a", S::NAME);
            assert_eq!(S::plus(a, S::zero()), a, "{}: a ⊕ 0", S::NAME);
            assert_eq!(S::times(S::one(), a), a, "{}: 1 ⊗ a", S::NAME);
            assert_eq!(S::times(a, S::one()), a, "{}: a ⊗ 1", S::NAME);
            // Annihilation.
            assert_eq!(S::times(S::zero(), a), S::zero(), "{}: 0 ⊗ a", S::NAME);
            assert_eq!(S::times(a, S::zero()), S::zero(), "{}: a ⊗ 0", S::NAME);
            for &b in samples {
                if S::PLUS_IS_COMMUTATIVE {
                    assert_eq!(S::plus(a, b), S::plus(b, a), "{}: commutativity", S::NAME);
                }
                for &c in samples {
                    if S::PLUS_IS_ASSOCIATIVE {
                        assert_eq!(
                            S::plus(S::plus(a, b), c),
                            S::plus(a, S::plus(b, c)),
                            "{}: associativity",
                            S::NAME
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn min_plus_laws() {
        check_monoid_laws::<MinPlus>(&[0.0, 1.5, -3.0, 7.0, f64::INFINITY]);
    }

    #[test]
    fn max_plus_laws() {
        check_monoid_laws::<MaxPlus>(&[0.0, 1.5, -3.0, 7.0, f64::NEG_INFINITY]);
    }

    #[test]
    fn bool_laws() {
        check_monoid_laws::<BoolOrAnd>(&[false, true]);
    }

    #[test]
    fn count_laws() {
        check_monoid_laws::<CountU64>(&[0, 1, 2, 5]);
    }

    #[test]
    fn first_nonzero_associative_not_commutative() {
        check_monoid_laws::<FirstNonZero>(&[0.0, 2.0, -1.0, 5.0]);
        // Witness of non-commutativity.
        assert_eq!(FirstNonZero::plus(2.0, 5.0), 2.0);
        assert_eq!(FirstNonZero::plus(5.0, 2.0), 5.0);
        const { assert!(!FirstNonZero::PLUS_IS_COMMUTATIVE) };
        assert!(!FirstNonZero::props().plus_is_ac());
    }

    #[test]
    fn f64_plus_matches_scalar_arithmetic() {
        // Exact f64 semantics, including sign of zero and NaN
        // propagation through ⊗ — what bitwise identity rests on.
        assert_eq!(F64Plus::plus(1.5, 2.25), 3.75);
        assert_eq!(F64Plus::times(1.5, 2.0), 3.0);
        assert_eq!(F64Plus::from_f64(-0.0).to_bits(), (-0.0f64).to_bits());
        assert!(F64Plus::times(f64::NAN, 0.0).is_nan());
    }

    #[test]
    fn f64_skip_gate_is_nan_safe() {
        // Zero x over finite column: skippable.
        assert!(F64Plus::skip_scaled_column(0.0, &[1.0, -2.0]));
        // Zero x over a NaN/Inf column: 0·NaN = NaN must propagate.
        assert!(!F64Plus::skip_scaled_column(0.0, &[1.0, f64::NAN]));
        assert!(!F64Plus::skip_scaled_column(0.0, &[f64::INFINITY]));
        // Nonzero x: never skippable.
        assert!(!F64Plus::skip_scaled_column(1.0, &[1.0]));
        // Other semirings never skip (min-plus "zero" is +∞, and its
        // ⊗ has no annihilating stored value to exploit).
        assert!(!MinPlus::skip_scaled_column(MinPlus::zero(), &[1.0]));
    }

    #[test]
    fn props_round_trip() {
        let p = F64Plus::props();
        assert_eq!(p, AlgebraProps::f64_plus());
        assert!(p.plus_is_ac());
        assert_eq!(MinPlus::props().name, "min_plus");
        assert_eq!(MinPlus::props().plus_symbol, "min");
        assert_eq!(AlgebraProps::default(), AlgebraProps::f64_plus());
    }

    #[test]
    fn stored_zero_lifts_to_identity() {
        // The from_f64 contract keeping zero-materializing formats
        // (dense, ITPACK padding, diagonal) sound under every algebra.
        assert_eq!(F64Plus::from_f64(0.0), F64Plus::zero());
        assert_eq!(MinPlus::from_f64(0.0), MinPlus::zero());
        assert_eq!(MaxPlus::from_f64(0.0), MaxPlus::zero());
        assert_eq!(BoolOrAnd::from_f64(0.0), BoolOrAnd::zero());
        assert_eq!(CountU64::from_f64(0.0), CountU64::zero());
        assert_eq!(FirstNonZero::from_f64(0.0), FirstNonZero::zero());
    }

    #[test]
    fn bool_and_count_lifts() {
        assert!(BoolOrAnd::from_f64(2.5));
        assert!(!BoolOrAnd::from_f64(0.0));
        assert_eq!(CountU64::from_f64(3.0), 1);
        assert_eq!(CountU64::from_f64(0.0), 0);
    }
}
