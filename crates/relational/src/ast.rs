//! The dense DO-ANY loop-nest description — the compiler's input
//! language (§2 of the paper).
//!
//! The user writes the *dense* loop nest exactly as in the paper's
//! running example:
//!
//! ```text
//! DO i = 1, N
//!   DO j = 1, N
//!     Y(i) = Y(i) + A(i,j) * X(j)
//! ```
//!
//! plus a declaration per array saying whether it is stored sparsely.
//! Loop bounds are implicit in the array shapes (the iteration-space
//! relation `I(i,j)` is never stored); index expressions are loop
//! variables (the identity-affine fragment covering the paper's
//! kernels — permuted indexing is handled by permutation terms, see
//! [`LoopNest::with_row_permutation`]).

use crate::ids::{RelId, Var};
use crate::scalar::UpdateOp;

/// Declaration of one array in the nest.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    pub id: RelId,
    pub name: String,
    /// Number of subscripts (1 = vector, 2 = matrix).
    pub rank: usize,
    /// Whether the storage omits zeros (drives the sparsity predicate:
    /// dense arrays have `NZ ≡ true`).
    pub sparse: bool,
}

/// A subscripted array reference `A(i, j)` (identity-affine indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRef {
    pub array: RelId,
    pub indices: Vec<Var>,
}

impl AccessRef {
    pub fn vec(array: RelId, i: Var) -> Self {
        AccessRef { array, indices: vec![i] }
    }

    pub fn mat(array: RelId, i: Var, j: Var) -> Self {
        AccessRef { array, indices: vec![i, j] }
    }
}

/// Right-hand-side expression of the loop body.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprAst {
    Access(AccessRef),
    Const(f64),
    Add(Box<ExprAst>, Box<ExprAst>),
    Sub(Box<ExprAst>, Box<ExprAst>),
    Mul(Box<ExprAst>, Box<ExprAst>),
    Neg(Box<ExprAst>),
}

#[allow(clippy::should_implement_trait)] // fluent DSL builders, not arithmetic ops
impl ExprAst {
    pub fn access(r: AccessRef) -> Self {
        ExprAst::Access(r)
    }

    pub fn constant(c: f64) -> Self {
        ExprAst::Const(c)
    }

    pub fn add(self, rhs: ExprAst) -> Self {
        ExprAst::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: ExprAst) -> Self {
        ExprAst::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: ExprAst) -> Self {
        ExprAst::Mul(Box::new(self), Box::new(rhs))
    }

    pub fn neg(self) -> Self {
        ExprAst::Neg(Box::new(self))
    }

    /// All array references in the expression.
    pub fn accesses(&self) -> Vec<&AccessRef> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a AccessRef>) {
        match self {
            ExprAst::Access(a) => out.push(a),
            ExprAst::Const(_) => {}
            ExprAst::Add(a, b) | ExprAst::Sub(a, b) | ExprAst::Mul(a, b) => {
                a.collect(out);
                b.collect(out);
            }
            ExprAst::Neg(a) => a.collect(out),
        }
    }
}

/// A row-permutation annotation: array `array`'s first subscript is the
/// permuted index `stored = P(global)` (§2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PermDecl {
    pub id: RelId,
    /// The global-index variable.
    pub from: Var,
    /// The permuted (stored) index variable.
    pub to: Var,
}

/// The full DO-ANY loop nest.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNest {
    /// Loop variables, outermost first (advisory order — DO-ANY).
    pub vars: Vec<Var>,
    pub arrays: Vec<ArrayDecl>,
    /// Permutation relations joining pairs of index variables.
    pub perms: Vec<PermDecl>,
    pub target: AccessRef,
    pub op: UpdateOp,
    pub rhs: ExprAst,
}

impl LoopNest {
    pub fn new(
        vars: Vec<Var>,
        arrays: Vec<ArrayDecl>,
        target: AccessRef,
        op: UpdateOp,
        rhs: ExprAst,
    ) -> Self {
        LoopNest { vars, arrays, perms: Vec::new(), target, op, rhs }
    }

    /// Add a permutation relation (jagged-diagonal style row
    /// permutations, §2.2).
    pub fn with_row_permutation(mut self, perm: PermDecl) -> Self {
        self.perms.push(perm);
        self
    }

    pub fn array(&self, id: RelId) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.id == id)
    }
}

/// Canned loop nests for the paper's kernels.
pub mod programs {
    use super::*;
    use crate::ids::{MAT_A, MAT_B, MAT_C, PERM_P, VAR_I, VAR_J, VAR_K, VEC_X, VEC_Y};

    fn decl(id: RelId, name: &str, rank: usize, sparse: bool) -> ArrayDecl {
        ArrayDecl { id, name: name.into(), rank, sparse }
    }

    /// `Y(i) += A(i,j) · X(j)` — sparse `A`, dense `x`, dense `y`.
    pub fn matvec() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(VEC_X, "X", 1, false),
                decl(VEC_Y, "Y", 1, false),
            ],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J))),
        )
    }

    /// `Y(j) += A(i,j) · X(i)` — transposed product.
    pub fn matvec_transposed() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(VEC_X, "X", 1, false),
                decl(VEC_Y, "Y", 1, false),
            ],
            AccessRef::vec(VEC_Y, VAR_J),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_I))),
        )
    }

    /// `C(i,j) += A(i,k) · B(k,j)` — sparse × sparse, dense result.
    pub fn matmat() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_K, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(MAT_B, "B", 2, true),
                decl(MAT_C, "C", 2, false),
            ],
            AccessRef::mat(MAT_C, VAR_I, VAR_J),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_K))
                .mul(ExprAst::access(AccessRef::mat(MAT_B, VAR_K, VAR_J))),
        )
    }

    /// `Y(i,k) += A(i,j) · X(j,k)` — sparse matrix × skinny dense
    /// matrix, "the core operation in such solvers … or the product of
    /// a sparse matrix and a skinny dense matrix" (§6).
    pub fn matvec_multi() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_J, VAR_K],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(MAT_B, "X", 2, false), // the skinny dense multivector
                decl(MAT_C, "Y", 2, false),
            ],
            AccessRef::mat(MAT_C, VAR_I, VAR_K),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                .mul(ExprAst::access(AccessRef::mat(MAT_B, VAR_J, VAR_K))),
        )
    }

    /// `X(i) = B(i) − A(i,j) · X(j)` — the (scaled) triangular-solve /
    /// Gauss-Seidel sweep statement: the solution vector is **assigned**
    /// per row while the right-hand side reads it at other rows.
    ///
    /// This nest is the canonical *DO-ACROSS* program: the DO-ANY race
    /// checker must refuse it (BA01 — the assignment does not cover
    /// `j`; BA02 — the RHS reads the written array), and that refusal
    /// is exactly right under any-order execution. The wavefront pass
    /// (`bernoulli-analysis::wavefront`) recovers its parallelism
    /// per-operand instead, by proving the loop-carried dependences
    /// (`A(i,j) ≠ 0`, `j` before `i` in sweep order) form a DAG and
    /// scheduling its level sets.
    pub fn sptrsv() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(VEC_X, "X", 1, false),
                decl(VEC_Y, "B", 1, false),
            ],
            AccessRef::vec(VEC_X, VAR_I),
            UpdateOp::Assign,
            ExprAst::access(AccessRef::vec(VEC_Y, VAR_I)).sub(
                ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                    .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J))),
            ),
        )
    }

    /// `s += A(i,j) · B(i,j)` — Frobenius inner product.
    pub fn mat_dot() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(MAT_B, "B", 2, true),
                decl(MAT_C, "s", 0, false),
            ],
            AccessRef { array: MAT_C, indices: vec![] },
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
                .mul(ExprAst::access(AccessRef::mat(MAT_B, VAR_I, VAR_J))),
        )
    }

    /// `s += X(i) · Z(i)` — a one-variable reduction over two vectors
    /// (`Z` is declared under the id `VEC_Y`). With both vectors
    /// sparse, the sparsity predicate is two-sided and the planner
    /// merge-joins the sorted streams.
    pub fn vec_dot(x_sparse: bool, z_sparse: bool) -> LoopNest {
        LoopNest::new(
            vec![VAR_I],
            vec![
                decl(VEC_X, "X", 1, x_sparse),
                decl(VEC_Y, "Z", 1, z_sparse),
                decl(MAT_C, "s", 0, false),
            ],
            AccessRef { array: MAT_C, indices: vec![] },
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::vec(VEC_X, VAR_I))
                .mul(ExprAst::access(AccessRef::vec(VEC_Y, VAR_I))),
        )
    }

    /// `Y(i) += A(i', j) · X(j)` with stored rows permuted by
    /// `P(i → i')` — the §2.2 example.
    pub fn matvec_row_permuted() -> LoopNest {
        LoopNest::new(
            vec![VAR_I, VAR_K, VAR_J],
            vec![
                decl(MAT_A, "A", 2, true),
                decl(VEC_X, "X", 1, false),
                decl(VEC_Y, "Y", 1, false),
            ],
            AccessRef::vec(VEC_Y, VAR_I),
            UpdateOp::AddAssign,
            ExprAst::access(AccessRef::mat(MAT_A, VAR_K, VAR_J))
                .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J))),
        )
        .with_row_permutation(PermDecl { id: PERM_P, from: VAR_I, to: VAR_K })
    }
}

#[cfg(test)]
mod tests {
    use super::programs;
    use super::*;
    use crate::ids::{MAT_A, VAR_I, VAR_J, VEC_X};

    #[test]
    fn expr_accesses_collected() {
        let e = ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
            .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J)))
            .add(ExprAst::constant(1.0));
        assert_eq!(e.accesses().len(), 2);
    }

    #[test]
    fn canned_programs_shape() {
        let mv = programs::matvec();
        assert_eq!(mv.vars.len(), 2);
        assert_eq!(mv.arrays.len(), 3);
        assert!(mv.array(MAT_A).unwrap().sparse);
        assert!(!mv.array(VEC_X).unwrap().sparse);

        let mm = programs::matmat();
        assert_eq!(mm.vars.len(), 3);

        let perm = programs::matvec_row_permuted();
        assert_eq!(perm.perms.len(), 1);
    }
}
