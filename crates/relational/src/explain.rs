//! EXPLAIN: human-readable plan provenance.
//!
//! Renders a chosen [`Plan`] together with *why* each decision was made
//! in terms of the declared [`LevelProps`]:
//! the join order (loop nesting), the driver enumerated at each level
//! with its properties and expected cardinality, and each join's
//! implementation (merge vs. search) with the partner-level properties
//! that justified it. The text is recorded as plan provenance through
//! the planner's [`Obs`](bernoulli_obs::Obs) handle and golden-pinned by
//! `tests/observability.rs` — treat format changes as schema changes.

use crate::plan::{Driver, JoinMethod, Lookup, Plan, PlanNode, ProbeKind};
use crate::planner::{node_driver_card, var_extents, QueryMeta};
use crate::props::{LevelProps, SearchCost};
use crate::query::Query;
use crate::scalar::{Target, UpdateOp};
use std::fmt::Write as _;

/// One-line rendering of the per-tuple statement, used as the `op`
/// field of plan provenance events (e.g. `Y(i) += (val(A) * val(X))`).
pub fn describe_stmt(query: &Query) -> String {
    let target = match query.stmt.target {
        Target::VecElem { rel, var } => format!("{rel}({var})"),
        Target::MatElem { rel, row, col } => format!("{rel}({row},{col})"),
        Target::Scalar { rel } => format!("{rel}"),
    };
    let op = match query.stmt.op {
        UpdateOp::Assign => "=",
        UpdateOp::AddAssign => "+=",
    };
    format!("{target} {op} {}", query.stmt.rhs)
}

fn search_desc(c: SearchCost) -> &'static str {
    match c {
        SearchCost::Constant => "O(1) direct index",
        SearchCost::Logarithmic => "O(log n) binary search",
        SearchCost::Linear => "O(n) linear scan",
        SearchCost::Unsupported => "search unsupported",
    }
}

/// Render an expected cardinality without trailing `.0` noise.
fn card(x: f64) -> String {
    if x.is_finite() && (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.1}")
    }
}

/// Properties of the level a lookup probes (the "partner" of the join).
fn partner_props(lk: &Lookup, meta: &QueryMeta) -> Option<LevelProps> {
    match lk.kind {
        ProbeKind::VecAt(_) => meta.vec_meta(lk.rel).map(|m| m.props),
        ProbeKind::MatOuterAt(_) => meta.mat_meta(lk.rel).map(|m| m.outer),
        ProbeKind::MatInnerAt(_) | ProbeKind::MatPairAt { .. } => {
            meta.mat_meta(lk.rel).map(|m| m.inner)
        }
        ProbeKind::MatFlatPairAt { .. } => meta.mat_meta(lk.rel).map(|m| m.flat),
    }
}

fn lookup_line(lk: &Lookup, meta: &QueryMeta) -> String {
    let what = match lk.kind {
        ProbeKind::VecAt(v) => format!("{}({v})", lk.rel),
        ProbeKind::MatOuterAt(v) => format!("outer({}) at {v}", lk.rel),
        ProbeKind::MatInnerAt(v) => format!("inner({}) at {v}", lk.rel),
        ProbeKind::MatPairAt { outer_var, inner_var } => {
            format!("{}({outer_var},{inner_var}) outer+inner", lk.rel)
        }
        ProbeKind::MatFlatPairAt { row_var, col_var } => {
            format!("{}({row_var},{col_var}) flat", lk.rel)
        }
    };
    let props = partner_props(lk, meta);
    let props_s =
        props.map_or_else(|| "unknown".to_string(), |p| p.to_string());
    let (verb, how) = match lk.method {
        JoinMethod::Merge => (
            "merge",
            format!("merge join: driver and partner both enumerate sorted ({props_s})"),
        ),
        JoinMethod::Search => (
            "probe",
            format!(
                "search join: partner {props_s}, {}",
                search_desc(props.map_or(SearchCost::Unsupported, |p| p.search))
            ),
        ),
    };
    let role = if lk.in_predicate {
        "predicate filter (miss skips tuple)"
    } else {
        "value supply (miss contributes 0)"
    };
    format!("{verb} {what} -- {how}; {role}")
}

fn node_header(
    node: &PlanNode,
    meta: &QueryMeta,
    extents: &std::collections::HashMap<crate::ids::Var, usize>,
) -> String {
    match node {
        PlanNode::Loop(l) => {
            let (drv, props) = match l.driver {
                Driver::Range => ("range".to_string(), Some(LevelProps::dense())),
                Driver::Vector(r) => {
                    (format!("vec({r})"), meta.vec_meta(r).map(|m| m.props))
                }
                Driver::MatOuter(r) => {
                    (format!("outer({r})"), meta.mat_meta(r).map(|m| m.outer))
                }
                Driver::MatInner(r) => {
                    (format!("inner({r})"), meta.mat_meta(r).map(|m| m.inner))
                }
            };
            let props_s =
                props.map_or_else(|| "unknown".to_string(), |p| p.to_string());
            let c = node_driver_card(node, meta, extents);
            format!(
                "for {} in {drv} -- level {props_s}, ~{} candidates/start",
                l.var,
                card(c)
            )
        }
        PlanNode::Flat(f) => {
            let props_s = meta
                .mat_meta(f.rel)
                .map_or_else(|| "unknown".to_string(), |m| m.flat.to_string());
            format!(
                "for ({},{}) in flat({}) -- level {props_s}, ~{} stored tuples",
                f.row_var,
                f.col_var,
                f.rel,
                card(node_driver_card(node, meta, extents))
            )
        }
    }
}

/// Full EXPLAIN text for a plan: header (shape + cost), statement,
/// sparsity predicate, then one line per loop level and per join with
/// the level properties that justified the implementation choice.
pub fn explain_plan(plan: &Plan, query: &Query, meta: &QueryMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "plan {} (est cost {:.1})", plan.shape(), plan.est_cost);
    let _ = writeln!(out, "stmt: {}", describe_stmt(query));
    let pred = if query.predicate.is_empty() {
        "true (dense iteration)".to_string()
    } else {
        query
            .predicate
            .iter()
            .map(|r| format!("NZ({r})"))
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let _ = writeln!(out, "predicate: {pred}");
    let extents = var_extents(query, meta).unwrap_or_default();
    for (depth, node) in plan.nodes.iter().enumerate() {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}", node_header(node, meta, &extents));
        let (derived, lookups) = match node {
            PlanNode::Loop(l) => (&l.derived, &l.lookups),
            PlanNode::Flat(f) => (&f.derived, &f.lookups),
        };
        for d in derived {
            let _ = writeln!(
                out,
                "{pad}  bind {} = {}{}({}) -- O(1) permutation derivation",
                d.to,
                d.perm,
                if d.forward { "" } else { "^-1" },
                d.from
            );
        }
        for lk in lookups {
            let _ = writeln!(out, "{pad}  {}", lookup_line(lk, meta));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{MatMeta, Orientation, VecMeta};
    use crate::ids::{MAT_A, PERM_P, VEC_X};
    use crate::planner::Planner;
    use crate::query::QueryBuilder;

    fn csr_meta(n: usize, nnz: usize) -> MatMeta {
        MatMeta {
            nrows: n,
            ncols: n,
            nnz,
            orientation: Orientation::RowMajor,
            outer: LevelProps::dense(),
            inner: LevelProps::sparse_sorted(),
            flat: LevelProps::sparse_sorted(),
            pair_search_cheap: true,
        }
    }

    #[test]
    fn describe_stmt_matvec() {
        let q = QueryBuilder::mat_vec_product().build();
        assert_eq!(describe_stmt(&q), "Y(i) += (val(A) * val(X))");
    }

    #[test]
    fn csr_matvec_explain_names_levels_and_joins() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(100, 500))
            .vec(VEC_X, VecMeta::dense(100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        let text = explain_plan(&plan, &q, &meta);
        assert!(text.starts_with("plan i:outer(A)>j:inner(A)[X?] (est cost "), "{text}");
        assert!(text.contains("stmt: Y(i) += (val(A) * val(X))"), "{text}");
        assert!(text.contains("predicate: NZ(A)"), "{text}");
        assert!(
            text.contains("for i in outer(A) -- level sorted/Constant/dense, ~100 candidates/start"),
            "{text}"
        );
        assert!(
            text.contains("  for j in inner(A) -- level sorted/Logarithmic/sparse, ~5 candidates/start"),
            "{text}"
        );
        assert!(
            text.contains(
                "    probe X(j) -- search join: partner sorted/Constant/dense, O(1) direct index; value supply (miss contributes 0)"
            ),
            "{text}"
        );
    }

    #[test]
    fn merge_join_justified_by_sortedness() {
        let mut q = QueryBuilder::mat_vec_product().build();
        q.infer_predicate(&|r| r == MAT_A || r == VEC_X);
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(1_000, 200_000))
            .vec(VEC_X, VecMeta::sparse_sorted(1_000, 100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        assert!(plan.shape().contains("[X~]"), "{}", plan.shape());
        let text = explain_plan(&plan, &q, &meta);
        assert!(text.contains("merge X(j) -- merge join: driver and partner both enumerate sorted"), "{text}");
        assert!(text.contains("predicate filter (miss skips tuple)"), "{text}");
        assert!(text.contains("predicate: NZ(A) AND NZ(X)"), "{text}");
    }

    #[test]
    fn permuted_plan_explains_derivation() {
        let q = QueryBuilder::permuted_mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(100, 600))
            .vec(VEC_X, VecMeta::dense(100))
            .perm(PERM_P, 100);
        let plan = Planner::new().plan(&q, &meta).unwrap();
        let text = explain_plan(&plan, &q, &meta);
        assert!(
            text.contains("O(1) permutation derivation"),
            "expected a derivation line: {text}"
        );
    }

    #[test]
    fn flat_plan_explained() {
        let coo = MatMeta {
            orientation: Orientation::Flat,
            outer: LevelProps::enumerate_only(),
            inner: LevelProps::enumerate_only(),
            flat: LevelProps::sparse_unsorted(),
            pair_search_cheap: false,
            ..csr_meta(100, 500)
        };
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, coo).vec(VEC_X, VecMeta::dense(100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        let text = explain_plan(&plan, &q, &meta);
        assert!(
            text.contains("for (i,j) in flat(A) -- level unsorted/Linear/sparse, ~500 stored tuples"),
            "{text}"
        );
    }
}
