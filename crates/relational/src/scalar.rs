//! Scalar expressions and update statements evaluated per query tuple.
//!
//! A DO-ANY loop body like `Y(i) = Y(i) + A(i,j) * X(j)` becomes, after
//! query extraction, an [`Stmt`] executed once per tuple of the query
//! result: target `Y` indexed by variable `i`, update operator `+=`, and
//! right-hand side `Value(A) * Value(X)` — where `Value(r)` denotes the
//! value field of relation `r` in the current tuple.

use crate::error::{RelError, RelResult};
use crate::ids::{RelId, Var};
use std::fmt;

/// A scalar expression over the value fields of the current tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// The value field of a relation in the current tuple (e.g. `a` in
    /// `A(i, j, a)`). Relations absent from a tuple (possible only for
    /// non-predicate relations) contribute 0.0.
    Value(RelId),
    /// A literal constant.
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // fluent DSL builders, not arithmetic ops
impl Expr {
    pub fn value(r: RelId) -> Expr {
        Expr::Value(r)
    }

    pub fn constant(c: f64) -> Expr {
        Expr::Const(c)
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Evaluate against a tuple environment: `lookup(r)` yields the
    /// value field of relation `r` in the current tuple.
    #[inline]
    pub fn eval(&self, lookup: &dyn Fn(RelId) -> f64) -> f64 {
        match self {
            Expr::Value(r) => lookup(*r),
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(lookup) + b.eval(lookup),
            Expr::Sub(a, b) => a.eval(lookup) - b.eval(lookup),
            Expr::Mul(a, b) => a.eval(lookup) * b.eval(lookup),
            Expr::Neg(a) => -a.eval(lookup),
        }
    }

    /// All relations whose value field the expression reads.
    pub fn reads(&self) -> Vec<RelId> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_reads(&self, out: &mut Vec<RelId>) {
        match self {
            Expr::Value(r) => out.push(*r),
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Neg(a) => a.collect_reads(out),
        }
    }

    /// True when the expression is a product (possibly scaled) so that a
    /// zero in any multiplicand annihilates it — the property underlying
    /// Bik–Wijshoff sparsity-predicate inference.
    pub fn is_multiplicative_in(&self, r: RelId) -> bool {
        match self {
            Expr::Value(v) => *v == r,
            Expr::Const(_) => false,
            Expr::Mul(a, b) => a.is_multiplicative_in(r) || b.is_multiplicative_in(r),
            Expr::Neg(a) => a.is_multiplicative_in(r),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.is_multiplicative_in(r) && b.is_multiplicative_in(r)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Value(r) => write!(f, "val({r})"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// What the statement writes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// A vector element `R(var)`.
    VecElem { rel: RelId, var: Var },
    /// A dense matrix element `R(row_var, col_var)`.
    MatElem { rel: RelId, row: Var, col: Var },
    /// A scalar accumulator (dot products, norms).
    Scalar { rel: RelId },
}

impl Target {
    pub fn rel(&self) -> RelId {
        match self {
            Target::VecElem { rel, .. } | Target::MatElem { rel, .. } | Target::Scalar { rel } => {
                *rel
            }
        }
    }

    /// Variables the target is indexed by.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Target::VecElem { var, .. } => vec![*var],
            Target::MatElem { row, col, .. } => vec![*row, *col],
            Target::Scalar { .. } => vec![],
        }
    }
}

/// The update operator applied at the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// `target = rhs` — requires each target element be produced by at
    /// most one tuple (checked by the caller, DO-ALL semantics).
    Assign,
    /// `target += rhs` — a reduction; tuples may arrive in any order
    /// (DO-ANY semantics, the class of loops the paper compiles).
    AddAssign,
}

impl UpdateOp {
    /// Whether the update commutes across iterations — the property
    /// that makes a non-covering write safe as a parallel reduction.
    pub fn is_commutative(self) -> bool {
        matches!(self, UpdateOp::AddAssign)
    }
}

/// The loop-body statement executed per query tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    pub target: Target,
    pub op: UpdateOp,
    pub rhs: Expr,
}

impl Stmt {
    pub fn new(target: Target, op: UpdateOp, rhs: Expr) -> Self {
        Stmt { target, op, rhs }
    }

    /// Sanity-check: the target relation must not also be read unless
    /// the op is a reduction (reading the old value of an `Assign`
    /// target under an arbitrary tuple order would be nondeterministic).
    pub fn validate(&self) -> RelResult<()> {
        if self.op == UpdateOp::Assign && self.rhs.reads().contains(&self.target.rel()) {
            return Err(RelError::MalformedQuery(format!(
                "assign statement reads its own target {}",
                self.target.rel()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MAT_A, VAR_I, VAR_J, VEC_X, VEC_Y};

    fn lookup2(a: f64, x: f64) -> impl Fn(RelId) -> f64 {
        move |r| match r {
            MAT_A => a,
            VEC_X => x,
            _ => 0.0,
        }
    }

    #[test]
    fn eval_product() {
        let e = Expr::value(MAT_A).mul(Expr::value(VEC_X));
        assert_eq!(e.eval(&lookup2(3.0, 4.0)), 12.0);
    }

    #[test]
    fn eval_affine() {
        let e = Expr::constant(2.0)
            .mul(Expr::value(MAT_A))
            .add(Expr::value(VEC_X).neg())
            .sub(Expr::constant(1.0));
        // 2*3 - 4 - 1 = 1
        assert_eq!(e.eval(&lookup2(3.0, 4.0)), 1.0);
    }

    #[test]
    fn reads_deduplicated_sorted() {
        let e = Expr::value(VEC_X).mul(Expr::value(MAT_A)).add(Expr::value(MAT_A));
        assert_eq!(e.reads(), vec![MAT_A, VEC_X]);
    }

    #[test]
    fn multiplicative_detection() {
        // A * X is multiplicative in both A and X.
        let e = Expr::value(MAT_A).mul(Expr::value(VEC_X));
        assert!(e.is_multiplicative_in(MAT_A));
        assert!(e.is_multiplicative_in(VEC_X));
        // A + X is multiplicative in neither.
        let e = Expr::value(MAT_A).add(Expr::value(VEC_X));
        assert!(!e.is_multiplicative_in(MAT_A));
        assert!(!e.is_multiplicative_in(VEC_X));
        // 2*A is multiplicative in A.
        let e = Expr::constant(2.0).mul(Expr::value(MAT_A));
        assert!(e.is_multiplicative_in(MAT_A));
        // A*X + A is multiplicative in A but not X.
        let e = Expr::value(MAT_A)
            .mul(Expr::value(VEC_X))
            .add(Expr::value(MAT_A));
        assert!(e.is_multiplicative_in(MAT_A));
        assert!(!e.is_multiplicative_in(VEC_X));
    }

    #[test]
    fn target_vars() {
        assert_eq!(Target::VecElem { rel: VEC_Y, var: VAR_I }.vars(), vec![VAR_I]);
        assert_eq!(
            Target::MatElem { rel: MAT_A, row: VAR_I, col: VAR_J }.vars(),
            vec![VAR_I, VAR_J]
        );
        assert!(Target::Scalar { rel: VEC_Y }.vars().is_empty());
    }

    #[test]
    fn assign_reading_target_rejected() {
        let s = Stmt::new(
            Target::VecElem { rel: VEC_Y, var: VAR_I },
            UpdateOp::Assign,
            Expr::value(VEC_Y).add(Expr::constant(1.0)),
        );
        assert!(s.validate().is_err());
        let s = Stmt::new(
            Target::VecElem { rel: VEC_Y, var: VAR_I },
            UpdateOp::AddAssign,
            Expr::value(MAT_A),
        );
        assert!(s.validate().is_ok());
    }

    #[test]
    fn display_expr() {
        let e = Expr::value(MAT_A).mul(Expr::value(VEC_X));
        assert_eq!(format!("{e}"), "(val(A) * val(X))");
    }
}
