//! # bernoulli-relational
//!
//! The relational-algebra engine at the heart of the Bernoulli sparse
//! compiler (Kotlyar, Pingali, Stodghill, SC'97).
//!
//! The paper's central idea: arrays — sparse and dense — are *relations*
//! of `⟨index..., value⟩` tuples, and executing a DO-ANY loop nest over
//! them is evaluating a relational *query*: a join of the iteration-space
//! relation with the array relations, filtered by a *sparsity predicate*.
//!
//! This crate supplies the pieces that are independent of any particular
//! storage format:
//!
//! * [`access`] — the *access method* traits through which storage
//!   formats describe themselves: hierarchical enumeration and search
//!   with declared [`props::LevelProps`] (sortedness, search cost class,
//!   density). The planner consults only these properties, never the
//!   concrete layout — this is what makes the compiler extensible.
//! * [`query`] — the logical query IR extracted from a loop nest:
//!   terms (iteration space, matrices, vectors, permutations), the
//!   sparsity predicate, and the scalar statement to evaluate per tuple.
//! * [`planner`] — cost-based selection of a join *order* (which loop
//!   variable is enumerated at which level, by which relation) and a
//!   join *implementation* per variable (merge-join, search-join, or
//!   enumerate-and-filter).
//! * [`exec`] — the plan interpreter: evaluates a physical plan against
//!   bound relations. Format-specialised (monomorphised) kernels live in
//!   downstream crates and are selected by plan *shape*; the interpreter
//!   here is the always-available general path.
//! * [`permutation`] — index-translation relations (`PERM`/`IPERM`),
//!   used both for jagged-diagonal style formats and as the local
//!   building block of distributed index translation.
//!
//! ## Example
//!
//! ```
//! use bernoulli_relational::prelude::*;
//!
//! // y(i) += A(i,j) * x(j) over a tiny CSR-like matrix baked by hand.
//! let a = DokMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 2, 3.0), (2, 1, 4.0)]);
//! let x = vec![1.0, 10.0, 100.0];
//! let mut y = vec![0.0; 3];
//!
//! let query = QueryBuilder::mat_vec_product().build();
//! let meta = QueryMeta::new()
//!     .mat(MAT_A, a.meta())
//!     .vec(VEC_X, VecMeta::dense(3))
//!     .vec(VEC_Y, VecMeta::dense(3));
//! let plan = Planner::new().plan(&query, &meta).unwrap();
//!
//! let mut binds = Bindings::new();
//! binds.bind_mat(MAT_A, &a);
//! binds.bind_vec(VEC_X, &x);
//! binds.bind_vec_mut(VEC_Y, &mut y);
//! execute(&plan, &query, &mut binds).unwrap();
//! assert_eq!(y, vec![2.0, 300.0, 40.0]);
//! ```

pub mod access;
pub mod ast;
pub mod error;
pub mod exec;
pub mod explain;
pub mod ids;
pub mod permutation;
pub mod plan;
pub mod planner;
pub mod props;
pub mod query;
pub mod scalar;
pub mod semiring;
pub mod testmat;

pub mod prelude {
    //! Convenient glob import for downstream crates.
    pub use crate::access::{InnerIter, MatMeta, MatrixAccess, Orientation, OuterCursor, VecMeta, VectorAccess};
    pub use crate::error::{RelError, RelResult};
    pub use crate::exec::{execute, execute_with_stats, Bindings, ExecStats};
    pub use crate::explain::{describe_stmt, explain_plan};
    pub use crate::ids::{RelId, Var, MAT_A, MAT_B, MAT_C, VAR_I, VAR_J, VAR_K, VEC_X, VEC_Y};
    pub use crate::permutation::Permutation;
    pub use crate::plan::{Driver, JoinMethod, LoopNode, Plan, PlanNode};
    pub use crate::planner::{Planner, QueryMeta};
    pub use crate::props::{Density, LevelProps, SearchCost, Sortedness};
    pub use crate::query::{Query, QueryBuilder, Term};
    pub use crate::scalar::{Expr, Stmt, Target, UpdateOp};
    pub use crate::semiring::{
        AlgebraProps, BoolOrAnd, CountU64, F64Plus, FirstNonZero, MaxPlus, MinPlus, Semiring,
    };
    pub use crate::testmat::DokMatrix;
}
