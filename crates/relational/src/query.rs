//! The logical query IR extracted from a DO-ANY loop nest.
//!
//! Following §2 of the paper, a loop nest such as
//!
//! ```text
//! DO i = 1, N
//!   DO j = 1, N
//!     Y(i) = Y(i) + A(i,j) * X(j)
//! ```
//!
//! with sparse `A` and `X` becomes the query
//!
//! ```text
//! Q_sparse = σ_P ( I(i,j) ⋈ A(i,j,a) ⋈ X(j,x) ⋈ Y(i,y) )
//! P       = NZ(A(i,j)) ∧ NZ(X(j))
//! ```
//!
//! A [`Query`] holds the loop variables, the joined relation terms, the
//! sparsity predicate (the set of relations under `NZ(·)`), and the
//! loop-body [`Stmt`] evaluated per result tuple. The iteration-space
//! relation `I` is implicit: its bounds come from relation shapes at
//! binding time.

use crate::error::{RelError, RelResult};
use crate::ids::{RelId, Var, MAT_A, MAT_B, MAT_C, PERM_P, VAR_I, VAR_J, VAR_K, VEC_X, VEC_Y};
use crate::scalar::{Expr, Stmt, Target, UpdateOp};

/// One relation joined into the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    /// A matrix relation `R(row, col, value)`.
    Mat { rel: RelId, row: Var, col: Var },
    /// A vector relation `R(idx, value)`.
    Vec { rel: RelId, idx: Var },
    /// A permutation relation `R(from, to)`: a bijection between index
    /// spaces (§2.2). Binding either variable determines the other.
    Perm { rel: RelId, from: Var, to: Var },
}

impl Term {
    pub fn rel(&self) -> RelId {
        match self {
            Term::Mat { rel, .. } | Term::Vec { rel, .. } | Term::Perm { rel, .. } => *rel,
        }
    }

    /// Variables this term constrains.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Term::Mat { row, col, .. } => vec![*row, *col],
            Term::Vec { idx, .. } => vec![*idx],
            Term::Perm { from, to, .. } => vec![*from, *to],
        }
    }
}

/// A relational query plus the per-tuple statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Loop variables in source order (the order is advisory; the
    /// planner is free to reorder — DO-ANY semantics).
    pub vars: Vec<Var>,
    /// Relations joined together.
    pub terms: Vec<Term>,
    /// The sparsity predicate `P = ⋀ NZ(rel)`: only tuples where every
    /// listed relation holds a stored entry are enumerated.
    pub predicate: Vec<RelId>,
    /// The loop body.
    pub stmt: Stmt,
}

impl Query {
    /// Every relation mentioned anywhere in the query.
    pub fn rels(&self) -> Vec<RelId> {
        let mut out: Vec<RelId> = self.terms.iter().map(|t| t.rel()).collect();
        out.push(self.stmt.target.rel());
        out.sort();
        out.dedup();
        out
    }

    /// The term (if any) for a given relation.
    pub fn term(&self, rel: RelId) -> Option<&Term> {
        self.terms.iter().find(|t| t.rel() == rel)
    }

    /// Structural validation.
    pub fn validate(&self) -> RelResult<()> {
        if self.vars.is_empty() {
            return Err(RelError::MalformedQuery("no loop variables".into()));
        }
        let mut seen = self.vars.clone();
        seen.sort();
        seen.dedup();
        if seen.len() != self.vars.len() {
            return Err(RelError::MalformedQuery("duplicate loop variable".into()));
        }
        let known = |v: &Var| self.vars.contains(v);
        for t in &self.terms {
            for v in t.vars() {
                if !known(&v) {
                    return Err(RelError::MalformedQuery(format!(
                        "term over {} uses undeclared variable {v}",
                        t.rel()
                    )));
                }
            }
        }
        let mut rel_ids: Vec<RelId> = self.terms.iter().map(|t| t.rel()).collect();
        rel_ids.sort();
        let dup = rel_ids.windows(2).any(|w| w[0] == w[1]);
        if dup {
            return Err(RelError::MalformedQuery("relation joined twice".into()));
        }
        for p in &self.predicate {
            if self.term(*p).is_none() {
                return Err(RelError::MalformedQuery(format!(
                    "predicate relation {p} not joined"
                )));
            }
        }
        for v in self.stmt.target.vars() {
            if !known(&v) {
                return Err(RelError::UnboundVar(v));
            }
        }
        for r in self.stmt.rhs.reads() {
            if self.term(r).is_none() {
                return Err(RelError::MalformedQuery(format!(
                    "statement reads unjoined relation {r}"
                )));
            }
        }
        self.stmt.validate()?;
        Ok(())
    }

    /// Sparsity predicate inference following Bik & Wijshoff: a sparse
    /// relation read by the statement belongs in the predicate exactly
    /// when the RHS is annihilated by a zero of that relation *and* the
    /// update is a reduction (skipping the iteration is a no-op).
    ///
    /// `is_sparse(rel)` reports whether the relation's storage omits
    /// zeros (dense relations never enter the predicate — their `NZ` is
    /// identically true, as the paper notes for dense `Y`).
    pub fn infer_predicate(&mut self, is_sparse: &dyn Fn(RelId) -> bool) {
        let mut pred = Vec::new();
        if self.stmt.op == UpdateOp::AddAssign {
            for t in &self.terms {
                let r = t.rel();
                if matches!(t, Term::Perm { .. }) {
                    continue;
                }
                if is_sparse(r) && self.stmt.rhs.is_multiplicative_in(r) {
                    pred.push(r);
                }
            }
        } else {
            // For plain assignment, only relations that gate the whole
            // RHS *and* whose zero makes the assignment write the value
            // already present may be skipped. We conservatively keep the
            // predicate empty; DO-ALL assignments enumerate densely.
        }
        self.predicate = pred;
    }
}

/// Fluent constructor for the query shapes the paper's kernels use.
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// `Y(i) += A(i,j) * X(j)` — sparse matrix-vector product, the core
    /// of the paper's experiments.
    pub fn mat_vec_product() -> Self {
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_J],
                terms: vec![
                    Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_J },
                    Term::Vec { rel: VEC_X, idx: VAR_J },
                ],
                predicate: vec![MAT_A],
                stmt: Stmt::new(
                    Target::VecElem { rel: VEC_Y, var: VAR_I },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(VEC_X)),
                ),
            },
        }
    }

    /// `Y(j) += A(i,j) * X(i)` — transposed matrix-vector product.
    pub fn mat_transposed_vec_product() -> Self {
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_J],
                terms: vec![
                    Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_J },
                    Term::Vec { rel: VEC_X, idx: VAR_I },
                ],
                predicate: vec![MAT_A],
                stmt: Stmt::new(
                    Target::VecElem { rel: VEC_Y, var: VAR_J },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(VEC_X)),
                ),
            },
        }
    }

    /// `C(i,j) += A(i,k) * B(k,j)` — matrix-matrix product with a dense
    /// result (the paper's "6² = 36 versions" example; here one query
    /// covers every input-format pairing).
    pub fn mat_mat_product() -> Self {
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_K, VAR_J],
                terms: vec![
                    Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_K },
                    Term::Mat { rel: MAT_B, row: VAR_K, col: VAR_J },
                ],
                predicate: vec![MAT_A, MAT_B],
                stmt: Stmt::new(
                    Target::MatElem { rel: MAT_C, row: VAR_I, col: VAR_J },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(MAT_B)),
                ),
            },
        }
    }

    /// `s += A(i,j) * B(i,j)` — Frobenius inner product of two sparse
    /// matrices (a two-sided sparsity predicate exercising merge joins).
    pub fn mat_dot() -> Self {
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_J],
                terms: vec![
                    Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_J },
                    Term::Mat { rel: MAT_B, row: VAR_I, col: VAR_J },
                ],
                predicate: vec![MAT_A, MAT_B],
                stmt: Stmt::new(
                    Target::Scalar { rel: VEC_Y },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(MAT_B)),
                ),
            },
        }
    }

    /// `s += X(j) * A(i,j) * X(i)` would need two aliases of `X`; the
    /// supported quadratic-form shape uses distinct vectors:
    /// `s += X(j) * A(i,j) * Z(i)` with `Z` bound to `VEC_Y`.
    pub fn bilinear_form() -> Self {
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_J],
                terms: vec![
                    Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_J },
                    Term::Vec { rel: VEC_X, idx: VAR_J },
                    Term::Vec { rel: VEC_Y, idx: VAR_I },
                ],
                predicate: vec![MAT_A],
                stmt: Stmt::new(
                    Target::Scalar { rel: MAT_C },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(VEC_X)).mul(Expr::value(VEC_Y)),
                ),
            },
        }
    }

    /// `Y(i') += A(i',j) * X(j)` with rows of `A` permuted by
    /// `P(i, i')` (§2.2): the matrix stores permuted row indices and the
    /// permutation joins them back to global indices.
    pub fn permuted_mat_vec_product() -> Self {
        // A is indexed by the *permuted* row variable i' (VAR_K reused
        // as the permuted-index variable), P relates i ↔ i', and Y is
        // indexed by the global i.
        QueryBuilder {
            query: Query {
                vars: vec![VAR_I, VAR_K, VAR_J],
                terms: vec![
                    Term::Perm { rel: PERM_P, from: VAR_I, to: VAR_K },
                    Term::Mat { rel: MAT_A, row: VAR_K, col: VAR_J },
                    Term::Vec { rel: VEC_X, idx: VAR_J },
                ],
                predicate: vec![MAT_A],
                stmt: Stmt::new(
                    Target::VecElem { rel: VEC_Y, var: VAR_I },
                    UpdateOp::AddAssign,
                    Expr::value(MAT_A).mul(Expr::value(VEC_X)),
                ),
            },
        }
    }

    /// Replace the per-tuple statement (e.g. to scale: `Y(i) += c·A·X`).
    pub fn with_stmt(mut self, stmt: Stmt) -> Self {
        self.query.stmt = stmt;
        self
    }

    /// Override the sparsity predicate.
    pub fn with_predicate(mut self, predicate: Vec<RelId>) -> Self {
        self.query.predicate = predicate;
        self
    }

    /// Finish, validating the query.
    pub fn build(self) -> Query {
        self.query
            .validate()
            .unwrap_or_else(|e| panic!("QueryBuilder produced invalid query: {e}"));
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_queries_validate() {
        QueryBuilder::mat_vec_product().build();
        QueryBuilder::mat_transposed_vec_product().build();
        QueryBuilder::mat_mat_product().build();
        QueryBuilder::mat_dot().build();
        QueryBuilder::bilinear_form().build();
        QueryBuilder::permuted_mat_vec_product().build();
    }

    #[test]
    fn rels_include_target() {
        let q = QueryBuilder::mat_vec_product().build();
        let rels = q.rels();
        assert!(rels.contains(&MAT_A));
        assert!(rels.contains(&VEC_X));
        assert!(rels.contains(&VEC_Y));
    }

    #[test]
    fn undeclared_variable_rejected() {
        let mut q = QueryBuilder::mat_vec_product().build();
        q.vars = vec![VAR_I]; // j now undeclared
        assert!(matches!(q.validate(), Err(RelError::MalformedQuery(_))));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut q = QueryBuilder::mat_vec_product().build();
        q.terms.push(Term::Vec { rel: VEC_X, idx: VAR_I });
        assert!(q.validate().is_err());
    }

    #[test]
    fn predicate_must_be_joined() {
        let mut q = QueryBuilder::mat_vec_product().build();
        q.predicate.push(MAT_B);
        assert!(q.validate().is_err());
    }

    #[test]
    fn infer_predicate_matvec_sparse_a_sparse_x() {
        // Matches the paper's running example: P = NZ(A) ∧ NZ(X).
        let mut q = QueryBuilder::mat_vec_product().build();
        q.infer_predicate(&|r| r == MAT_A || r == VEC_X);
        assert_eq!(q.predicate, vec![MAT_A, VEC_X]);
    }

    #[test]
    fn infer_predicate_dense_x_excluded() {
        // Dense X: NZ(X) ≡ true, so P = NZ(A) alone.
        let mut q = QueryBuilder::mat_vec_product().build();
        q.infer_predicate(&|r| r == MAT_A);
        assert_eq!(q.predicate, vec![MAT_A]);
    }

    #[test]
    fn infer_predicate_additive_term_blocks() {
        // Y(i) += A(i,j)*X(j) + X(j): zero of A no longer annihilates.
        let mut q = QueryBuilder::mat_vec_product()
            .with_stmt(Stmt::new(
                Target::VecElem { rel: VEC_Y, var: VAR_I },
                UpdateOp::AddAssign,
                Expr::value(MAT_A).mul(Expr::value(VEC_X)).add(Expr::value(VEC_X)),
            ))
            .with_predicate(vec![])
            .build();
        q.infer_predicate(&|r| r == MAT_A || r == VEC_X);
        assert_eq!(q.predicate, vec![VEC_X]); // X still annihilates both terms
    }

    #[test]
    fn term_vars() {
        assert_eq!(
            Term::Mat { rel: MAT_A, row: VAR_I, col: VAR_J }.vars(),
            vec![VAR_I, VAR_J]
        );
        assert_eq!(Term::Vec { rel: VEC_X, idx: VAR_J }.vars(), vec![VAR_J]);
        assert_eq!(
            Term::Perm { rel: PERM_P, from: VAR_I, to: VAR_K }.vars(),
            vec![VAR_I, VAR_K]
        );
    }
}
