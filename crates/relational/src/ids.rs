//! Identifiers for loop variables and relations.
//!
//! Queries refer to relations by small opaque [`RelId`]s and to loop
//! index variables by [`Var`]s. The executor later binds each `RelId`
//! to an actual access method via [`crate::exec::Bindings`]; the planner
//! only ever sees metadata keyed by these ids.

use std::fmt;

/// A loop index variable appearing in a query (e.g. `i`, `j`, `k`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// The canonical first loop variable, conventionally the row index `i`.
pub const VAR_I: Var = Var(0);
/// The canonical second loop variable, conventionally the column index `j`.
pub const VAR_J: Var = Var(1);
/// The canonical third loop variable, used by matrix-matrix product.
pub const VAR_K: Var = Var(2);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "i"),
            1 => write!(f, "j"),
            2 => write!(f, "k"),
            n => write!(f, "v{n}"),
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An opaque identifier naming one relation (array) in a query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// Conventional id for the primary matrix operand `A`.
pub const MAT_A: RelId = RelId(0);
/// Conventional id for the secondary matrix operand `B`.
pub const MAT_B: RelId = RelId(1);
/// Conventional id for a result matrix `C`.
pub const MAT_C: RelId = RelId(2);
/// Conventional id for the input vector `x`.
pub const VEC_X: RelId = RelId(8);
/// Conventional id for the output vector `y`.
pub const VEC_Y: RelId = RelId(9);
/// Conventional id for a permutation relation `P`.
pub const PERM_P: RelId = RelId(16);

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "A"),
            1 => write!(f, "B"),
            2 => write!(f, "C"),
            8 => write!(f, "X"),
            9 => write!(f, "Y"),
            16 => write!(f, "P"),
            n => write!(f, "R{n}"),
        }
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_display_names() {
        assert_eq!(format!("{VAR_I}"), "i");
        assert_eq!(format!("{VAR_J}"), "j");
        assert_eq!(format!("{VAR_K}"), "k");
        assert_eq!(format!("{}", Var(7)), "v7");
    }

    #[test]
    fn relid_display_names() {
        assert_eq!(format!("{MAT_A}"), "A");
        assert_eq!(format!("{VEC_Y}"), "Y");
        assert_eq!(format!("{}", RelId(42)), "R42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(MAT_A);
        s.insert(MAT_B);
        assert!(s.contains(&MAT_A));
        assert!(VAR_I < VAR_J && VAR_J < VAR_K);
    }
}
