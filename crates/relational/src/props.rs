//! Declared properties of access-method levels.
//!
//! Following the paper (§2.1), each level of a format's index hierarchy
//! is described to the compiler by the *properties* of its enumerate and
//! search methods — the planner makes every decision from these alone,
//! never from the concrete data layout. This is what lets new formats be
//! added without changing the compilation strategy.

use std::fmt;

/// Cost class of the `search(index)` operation at one hierarchy level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SearchCost {
    /// O(1): direct indexing (dense storage, offset arrays).
    Constant,
    /// O(log nnz): binary search over a sorted index array.
    Logarithmic,
    /// O(nnz): linear scan (unsorted index array).
    Linear,
    /// Search is not supported at this level (enumeration only).
    Unsupported,
}

impl SearchCost {
    /// Abstract per-probe cost used by the planner's cost model.
    /// `n` is the expected number of candidates at this level.
    pub fn probe_cost(self, n: f64) -> f64 {
        match self {
            SearchCost::Constant => 1.0,
            SearchCost::Logarithmic => (n.max(2.0)).log2(),
            SearchCost::Linear => n.max(1.0) / 2.0,
            SearchCost::Unsupported => f64::INFINITY,
        }
    }

    /// Whether search is available at all.
    pub fn supported(self) -> bool {
        self != SearchCost::Unsupported
    }
}

/// Whether enumeration at a level yields indices in ascending order.
///
/// Sorted enumeration on both sides of a join enables a merge-join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sortedness {
    /// Indices come out strictly ascending.
    SortedAscending,
    /// No ordering guarantee.
    Unsorted,
}

impl Sortedness {
    pub fn is_sorted(self) -> bool {
        matches!(self, Sortedness::SortedAscending)
    }
}

/// Density of a level: does it materialise every index in `0..extent`,
/// or only the nonzero ones?
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Density {
    /// Every index in the range is present (dense arrays; `NZ` is
    /// identically true, per the paper's treatment of the dense `Y`).
    Dense,
    /// Only nonzero indices are present.
    Sparse,
}

/// The full property record for one level of an index hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelProps {
    pub sortedness: Sortedness,
    pub search: SearchCost,
    pub density: Density,
    /// Whether an index can appear more than once at this level
    /// (true for e.g. the unsorted flat COO outer level).
    pub duplicates: bool,
}

impl LevelProps {
    /// Properties of a dense, directly indexable level (a dense vector,
    /// the row dimension of a dense matrix, an offset-array level).
    pub const fn dense() -> Self {
        LevelProps {
            sortedness: Sortedness::SortedAscending,
            search: SearchCost::Constant,
            density: Density::Dense,
            duplicates: false,
        }
    }

    /// Properties of a sorted sparse level with binary search
    /// (CSR column indices within a row, sorted sparse vectors).
    pub const fn sparse_sorted() -> Self {
        LevelProps {
            sortedness: Sortedness::SortedAscending,
            search: SearchCost::Logarithmic,
            density: Density::Sparse,
            duplicates: false,
        }
    }

    /// Properties of an unsorted sparse level (coordinate storage).
    pub const fn sparse_unsorted() -> Self {
        LevelProps {
            sortedness: Sortedness::Unsorted,
            search: SearchCost::Linear,
            density: Density::Sparse,
            duplicates: false,
        }
    }

    /// Properties of a level that can only be enumerated, never searched.
    pub const fn enumerate_only() -> Self {
        LevelProps {
            sortedness: Sortedness::Unsorted,
            search: SearchCost::Unsupported,
            density: Density::Sparse,
            duplicates: true,
        }
    }

    pub fn with_sorted(mut self, sorted: bool) -> Self {
        self.sortedness = if sorted {
            Sortedness::SortedAscending
        } else {
            Sortedness::Unsorted
        };
        self
    }

    pub fn with_search(mut self, search: SearchCost) -> Self {
        self.search = search;
        self
    }

    pub fn with_duplicates(mut self, dup: bool) -> Self {
        self.duplicates = dup;
        self
    }

    pub fn is_dense(&self) -> bool {
        self.density == Density::Dense
    }
}

impl fmt::Display for LevelProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{:?}/{}",
            if self.sortedness.is_sorted() { "sorted" } else { "unsorted" },
            self.search,
            if self.is_dense() { "dense" } else { "sparse" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_costs_ordered() {
        let n = 1024.0;
        let c = SearchCost::Constant.probe_cost(n);
        let l = SearchCost::Logarithmic.probe_cost(n);
        let s = SearchCost::Linear.probe_cost(n);
        assert!(c < l && l < s);
        assert!(SearchCost::Unsupported.probe_cost(n).is_infinite());
    }

    #[test]
    fn probe_cost_small_n_well_defined() {
        // log2 of anything below 2 must not go negative or NaN.
        assert!(SearchCost::Logarithmic.probe_cost(0.0) >= 1.0);
        assert!(SearchCost::Linear.probe_cost(0.0) >= 0.0);
    }

    #[test]
    fn canned_props() {
        assert!(LevelProps::dense().is_dense());
        assert!(LevelProps::dense().sortedness.is_sorted());
        assert_eq!(LevelProps::sparse_sorted().search, SearchCost::Logarithmic);
        assert!(!LevelProps::sparse_unsorted().sortedness.is_sorted());
        assert!(!LevelProps::enumerate_only().search.supported());
    }

    #[test]
    fn builders_compose() {
        let p = LevelProps::sparse_unsorted()
            .with_sorted(true)
            .with_search(SearchCost::Logarithmic);
        assert_eq!(p, LevelProps::sparse_sorted());
    }

    #[test]
    fn display_is_compact() {
        let s = format!("{}", LevelProps::sparse_sorted());
        assert!(s.contains("sorted"));
        assert!(s.contains("sparse"));
    }
}
