//! Cost-based query planning.
//!
//! Given a [`Query`] and per-relation metadata ([`QueryMeta`]), the
//! planner chooses:
//!
//! 1. a **join order** — which loop variable is enumerated at which
//!    depth, compatible with every hierarchical format's index order
//!    (a CCS matrix can only enumerate rows *within* a column, so `j`
//!    must come before `i` if CCS drives both);
//! 2. a **driver** per variable — the relation whose enumeration
//!    produces candidates (preferring relations in the sparsity
//!    predicate, so that only nonzeros are visited);
//! 3. a **join implementation** per remaining relation — merge-join
//!    against a sorted co-enumeration, or a search probe — based purely
//!    on the declared [`LevelProps`](crate::props::LevelProps).
//!
//! The search is exhaustive over variable orders and driver choices
//! (queries have ≤ 3 variables and ≤ 4 terms), scored by an abstract
//! cost model, mirroring the paper's claim that join order/implementation
//! selection needs only the high-level structure of the relations.

use crate::access::{MatMeta, Orientation, VecMeta};
use crate::error::{RelError, RelResult};
use crate::ids::{RelId, Var};
use crate::plan::{
    Derivation, Driver, FlatNode, JoinMethod, LoopNode, Lookup, Plan, PlanNode, ProbeKind,
};
use crate::props::SearchCost;
use crate::query::{Query, Term};
use bernoulli_obs::events::PlanEvent;
use bernoulli_obs::Obs;
use std::collections::HashMap;

/// Per-relation metadata registry handed to the planner.
#[derive(Clone, Debug, Default)]
pub struct QueryMeta {
    mats: HashMap<RelId, MatMeta>,
    vecs: HashMap<RelId, VecMeta>,
    perms: HashMap<RelId, usize>,
}

impl QueryMeta {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn mat(mut self, rel: RelId, meta: MatMeta) -> Self {
        self.mats.insert(rel, meta);
        self
    }

    pub fn vec(mut self, rel: RelId, meta: VecMeta) -> Self {
        self.vecs.insert(rel, meta);
        self
    }

    pub fn perm(mut self, rel: RelId, len: usize) -> Self {
        self.perms.insert(rel, len);
        self
    }

    pub fn mat_meta(&self, rel: RelId) -> Option<&MatMeta> {
        self.mats.get(&rel)
    }

    pub fn vec_meta(&self, rel: RelId) -> Option<&VecMeta> {
        self.vecs.get(&rel)
    }

    pub fn perm_len(&self, rel: RelId) -> Option<usize> {
        self.perms.get(&rel).copied()
    }
}

/// Independent re-check of an emitted plan, installable on
/// [`Planner::verifier`]. A failure aborts planning with
/// [`RelError::PlanVerification`]. The production implementation lives
/// in `bernoulli-analysis` (`verify_plan_hook`), which this crate
/// cannot depend on — hence the function-pointer seam.
pub type PlanVerifier = fn(&Plan, &Query, &QueryMeta) -> Result<(), String>;

/// The planner. Stateless; configuration knobs may grow here.
#[derive(Clone, Debug, Default)]
pub struct Planner {
    /// When set, refuse plans that enumerate a dense range where a
    /// sparsity-predicate relation could drive instead (useful to assert
    /// that generated code is "truly sparse").
    pub require_sparse_driver: bool,
    /// When set, every candidate plan is re-checked by this hook before
    /// being returned; a failure aborts planning (belt-and-braces
    /// against planner/metadata skew, wired up by `Compiler::new()`
    /// under `debug_assertions`).
    pub verifier: Option<PlanVerifier>,
    /// Observability handle: when enabled, every successful `plan_all`
    /// records a [`PlanEvent`] (chosen shape, cost, runners-up and the
    /// full EXPLAIN text from [`crate::explain`]). The disabled default
    /// is zero-cost — the event closure never runs.
    pub obs: Obs,
}

impl Planner {
    pub fn new() -> Self {
        Planner::default()
    }

    /// Plan a query. Returns the cheapest feasible plan.
    pub fn plan(&self, query: &Query, meta: &QueryMeta) -> RelResult<Plan> {
        let mut all = self.plan_all(query, meta)?;
        Ok(all.swap_remove(0))
    }

    /// Explain the planning decision: every feasible candidate plan,
    /// cheapest first. Useful for tooling and for verifying what the
    /// cost model considered (the first element is what [`Planner::plan`]
    /// returns).
    pub fn plan_all(&self, query: &Query, meta: &QueryMeta) -> RelResult<Vec<Plan>> {
        query.validate()?;
        // Check all terms have metadata.
        for t in &query.terms {
            let ok = match t {
                Term::Mat { rel, .. } => meta.mats.contains_key(rel),
                Term::Vec { rel, .. } => meta.vecs.contains_key(rel),
                Term::Perm { rel, .. } => meta.perms.contains_key(rel),
            };
            if !ok {
                return Err(RelError::MissingMeta(t.rel()));
            }
        }

        let extents = var_extents(query, meta)?;
        let mut candidates: Vec<Plan> = Vec::new();
        let mut nonfinite = 0usize;

        // Choose, for every permutation term, which side is derived.
        for deriv_choice in derivation_choices(query) {
            let enum_vars: Vec<Var> = query
                .vars
                .iter()
                .copied()
                .filter(|v| !deriv_choice.iter().any(|d| d.to == *v))
                .collect();
            if enum_vars.is_empty() {
                continue;
            }
            for order in permutations(&enum_vars) {
                // Nested-loop candidates.
                self.candidates_for_order(
                    query, meta, &extents, &order, &deriv_choice, &mut candidates,
                    &mut nonfinite,
                );
                // Flat-enumeration candidates: a matrix binds both of
                // its variables at the outermost position.
                self.flat_candidates(
                    query, meta, &extents, &order, &deriv_choice, &mut candidates,
                    &mut nonfinite,
                );
            }
        }

        // Surface non-finite cost-model discards through provenance:
        // downstream calibration audits the cost model against measured
        // time, so the candidate set it sees must not shrink silently.
        if nonfinite > 0 {
            self.obs.counter("planner.nonfinite_cost_discards", nonfinite as u64);
        }
        if candidates.is_empty() {
            let msg = if nonfinite > 0 {
                format!(
                    "no variable order / driver assignment satisfies the access methods \
                     ({nonfinite} candidate(s) discarded for non-finite cost estimates — \
                     the cost model broke down on this metadata)"
                )
            } else {
                "no variable order / driver assignment satisfies the access methods".into()
            };
            return Err(RelError::NoFeasiblePlan(msg));
        }
        candidates.sort_by(|a, b| a.est_cost.total_cmp(&b.est_cost));
        // Drop duplicate shapes, keeping the cheapest instance of each.
        let mut seen: Vec<String> = Vec::new();
        candidates.retain(|c| {
            let sh = c.shape();
            if seen.contains(&sh) {
                false
            } else {
                seen.push(sh);
                true
            }
        });
        if let Some(verify) = self.verifier {
            for c in &candidates {
                verify(c, query, meta).map_err(|e| {
                    RelError::PlanVerification(format!("plan `{}`: {e}", c.shape()))
                })?;
            }
        }
        self.obs.plan(|| {
            let best = &candidates[0];
            PlanEvent {
                op: crate::explain::describe_stmt(query),
                shape: best.shape(),
                est_cost: best.est_cost,
                candidates: candidates.len(),
                runners_up: candidates
                    .iter()
                    .skip(1)
                    .take(4)
                    .map(|c| (c.shape(), c.est_cost))
                    .collect(),
                explain: crate::explain::explain_plan(best, query, meta),
            }
        });
        Ok(candidates)
    }

    #[allow(clippy::too_many_arguments)]
    fn candidates_for_order(
        &self,
        query: &Query,
        meta: &QueryMeta,
        extents: &HashMap<Var, usize>,
        order: &[Var],
        derivs: &[Derivation],
        out: &mut Vec<Plan>,
        nonfinite: &mut usize,
    ) {
        // Enumerate driver assignments with a simple product search.
        let options: Vec<Vec<Driver>> = order
            .iter()
            .enumerate()
            .map(|(pos, &v)| self.driver_options(query, meta, order, pos, v))
            .collect();
        if options.iter().any(|o| o.is_empty()) {
            return;
        }
        let mut idx = vec![0usize; order.len()];
        loop {
            let drivers: Vec<Driver> =
                idx.iter().zip(&options).map(|(&k, opts)| opts[k]).collect();
            if let Some(plan) =
                self.assemble(query, meta, extents, order, &drivers, derivs, None, nonfinite)
            {
                out.push(plan);
            }
            // Advance the product counter.
            let mut p = 0;
            loop {
                if p == idx.len() {
                    return;
                }
                idx[p] += 1;
                if idx[p] < options[p].len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn flat_candidates(
        &self,
        query: &Query,
        meta: &QueryMeta,
        extents: &HashMap<Var, usize>,
        order: &[Var],
        derivs: &[Derivation],
        out: &mut Vec<Plan>,
        nonfinite: &mut usize,
    ) {
        for t in &query.terms {
            let (rel, row, col) = match t {
                Term::Mat { rel, row, col } => (*rel, *row, *col),
                _ => continue,
            };
            // The flat node binds row & col; the remaining enumerated
            // vars must follow in `order`'s relative order.
            if !order.contains(&row) || !order.contains(&col) {
                continue;
            }
            let rest: Vec<Var> =
                order.iter().copied().filter(|v| *v != row && *v != col).collect();
            // Drivers for the remaining vars.
            let flat_bound = [row, col];
            let options: Vec<Vec<Driver>> = rest
                .iter()
                .enumerate()
                .map(|(pos, &v)| {
                    self.driver_options_with_prefix(query, meta, &flat_bound, &rest, pos, v, rel)
                })
                .collect();
            if options.iter().any(|o| o.is_empty()) {
                continue;
            }
            let mut idx = vec![0usize; rest.len()];
            loop {
                let drivers: Vec<Driver> =
                    idx.iter().zip(&options).map(|(&k, opts)| opts[k]).collect();
                if let Some(plan) = self.assemble(
                    query,
                    meta,
                    extents,
                    &rest,
                    &drivers,
                    derivs,
                    Some((rel, row, col)),
                    nonfinite,
                ) {
                    out.push(plan);
                }
                let mut p = 0;
                let mut done = false;
                loop {
                    if p == idx.len() {
                        done = true;
                        break;
                    }
                    idx[p] += 1;
                    if idx[p] < options[p].len() {
                        break;
                    }
                    idx[p] = 0;
                    p += 1;
                }
                if done || rest.is_empty() {
                    break;
                }
            }
            if rest.is_empty() {
                // Handled the single empty-product iteration above.
                continue;
            }
        }
    }

    /// Legal drivers for enumerated var `v` at position `pos` of `order`
    /// in a pure nested-loop plan.
    fn driver_options(
        &self,
        query: &Query,
        meta: &QueryMeta,
        order: &[Var],
        pos: usize,
        v: Var,
    ) -> Vec<Driver> {
        self.driver_options_with_prefix(query, meta, &[], order, pos, v, RelId(u32::MAX))
    }

    /// Same, with `prefix_bound` vars already bound by a flat node for
    /// relation `flat_rel` (which cannot be used again as a driver).
    #[allow(clippy::too_many_arguments)]
    fn driver_options_with_prefix(
        &self,
        query: &Query,
        meta: &QueryMeta,
        prefix_bound: &[Var],
        order: &[Var],
        pos: usize,
        v: Var,
        flat_rel: RelId,
    ) -> Vec<Driver> {
        let bound: Vec<Var> =
            prefix_bound.iter().copied().chain(order[..pos].iter().copied()).collect();
        let mut out = vec![Driver::Range];
        for t in &query.terms {
            match t {
                Term::Vec { rel, idx } if *idx == v => out.push(Driver::Vector(*rel)),
                Term::Mat { rel, row, col } if *rel != flat_rel => {
                    let m = &meta.mats[rel];
                    let (outer_v, inner_v) = match m.orientation {
                        Orientation::RowMajor => (*row, *col),
                        Orientation::ColMajor => (*col, *row),
                        Orientation::Flat => continue,
                    };
                    if outer_v == v {
                        out.push(Driver::MatOuter(*rel));
                    }
                    if inner_v == v && bound.contains(&outer_v) {
                        // The outer cursor can be located: either this
                        // relation drove the outer var (checked at
                        // assembly) or outer search is supported.
                        out.push(Driver::MatInner(*rel));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Try to assemble a full plan for one (order, drivers) choice.
    /// Returns `None` when some join cannot be implemented.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        query: &Query,
        meta: &QueryMeta,
        extents: &HashMap<Var, usize>,
        order: &[Var],
        drivers: &[Driver],
        derivs: &[Derivation],
        flat: Option<(RelId, Var, Var)>,
        nonfinite: &mut usize,
    ) -> Option<Plan> {
        // node index at which each var becomes bound
        let mut bind_node: HashMap<Var, usize> = HashMap::new();
        let mut nodes: Vec<PlanNode> = Vec::new();
        if let Some((rel, row, col)) = flat {
            bind_node.insert(row, 0);
            bind_node.insert(col, 0);
            nodes.push(PlanNode::Flat(FlatNode {
                rel,
                row_var: row,
                col_var: col,
                derived: vec![],
                lookups: vec![],
            }));
        }
        let base = nodes.len();
        for (k, (&v, &d)) in order.iter().zip(drivers).enumerate() {
            bind_node.insert(v, base + k);
            nodes.push(PlanNode::Loop(LoopNode {
                var: v,
                driver: d,
                derived: vec![],
                lookups: vec![],
            }));
        }
        // Attach derivations to the node binding their source var, and
        // record the derived var as bound at that node.
        for d in derivs {
            let &src_node = bind_node.get(&d.from)?;
            bind_node.insert(d.to, src_node);
            match &mut nodes[src_node] {
                PlanNode::Loop(l) => l.derived.push(*d),
                PlanNode::Flat(f) => f.derived.push(*d),
            }
        }
        // Every query var must be bound.
        for v in &query.vars {
            bind_node.get(v)?;
        }

        // A matrix driving its inner level must have a locatable outer
        // cursor: either it drove the outer var, or we must attach a
        // MatOuterAt lookup at the outer var's node.
        let mut extra_lookups: Vec<(usize, Lookup)> = Vec::new();
        for (k, node) in nodes.iter().enumerate() {
            let l = match node {
                PlanNode::Loop(l) => l,
                PlanNode::Flat(_) => continue,
            };
            if let Driver::MatInner(rel) = l.driver {
                let m = &meta.mats[&rel];
                let (outer_v, _) = mat_axis_vars(query, rel, m)?;
                let outer_node = *bind_node.get(&outer_v)?;
                if outer_node >= k {
                    return None;
                }
                let drove_outer = matches!(
                    &nodes[outer_node],
                    PlanNode::Loop(ol) if ol.driver == Driver::MatOuter(rel)
                );
                if !drove_outer {
                    if !m.outer.search.supported() {
                        return None;
                    }
                    extra_lookups.push((
                        outer_node,
                        Lookup {
                            rel,
                            kind: ProbeKind::MatOuterAt(outer_v),
                            method: JoinMethod::Search,
                            in_predicate: query.predicate.contains(&rel),
                        },
                    ));
                }
            }
        }

        // Resolve every term not covered by a driver.
        for t in &query.terms {
            match t {
                Term::Perm { .. } => {} // derivations handle these
                Term::Vec { rel, idx } => {
                    let driven = nodes.iter().any(|n| {
                        matches!(n, PlanNode::Loop(l) if l.driver == Driver::Vector(*rel))
                    });
                    if driven {
                        continue;
                    }
                    let node = *bind_node.get(idx)?;
                    let vm = &meta.vecs[rel];
                    let method = choose_method(
                        node_sorted(&nodes[node], meta, query),
                        vm.props.sortedness.is_sorted(),
                        vm.props.search,
                        vm.nnz as f64,
                        node_driver_card(&nodes[node], meta, extents),
                    )?;
                    extra_lookups.push((
                        node,
                        Lookup {
                            rel: *rel,
                            kind: ProbeKind::VecAt(*idx),
                            method,
                            in_predicate: query.predicate.contains(rel),
                        },
                    ));
                }
                Term::Mat { rel, row, col } => {
                    if flat.map(|(r, _, _)| r) == Some(*rel) {
                        continue; // the flat driver
                    }
                    let m = &meta.mats[&rel.clone()];
                    let in_pred = query.predicate.contains(rel);
                    let drove_outer = nodes.iter().any(|n| {
                        matches!(n, PlanNode::Loop(l) if l.driver == Driver::MatOuter(*rel))
                    });
                    let drove_inner = nodes.iter().any(|n| {
                        matches!(n, PlanNode::Loop(l) if l.driver == Driver::MatInner(*rel))
                    });
                    if drove_outer && drove_inner {
                        continue; // fully enumerated
                    }
                    if m.orientation == Orientation::Flat {
                        // Only random pair probes are possible.
                        let n_row = *bind_node.get(row)?;
                        let n_col = *bind_node.get(col)?;
                        let node = n_row.max(n_col);
                        extra_lookups.push((
                            node,
                            Lookup {
                                rel: *rel,
                                kind: ProbeKind::MatFlatPairAt { row_var: *row, col_var: *col },
                                method: JoinMethod::Search,
                                in_predicate: in_pred,
                            },
                        ));
                        continue;
                    }
                    let (outer_v, inner_v) = match m.orientation {
                        Orientation::RowMajor => (*row, *col),
                        Orientation::ColMajor => (*col, *row),
                        Orientation::Flat => unreachable!(),
                    };
                    let n_outer = *bind_node.get(&outer_v)?;
                    let n_inner = *bind_node.get(&inner_v)?;
                    if drove_outer {
                        // Need only the inner value at the later var.
                        let node = n_outer.max(n_inner);
                        let method = if n_inner > n_outer {
                            choose_method(
                                node_sorted(&nodes[node], meta, query),
                                m.inner.sortedness.is_sorted(),
                                m.inner.search,
                                m.avg_inner_len(),
                                node_driver_card(&nodes[node], meta, extents),
                            )?
                        } else {
                            // inner var bound before/at the outer node:
                            // probe inner under the driver's cursor.
                            if !m.inner.search.supported() {
                                return None;
                            }
                            JoinMethod::Search
                        };
                        extra_lookups.push((
                            node,
                            Lookup {
                                rel: *rel,
                                kind: ProbeKind::MatInnerAt(inner_v),
                                method,
                                in_predicate: in_pred,
                            },
                        ));
                        continue;
                    }
                    if drove_inner {
                        // Outer cursor handled above (extra MatOuterAt or
                        // an error); nothing further: the inner driver
                        // produces the value.
                        continue;
                    }
                    // Not a driver at all.
                    if n_outer < n_inner {
                        // Locate the cursor when the outer var binds,
                        // then resolve the value at the inner var.
                        if !m.outer.search.supported() {
                            return None;
                        }
                        let outer_method = choose_method(
                            node_sorted(&nodes[n_outer], meta, query),
                            m.outer.sortedness.is_sorted(),
                            m.outer.search,
                            m.outer_extent() as f64,
                            node_driver_card(&nodes[n_outer], meta, extents),
                        )?;
                        extra_lookups.push((
                            n_outer,
                            Lookup {
                                rel: *rel,
                                kind: ProbeKind::MatOuterAt(outer_v),
                                method: outer_method,
                                in_predicate: in_pred,
                            },
                        ));
                        let inner_method = choose_method(
                            node_sorted(&nodes[n_inner], meta, query),
                            m.inner.sortedness.is_sorted(),
                            m.inner.search,
                            m.avg_inner_len(),
                            node_driver_card(&nodes[n_inner], meta, extents),
                        )?;
                        extra_lookups.push((
                            n_inner,
                            Lookup {
                                rel: *rel,
                                kind: ProbeKind::MatInnerAt(inner_v),
                                method: inner_method,
                                in_predicate: in_pred,
                            },
                        ));
                    } else {
                        // Inner var binds first: combined probe at the
                        // outer var's node.
                        if !m.outer.search.supported() || !m.inner.search.supported() {
                            return None;
                        }
                        extra_lookups.push((
                            n_outer,
                            Lookup {
                                rel: *rel,
                                kind: ProbeKind::MatPairAt {
                                    outer_var: outer_v,
                                    inner_var: inner_v,
                                },
                                method: JoinMethod::Search,
                                in_predicate: in_pred,
                            },
                        ));
                    }
                }
            }
        }

        for (node, lk) in extra_lookups {
            match &mut nodes[node] {
                PlanNode::Loop(l) => l.lookups.push(lk),
                PlanNode::Flat(f) => f.lookups.push(lk),
            }
        }
        // Deduplicate lookups (a MatOuterAt may be requested twice).
        for n in &mut nodes {
            let lks = match n {
                PlanNode::Loop(l) => &mut l.lookups,
                PlanNode::Flat(f) => &mut f.lookups,
            };
            let mut seen = Vec::new();
            lks.retain(|lk| {
                if seen.contains(&(lk.rel, lk.kind)) {
                    false
                } else {
                    seen.push((lk.rel, lk.kind));
                    true
                }
            });
            // Merge lookups must run before searches (they also filter
            // more cheaply); stable-sort by method.
            lks.sort_by_key(|lk| match lk.method {
                JoinMethod::Merge => 0,
                JoinMethod::Search => 1,
            });
        }

        // Soundness: a driver's enumeration filters out unstored
        // indices, which is only legal when the relation is in the
        // sparsity predicate (zeros may be skipped) or the enumerated
        // level is dense (nothing is skipped).
        for n in &nodes {
            let sound = match n {
                PlanNode::Flat(f) => {
                    query.predicate.contains(&f.rel) || meta.mats[&f.rel].flat.is_dense()
                }
                PlanNode::Loop(l) => match l.driver {
                    Driver::Range => true,
                    Driver::Vector(r) => {
                        query.predicate.contains(&r) || meta.vecs[&r].props.is_dense()
                    }
                    Driver::MatOuter(r) => {
                        query.predicate.contains(&r) || meta.mats[&r].outer.is_dense()
                    }
                    Driver::MatInner(r) => {
                        query.predicate.contains(&r) || meta.mats[&r].inner.is_dense()
                    }
                },
            };
            if !sound {
                return None;
            }
        }

        if self.require_sparse_driver {
            let any_pred_driver = nodes.iter().any(|n| match n {
                PlanNode::Flat(f) => query.predicate.contains(&f.rel),
                PlanNode::Loop(l) => {
                    l.driver.rel().is_some_and(|r| query.predicate.contains(&r))
                }
            });
            if !query.predicate.is_empty() && !any_pred_driver {
                return None;
            }
        }

        self.price_candidate(nodes, query, meta, extents, nonfinite)
    }

    /// Run the cost model over an assembled candidate. A non-finite
    /// estimate means the model broke down on the metadata (e.g. an
    /// unpriceable probe — planner/metadata skew), not that the plan is
    /// infeasible; the candidate is still discarded (a non-comparable
    /// cost cannot be ranked) but the discard is *counted* so
    /// [`Planner::plan_all`] can surface it through obs/EXPLAIN
    /// provenance instead of silently shrinking the candidate set
    /// downstream calibration sees.
    fn price_candidate(
        &self,
        nodes: Vec<PlanNode>,
        query: &Query,
        meta: &QueryMeta,
        extents: &HashMap<Var, usize>,
        nonfinite: &mut usize,
    ) -> Option<Plan> {
        let est_cost = estimate_cost(&nodes, query, meta, extents);
        if !est_cost.is_finite() {
            *nonfinite += 1;
            return None;
        }
        Some(Plan { nodes, est_cost })
    }
}

/// Whether a node's driver enumerates its variable in ascending order
/// (precondition for merge joins at that node).
/// Expected number of candidates a node's driver enumerates per start.
pub(crate) fn node_driver_card(
    node: &PlanNode,
    meta: &QueryMeta,
    extents: &HashMap<Var, usize>,
) -> f64 {
    match node {
        PlanNode::Flat(f) => meta.mats[&f.rel].nnz as f64,
        PlanNode::Loop(l) => match l.driver {
            Driver::Range => extents[&l.var] as f64,
            Driver::Vector(r) => meta.vecs[&r].nnz as f64,
            Driver::MatOuter(r) => {
                let m = &meta.mats[&r];
                if m.outer.is_dense() {
                    m.outer_extent() as f64
                } else {
                    (m.nnz as f64).min(m.outer_extent() as f64)
                }
            }
            Driver::MatInner(r) => meta.mats[&r].avg_inner_len(),
        },
    }
}

fn node_sorted(node: &PlanNode, meta: &QueryMeta, _query: &Query) -> bool {
    match node {
        PlanNode::Flat(_) => false,
        PlanNode::Loop(l) => match l.driver {
            Driver::Range => true,
            Driver::Vector(r) => meta.vecs[&r].props.sortedness.is_sorted(),
            Driver::MatOuter(r) => meta.mats[&r].outer.sortedness.is_sorted(),
            Driver::MatInner(r) => meta.mats[&r].inner.sortedness.is_sorted(),
        },
    }
}

/// Pick merge vs. search for one lookup; `None` if neither is legal.
///
/// The trade-off is contextual: a merge join traverses the whole partner
/// once per node start (`partner_len` steps), while searching probes
/// once per driver candidate (`driver_card × probe_cost`). Both legal ⇒
/// pick the cheaper.
fn choose_method(
    driver_sorted: bool,
    partner_sorted: bool,
    partner_search: SearchCost,
    partner_len: f64,
    driver_card: f64,
) -> Option<JoinMethod> {
    let merge_ok = driver_sorted && partner_sorted;
    let search_ok = partner_search.supported();
    match (merge_ok, search_ok) {
        (false, false) => None,
        (true, false) => Some(JoinMethod::Merge),
        (false, true) => Some(JoinMethod::Search),
        (true, true) => {
            if partner_search == SearchCost::Constant {
                // Dense direct indexing beats co-traversal outright.
                Some(JoinMethod::Search)
            } else if partner_len < driver_card * partner_search.probe_cost(partner_len) {
                Some(JoinMethod::Merge)
            } else {
                Some(JoinMethod::Search)
            }
        }
    }
}

/// Derive (outer_var, inner_var) for a matrix relation from the query.
fn mat_axis_vars(query: &Query, rel: RelId, m: &MatMeta) -> Option<(Var, Var)> {
    match query.term(rel)? {
        Term::Mat { row, col, .. } => match m.orientation {
            Orientation::RowMajor => Some((*row, *col)),
            Orientation::ColMajor => Some((*col, *row)),
            Orientation::Flat => None,
        },
        _ => None,
    }
}

/// All ways of orienting the permutation terms (which side enumerated,
/// which derived).
fn derivation_choices(query: &Query) -> Vec<Vec<Derivation>> {
    let perms: Vec<(RelId, Var, Var)> = query
        .terms
        .iter()
        .filter_map(|t| match t {
            Term::Perm { rel, from, to } => Some((*rel, *from, *to)),
            _ => None,
        })
        .collect();
    let mut out = vec![vec![]];
    for (rel, from, to) in perms {
        let mut next = Vec::new();
        for base in &out {
            let mut a = base.clone();
            a.push(Derivation { perm: rel, from, to, forward: true });
            next.push(a);
            let mut b = base.clone();
            b.push(Derivation { perm: rel, from: to, to: from, forward: false });
            next.push(b);
        }
        out = next;
    }
    out
}

fn permutations(vars: &[Var]) -> Vec<Vec<Var>> {
    if vars.len() <= 1 {
        return vec![vars.to_vec()];
    }
    let mut out = Vec::new();
    for (k, &v) in vars.iter().enumerate() {
        let mut rest = vars.to_vec();
        rest.remove(k);
        for mut tail in permutations(&rest) {
            tail.insert(0, v);
            out.push(tail);
        }
    }
    out
}

/// Resolve the dense extent of each variable from the relation shapes.
pub(crate) fn var_extents(query: &Query, meta: &QueryMeta) -> RelResult<HashMap<Var, usize>> {
    let mut ext: HashMap<Var, usize> = HashMap::new();
    let mut put = |v: Var, n: usize| {
        let e = ext.entry(v).or_insert(n);
        *e = (*e).min(n);
    };
    for t in &query.terms {
        match t {
            Term::Mat { rel, row, col } => {
                if let Some(m) = meta.mats.get(rel) {
                    put(*row, m.nrows);
                    put(*col, m.ncols);
                }
            }
            Term::Vec { rel, idx } => {
                if let Some(vm) = meta.vecs.get(rel) {
                    put(*idx, vm.len);
                }
            }
            Term::Perm { rel, from, to } => {
                if let Some(&n) = meta.perms.get(rel) {
                    put(*from, n);
                    put(*to, n);
                }
            }
        }
    }
    for v in &query.vars {
        if !ext.contains_key(v) {
            return Err(RelError::UnboundVar(*v));
        }
    }
    Ok(ext)
}

/// Abstract cost model: work ≈ tuples touched + probe costs + merge
/// co-traversals, estimated top-down through the loop nest.
fn estimate_cost(
    nodes: &[PlanNode],
    query: &Query,
    meta: &QueryMeta,
    extents: &HashMap<Var, usize>,
) -> f64 {
    let mut cost = 0.0;
    let mut starts = 1.0; // times the node begins
    for node in nodes {
        // Reconstructing ⟨i, j, v⟩ tuples from a flat stream costs more
        // per element than stepping a hierarchy level (and for
        // hierarchical formats the flat view is derived, so hierarchical
        // plans are preferred when available).
        let step_cost = match node {
            PlanNode::Flat(_) => 1.5,
            PlanNode::Loop(_) => 1.0,
        };
        let (dcard, lookups) = match node {
            PlanNode::Flat(f) => (meta.mats[&f.rel].nnz as f64, &f.lookups),
            PlanNode::Loop(l) => {
                let c = match l.driver {
                    Driver::Range => extents[&l.var] as f64,
                    Driver::Vector(r) => meta.vecs[&r].nnz as f64,
                    Driver::MatOuter(r) => {
                        let m = &meta.mats[&r];
                        if m.outer.is_dense() {
                            m.outer_extent() as f64
                        } else {
                            (m.nnz as f64).min(m.outer_extent() as f64)
                        }
                    }
                    Driver::MatInner(r) => meta.mats[&r].avg_inner_len(),
                };
                (c, &l.lookups)
            }
        };
        let raw = starts * dcard;
        cost += raw * step_cost; // driver stepping
        let mut surviving = raw;
        // Merges first: co-traversal cost per node start, then filter.
        for lk in lookups.iter().filter(|lk| lk.method == JoinMethod::Merge) {
            let plen = partner_len(lk, meta);
            cost += starts * plen;
            if lk.in_predicate {
                surviving *= selectivity(lk, meta, extents, query);
            }
        }
        for lk in lookups.iter().filter(|lk| lk.method == JoinMethod::Search) {
            cost += surviving * probe_cost(lk, meta);
            if lk.in_predicate {
                surviving *= selectivity(lk, meta, extents, query);
            }
        }
        starts = surviving.max(0.0);
    }
    cost + starts // final statement evaluations
}

fn partner_len(lk: &Lookup, meta: &QueryMeta) -> f64 {
    match lk.kind {
        ProbeKind::VecAt(_) => meta.vecs[&lk.rel].nnz as f64,
        ProbeKind::MatOuterAt(_) => meta.mats[&lk.rel].outer_extent() as f64,
        ProbeKind::MatInnerAt(_) => meta.mats[&lk.rel].avg_inner_len(),
        ProbeKind::MatPairAt { .. } | ProbeKind::MatFlatPairAt { .. } => {
            meta.mats[&lk.rel].nnz as f64
        }
    }
}

fn probe_cost(lk: &Lookup, meta: &QueryMeta) -> f64 {
    match lk.kind {
        ProbeKind::VecAt(_) => {
            let vm = &meta.vecs[&lk.rel];
            vm.props.search.probe_cost(vm.nnz as f64)
        }
        ProbeKind::MatOuterAt(_) => {
            let m = &meta.mats[&lk.rel];
            m.outer.search.probe_cost(m.outer_extent() as f64)
        }
        ProbeKind::MatInnerAt(_) => {
            let m = &meta.mats[&lk.rel];
            m.inner.search.probe_cost(m.avg_inner_len())
        }
        ProbeKind::MatPairAt { .. } => {
            let m = &meta.mats[&lk.rel];
            m.outer.search.probe_cost(m.outer_extent() as f64)
                + m.inner.search.probe_cost(m.avg_inner_len())
        }
        ProbeKind::MatFlatPairAt { .. } => {
            let m = &meta.mats[&lk.rel];
            if m.pair_search_cheap {
                2.0
            } else {
                m.nnz as f64 / 2.0
            }
        }
    }
}

fn selectivity(
    lk: &Lookup,
    meta: &QueryMeta,
    extents: &HashMap<Var, usize>,
    _query: &Query,
) -> f64 {
    let frac = |nnz: f64, dim: f64| if dim <= 0.0 { 1.0 } else { (nnz / dim).min(1.0) };
    match lk.kind {
        ProbeKind::VecAt(v) => {
            let vm = &meta.vecs[&lk.rel];
            frac(vm.nnz as f64, extents.get(&v).copied().unwrap_or(vm.len) as f64)
        }
        ProbeKind::MatOuterAt(_) => {
            let m = &meta.mats[&lk.rel];
            frac(m.nnz as f64, m.outer_extent() as f64)
        }
        ProbeKind::MatInnerAt(_) => {
            let m = &meta.mats[&lk.rel];
            let inner_dim = match m.orientation {
                Orientation::RowMajor => m.ncols,
                Orientation::ColMajor => m.nrows,
                Orientation::Flat => m.ncols,
            };
            frac(m.avg_inner_len(), inner_dim as f64)
        }
        ProbeKind::MatPairAt { .. } | ProbeKind::MatFlatPairAt { .. } => {
            let m = &meta.mats[&lk.rel];
            frac(m.nnz as f64, (m.nrows * m.ncols) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{MatMeta, VecMeta};
    use crate::ids::{MAT_A, MAT_B, VAR_I, VAR_J, VEC_X, VEC_Y};
    use crate::props::LevelProps;
    use crate::query::QueryBuilder;

    fn csr_meta(n: usize, nnz: usize) -> MatMeta {
        MatMeta {
            nrows: n,
            ncols: n,
            nnz,
            orientation: Orientation::RowMajor,
            outer: LevelProps::dense(),
            inner: LevelProps::sparse_sorted(),
            flat: LevelProps::sparse_sorted(),
            pair_search_cheap: true,
        }
    }

    fn ccs_meta(n: usize, nnz: usize) -> MatMeta {
        MatMeta { orientation: Orientation::ColMajor, ..csr_meta(n, nnz) }
    }

    fn coo_meta(n: usize, nnz: usize) -> MatMeta {
        MatMeta {
            orientation: Orientation::Flat,
            outer: LevelProps::enumerate_only(),
            inner: LevelProps::enumerate_only(),
            flat: LevelProps::sparse_unsorted(),
            pair_search_cheap: false,
            ..csr_meta(n, nnz)
        }
    }

    #[test]
    fn csr_matvec_plans_row_then_col() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        assert_eq!(plan.shape(), "i:outer(A)>j:inner(A)[X?]");
    }

    #[test]
    fn ccs_matvec_plans_col_then_row() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, ccs_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        // Column-major: enumerate j at the outer level, probe X once per
        // column (hoisted naturally since X is at the j node), rows inner.
        assert_eq!(plan.shape(), "j:outer(A)[X?]>i:inner(A)");
    }

    #[test]
    fn coo_matvec_uses_flat_enumeration() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, coo_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        assert!(plan.shape().starts_with("(i,j):flat(A)"), "got {}", plan.shape());
    }

    #[test]
    fn sparse_x_enters_predicate_and_merges() {
        let mut q = QueryBuilder::mat_vec_product().build();
        q.infer_predicate(&|r| r == MAT_A || r == VEC_X);
        // Long rows (200 entries) against a short sparse x (100 stored):
        // one co-traversal of x per row beats 200 binary searches.
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(1_000, 200_000))
            .vec(VEC_X, VecMeta::sparse_sorted(1_000, 100));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        assert!(plan.shape().contains("[X~]"), "expected merge join, got {}", plan.shape());
    }

    #[test]
    fn mat_dot_csr_csr_merges_inner() {
        let q = QueryBuilder::mat_dot().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(1000, 20_000))
            .mat(MAT_B, csr_meta(1000, 20_000));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        // Rows of A drive; B's row located at i; columns merge.
        assert!(plan.shape().contains("[B~]") || plan.shape().contains("[A~]"),
            "expected a merge join, got {}", plan.shape());
    }

    #[test]
    fn spmm_csr_csr_feasible() {
        let q = QueryBuilder::mat_mat_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(500, 5_000))
            .mat(MAT_B, csr_meta(500, 5_000));
        let plan = Planner::new().plan(&q, &meta).unwrap();
        // Gustavson's order: i from A, k from A's inner, j from B's inner.
        assert_eq!(plan.shape(), "i:outer(A)>k:inner(A)[B?]>j:inner(B)");
    }

    #[test]
    fn missing_meta_reported() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(10, 10));
        assert_eq!(Planner::new().plan(&q, &meta), Err(RelError::MissingMeta(VEC_X)));
    }

    #[test]
    fn require_sparse_driver_honoured() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let planner = Planner { require_sparse_driver: true, ..Planner::default() };
        let plan = planner.plan(&q, &meta).unwrap();
        // A (the only predicate relation) must drive some level.
        assert!(plan.shape().contains("outer(A)") || plan.shape().contains("flat(A)"));
    }

    #[test]
    fn verifier_hook_gates_plan_all() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(10, 30)).vec(VEC_X, VecMeta::dense(10));
        let mut planner = Planner::new();
        planner.verifier = Some(|_, _, _| Err("rejected by test hook".into()));
        match planner.plan(&q, &meta) {
            Err(RelError::PlanVerification(msg)) => {
                assert!(msg.contains("rejected by test hook"), "{msg}")
            }
            other => panic!("expected PlanVerification, got {other:?}"),
        }
        planner.verifier = Some(|_, _, _| Ok(()));
        planner.plan(&q, &meta).unwrap();
    }

    #[test]
    fn permuted_matvec_derives_via_perm() {
        let q = QueryBuilder::permuted_mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(MAT_A, csr_meta(100, 600))
            .vec(VEC_X, VecMeta::dense(100))
            .perm(crate::ids::PERM_P, 100);
        let plan = Planner::new().plan(&q, &meta).unwrap();
        // The permuted row index (k) should be enumerated from A and the
        // global index derived — never a dense range over both.
        let shape = plan.shape();
        assert!(shape.contains("outer(A)"), "got {shape}");
        let loops = plan.nodes.len();
        assert_eq!(loops, 2, "derivation should not add a loop: {shape}");
    }

    #[test]
    fn permutations_helper() {
        assert_eq!(permutations(&[VAR_I]).len(), 1);
        assert_eq!(permutations(&[VAR_I, VAR_J]).len(), 2);
        let q = QueryBuilder::mat_mat_product().build();
        assert_eq!(permutations(&q.vars).len(), 6);
    }

    #[test]
    fn nonfinite_cost_candidate_is_discarded_and_counted() {
        // Force the cost model to break down: a Search-method probe
        // against a vector whose metadata declares search unsupported
        // prices to +inf. `assemble` never emits that pairing itself
        // (choose_method refuses), so the skew is injected directly at
        // the pricing seam — the guard this exercises is exactly the
        // planner/metadata-skew defence at the end of `assemble`.
        let q = QueryBuilder::mat_vec_product().build();
        let vm = VecMeta { props: LevelProps::enumerate_only(), ..VecMeta::dense(100) };
        let meta = QueryMeta::new().mat(MAT_A, csr_meta(100, 500)).vec(VEC_X, vm);
        let extents = var_extents(&q, &meta).unwrap();
        let nodes = vec![
            PlanNode::Loop(LoopNode {
                var: VAR_I,
                driver: Driver::MatOuter(MAT_A),
                derived: vec![],
                lookups: vec![],
            }),
            PlanNode::Loop(LoopNode {
                var: VAR_J,
                driver: Driver::MatInner(MAT_A),
                derived: vec![],
                lookups: vec![Lookup {
                    rel: VEC_X,
                    kind: ProbeKind::VecAt(VAR_J),
                    method: JoinMethod::Search,
                    in_predicate: false,
                }],
            }),
        ];
        assert!(
            !estimate_cost(&nodes, &q, &meta, &extents).is_finite(),
            "the crafted candidate must force a non-finite estimate"
        );
        let planner = Planner::new();
        let mut nonfinite = 0usize;
        assert!(planner
            .price_candidate(nodes.clone(), &q, &meta, &extents, &mut nonfinite)
            .is_none());
        assert_eq!(nonfinite, 1, "the discard must be counted, not silent");
        // A priceable candidate passes through and leaves the count alone.
        let finite_meta =
            QueryMeta::new().mat(MAT_A, csr_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let plan = planner
            .price_candidate(nodes, &q, &finite_meta, &extents, &mut nonfinite)
            .unwrap();
        assert!(plan.est_cost.is_finite());
        assert_eq!(nonfinite, 1);
    }

    #[test]
    fn extent_mismatch_takes_min() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta =
            QueryMeta::new().mat(MAT_A, csr_meta(100, 500)).vec(VEC_X, VecMeta::dense(100));
        let ext = var_extents(&q, &meta).unwrap();
        assert_eq!(ext[&VAR_I], 100);
        assert_eq!(ext[&VAR_J], 100);
        // VEC_Y is not a term, only the target — no extent contribution.
        assert_eq!(q.term(VEC_Y), None);
    }
}

#[cfg(test)]
mod plan_all_tests {
    use super::*;
    use crate::access::VecMeta;
    use crate::ids::{MAT_A, VEC_X};
    use crate::query::QueryBuilder;
    use crate::access::{MatMeta, Orientation};
    use crate::props::LevelProps;

    #[test]
    fn plan_all_is_sorted_and_deduplicated() {
        let q = QueryBuilder::mat_vec_product().build();
        let meta = QueryMeta::new()
            .mat(
                MAT_A,
                MatMeta {
                    nrows: 100,
                    ncols: 100,
                    nnz: 600,
                    orientation: Orientation::RowMajor,
                    outer: LevelProps::dense(),
                    inner: LevelProps::sparse_sorted(),
                    flat: LevelProps::sparse_sorted(),
                    pair_search_cheap: true,
                },
            )
            .vec(VEC_X, VecMeta::dense(100));
        let all = Planner::new().plan_all(&q, &meta).unwrap();
        assert!(all.len() >= 2, "expected several candidate plans");
        assert!(all.windows(2).all(|w| w[0].est_cost <= w[1].est_cost));
        // No two candidates share a shape.
        let shapes: Vec<String> = all.iter().map(Plan::shape).collect();
        let mut dedup = shapes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), shapes.len());
        // The first is what plan() returns.
        let best = Planner::new().plan(&q, &meta).unwrap();
        assert_eq!(best.shape(), all[0].shape());
    }
}
