//! Access-method traits: how storage formats describe themselves.
//!
//! Per the paper (§2.1), a sparse format is presented to the compiler as
//! a *hierarchy* of index levels, e.g. CCS is `J ≻ (I, V)`: enumerate
//! column indices at the outer level, and for a fixed column enumerate
//! `⟨row, value⟩` pairs at the inner level. Each level carries
//! [`LevelProps`] describing its enumerate/search methods; the planner
//! consults only those.
//!
//! Formats whose natural traversal does not follow the `i ≻ j` or
//! `j ≻ i` hierarchy (coordinate, diagonal, jagged-diagonal storage)
//! expose [`Orientation::Flat`]: an efficient whole-relation enumeration
//! of `⟨i, j, value⟩` tuples. Hierarchical formats also provide flat
//! enumeration (derived from the hierarchy) so every format supports the
//! common denominator.

use crate::props::LevelProps;

/// The index hierarchy a matrix format exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// `I ≻ (J, V)`: rows at the outer level (CRS, ITPACK, row i-nodes).
    RowMajor,
    /// `J ≻ (I, V)`: columns at the outer level (CCS, CCCS, column i-nodes).
    ColMajor,
    /// No usable two-level hierarchy over `(i, j)`; only flat
    /// enumeration of `⟨i, j, v⟩` tuples (COO, Diagonal, JDiag).
    Flat,
}

impl Orientation {
    /// The loop variable (0 = row `i`, 1 = column `j`) enumerated at the
    /// outer level, if the format is hierarchical.
    pub fn outer_axis(self) -> Option<usize> {
        match self {
            Orientation::RowMajor => Some(0),
            Orientation::ColMajor => Some(1),
            Orientation::Flat => None,
        }
    }
}

/// Planner-visible metadata for a matrix relation `A(i, j, a)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatMeta {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    pub orientation: Orientation,
    /// Properties of the outer level (meaningless for `Flat`).
    pub outer: LevelProps,
    /// Properties of the inner level (meaningless for `Flat`).
    pub inner: LevelProps,
    /// Properties of the flat `⟨i, j, v⟩` enumeration.
    pub flat: LevelProps,
    /// Cost of a random `search_pair(i, j)` probe relative to one
    /// flat-enumeration step; `None` if `search_pair` is a linear scan.
    pub pair_search_cheap: bool,
}

impl MatMeta {
    /// Average number of stored entries per outer index.
    pub fn avg_inner_len(&self) -> f64 {
        let outer_extent = match self.orientation {
            Orientation::RowMajor => self.nrows,
            Orientation::ColMajor => self.ncols,
            Orientation::Flat => return self.nnz as f64,
        };
        if outer_extent == 0 {
            0.0
        } else {
            self.nnz as f64 / outer_extent as f64
        }
    }

    /// Number of distinct outer indices the outer enumeration yields.
    /// Compressed-compressed formats (CCCS) enumerate only nonempty
    /// outer indices; plain CCS/CRS enumerate all of them.
    pub fn outer_extent(&self) -> usize {
        match self.orientation {
            Orientation::RowMajor => self.nrows,
            Orientation::ColMajor => self.ncols,
            Orientation::Flat => self.nnz,
        }
    }
}

/// Planner-visible metadata for a vector relation `X(i, x)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VecMeta {
    pub len: usize,
    pub nnz: usize,
    pub props: LevelProps,
}

impl VecMeta {
    /// Metadata of a dense vector of length `len`.
    pub fn dense(len: usize) -> Self {
        VecMeta { len, nnz: len, props: LevelProps::dense() }
    }

    /// Metadata of a sorted sparse vector.
    pub fn sparse_sorted(len: usize, nnz: usize) -> Self {
        VecMeta { len, nnz, props: LevelProps::sparse_sorted() }
    }
}

/// A position at the outer level of a hierarchical format, identifying
/// one outer index together with format-private bounds for its inner
/// level. Fields `a`/`b` are interpreted by the owning format (e.g. for
/// CRS they are the `[start, end)` range into `VALS`/`COLIND`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OuterCursor {
    /// The outer index value, in *global* index space.
    pub index: usize,
    pub a: usize,
    pub b: usize,
}

/// Iterator over the outer level of a hierarchical format.
pub type OuterIter<'a> = Box<dyn Iterator<Item = OuterCursor> + 'a>;

/// Iterator over `⟨index, value⟩` pairs at the inner level of a matrix
/// or over a vector. A concrete enum rather than a boxed trait object so
/// the common slice-backed cases iterate without virtual dispatch.
pub enum InnerIter<'a> {
    /// Parallel index/value slices (CRS/CCS rows, sparse vectors).
    Pairs { idx: &'a [usize], vals: &'a [f64], pos: usize },
    /// Strided parallel slices: element `k` lives at `base + k*stride`
    /// (ITPACK/ELLPACK stored column-major). `count` entries are real.
    Strided {
        idx: &'a [usize],
        vals: &'a [f64],
        base: usize,
        stride: usize,
        count: usize,
        pos: usize,
    },
    /// A dense contiguous run: index `lo + k` has value `vals[k]`.
    DenseRange { lo: usize, vals: &'a [f64], pos: usize },
    /// Nothing.
    Empty,
    /// Escape hatch for exotic layouts.
    Boxed(Box<dyn Iterator<Item = (usize, f64)> + 'a>),
}

impl<'a> Iterator for InnerIter<'a> {
    type Item = (usize, f64);

    #[inline]
    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            InnerIter::Pairs { idx, vals, pos } => {
                if *pos < idx.len() {
                    let p = *pos;
                    *pos += 1;
                    Some((idx[p], vals[p]))
                } else {
                    None
                }
            }
            InnerIter::Strided { idx, vals, base, stride, count, pos } => {
                if *pos < *count {
                    let at = *base + *pos * *stride;
                    *pos += 1;
                    Some((idx[at], vals[at]))
                } else {
                    None
                }
            }
            InnerIter::DenseRange { lo, vals, pos } => {
                if *pos < vals.len() {
                    let p = *pos;
                    *pos += 1;
                    Some((*lo + p, vals[p]))
                } else {
                    None
                }
            }
            InnerIter::Empty => None,
            InnerIter::Boxed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            InnerIter::Pairs { idx, pos, .. } => {
                let n = idx.len().saturating_sub(*pos);
                (n, Some(n))
            }
            InnerIter::Strided { count, pos, .. } => {
                let n = count.saturating_sub(*pos);
                (n, Some(n))
            }
            InnerIter::DenseRange { vals, pos, .. } => {
                let n = vals.len().saturating_sub(*pos);
                (n, Some(n))
            }
            InnerIter::Empty => (0, Some(0)),
            InnerIter::Boxed(it) => it.size_hint(),
        }
    }
}

/// Iterator over the flat `⟨i, j, value⟩` view of a matrix relation.
pub type FlatIter<'a> = Box<dyn Iterator<Item = (usize, usize, f64)> + 'a>;

/// Access methods of a matrix relation `A(i, j, a)`.
///
/// Implementations must be internally consistent: the hierarchical view
/// (when [`MatMeta::orientation`] is not `Flat`) and the flat view must
/// present exactly the same set of tuples, with indices in *global*
/// space (i.e. any internal permutation already undone — see
/// [`crate::permutation`] for exposing permutations to the planner
/// instead).
pub trait MatrixAccess {
    /// Planner metadata. Must be constant for the lifetime of the value.
    fn meta(&self) -> MatMeta;

    /// Enumerate the outer level. Panics or returns an empty iterator if
    /// the orientation is `Flat` (callers consult `meta()` first; the
    /// plan executor never calls this for flat-oriented relations).
    fn enum_outer(&self) -> OuterIter<'_>;

    /// Locate an outer index, if the outer level supports search.
    fn search_outer(&self, index: usize) -> Option<OuterCursor>;

    /// Enumerate the inner level below an outer cursor.
    fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_>;

    /// Search the inner level below an outer cursor.
    fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64>;

    /// Enumerate every stored `⟨i, j, v⟩` tuple.
    fn enum_flat(&self) -> FlatIter<'_>;

    /// Random probe for a single element; `None` when `(i, j)` is not
    /// stored. Default derives it from the hierarchy when present.
    fn search_pair(&self, i: usize, j: usize) -> Option<f64> {
        match self.meta().orientation {
            Orientation::RowMajor => {
                let c = self.search_outer(i)?;
                self.search_inner(&c, j)
            }
            Orientation::ColMajor => {
                let c = self.search_outer(j)?;
                self.search_inner(&c, i)
            }
            Orientation::Flat => self
                .enum_flat()
                .find(|&(fi, fj, _)| fi == i && fj == j)
                .map(|(_, _, v)| v),
        }
    }
}

/// Access methods of a vector relation `X(i, x)`.
pub trait VectorAccess {
    fn meta(&self) -> VecMeta;
    /// Enumerate stored `⟨index, value⟩` pairs.
    fn enumerate(&self) -> InnerIter<'_>;
    /// Random probe; `None` when the index is not stored.
    fn search(&self, index: usize) -> Option<f64>;
}

impl VectorAccess for [f64] {
    fn meta(&self) -> VecMeta {
        VecMeta::dense(self.len())
    }

    fn enumerate(&self) -> InnerIter<'_> {
        InnerIter::DenseRange { lo: 0, vals: self, pos: 0 }
    }

    #[inline]
    fn search(&self, index: usize) -> Option<f64> {
        self.get(index).copied()
    }
}

impl VectorAccess for &[f64] {
    fn meta(&self) -> VecMeta {
        (**self).meta()
    }

    fn enumerate(&self) -> InnerIter<'_> {
        (**self).enumerate()
    }

    fn search(&self, index: usize) -> Option<f64> {
        (**self).search(index)
    }
}

impl VectorAccess for Vec<f64> {
    fn meta(&self) -> VecMeta {
        self.as_slice().meta()
    }

    fn enumerate(&self) -> InnerIter<'_> {
        self.as_slice().enumerate()
    }

    fn search(&self, index: usize) -> Option<f64> {
        self.as_slice().search(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_vector_access() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(v.meta().len, 3);
        assert_eq!(v.meta().nnz, 3);
        assert!(v.meta().props.is_dense());
        let pairs: Vec<_> = v.enumerate().collect();
        assert_eq!(pairs, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(v.search(1), Some(2.0));
        assert_eq!(v.search(3), None);
    }

    #[test]
    fn inner_iter_pairs() {
        let idx = [1usize, 4, 7];
        let vals = [0.5, 0.25, 0.125];
        let it = InnerIter::Pairs { idx: &idx, vals: &vals, pos: 0 };
        assert_eq!(it.size_hint(), (3, Some(3)));
        let got: Vec<_> = it.collect();
        assert_eq!(got, vec![(1, 0.5), (4, 0.25), (7, 0.125)]);
    }

    #[test]
    fn inner_iter_strided_skips_padding() {
        // Column-major ITPACK layout: 2 rows, width 3, row 0 has 2 real
        // entries, row 1 has 3.
        // storage position of (row r, slot k) = k*2 + r
        let idx = [0usize, 1, 2, 3, 0, 5];
        let vals = [1.0, 2.0, 3.0, 4.0, 0.0, 6.0];
        let row0 = InnerIter::Strided { idx: &idx, vals: &vals, base: 0, stride: 2, count: 2, pos: 0 };
        assert_eq!(row0.collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
        let row1 = InnerIter::Strided { idx: &idx, vals: &vals, base: 1, stride: 2, count: 3, pos: 0 };
        assert_eq!(row1.collect::<Vec<_>>(), vec![(1, 2.0), (3, 4.0), (5, 6.0)]);
    }

    #[test]
    fn inner_iter_dense_range() {
        let vals = [9.0, 8.0];
        let it = InnerIter::DenseRange { lo: 5, vals: &vals, pos: 0 };
        assert_eq!(it.collect::<Vec<_>>(), vec![(5, 9.0), (6, 8.0)]);
    }

    #[test]
    fn inner_iter_empty_and_boxed() {
        assert_eq!(InnerIter::Empty.count(), 0);
        let it = InnerIter::Boxed(Box::new([(3usize, 1.5)].into_iter()));
        assert_eq!(it.collect::<Vec<_>>(), vec![(3, 1.5)]);
    }

    #[test]
    fn orientation_outer_axis() {
        assert_eq!(Orientation::RowMajor.outer_axis(), Some(0));
        assert_eq!(Orientation::ColMajor.outer_axis(), Some(1));
        assert_eq!(Orientation::Flat.outer_axis(), None);
    }

    #[test]
    fn matmeta_avg_inner_len() {
        let m = MatMeta {
            nrows: 4,
            ncols: 8,
            nnz: 12,
            orientation: Orientation::RowMajor,
            outer: LevelProps::dense(),
            inner: LevelProps::sparse_sorted(),
            flat: LevelProps::sparse_sorted(),
            pair_search_cheap: true,
        };
        assert!((m.avg_inner_len() - 3.0).abs() < 1e-12);
        assert_eq!(m.outer_extent(), 4);
        let mut mc = m;
        mc.orientation = Orientation::ColMajor;
        assert!((mc.avg_inner_len() - 1.5).abs() < 1e-12);
        assert_eq!(mc.outer_extent(), 8);
    }
}
