//! Conformance checking for [`MatrixAccess`] implementations.
//!
//! The paper's extensibility story rests on formats honouring the
//! access-method contract; [`check_matrix_access`] verifies it
//! mechanically, so every new format gets the same scrutiny with one
//! test line. Checks:
//!
//! 1. the hierarchical view (if any) and the flat view present the
//!    same multiset of `⟨i, j, v⟩` tuples;
//! 2. enumeration respects the declared [`LevelProps`] sortedness;
//! 3. `search_outer`/`search_inner`/`search_pair` agree with
//!    enumeration (hits return the enumerated value; misses are
//!    indices the enumeration doesn't produce);
//! 4. `meta()` dimensions bound every enumerated index, and `nnz`
//!    equals the flat tuple count.

use crate::access::{MatrixAccess, Orientation};

/// Verify a `MatrixAccess` implementation; returns a description of the
/// first violation found.
pub fn check_matrix_access(m: &dyn MatrixAccess) -> Result<(), String> {
    let meta = m.meta();
    let mut flat: Vec<(usize, usize, f64)> = m.enum_flat().collect();
    if flat.len() != meta.nnz {
        return Err(format!("meta.nnz = {} but flat view has {} tuples", meta.nnz, flat.len()));
    }
    for &(i, j, _) in &flat {
        if i >= meta.nrows || j >= meta.ncols {
            return Err(format!(
                "flat tuple ({i},{j}) outside {}x{}",
                meta.nrows, meta.ncols
            ));
        }
    }
    {
        let mut sorted = flat.clone();
        sorted.sort_by_key(|t| (t.0, t.1));
        for w in sorted.windows(2) {
            if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
                return Err(format!("duplicate tuple at ({}, {})", w[0].0, w[0].1));
            }
        }
    }

    // Hierarchical view, when present.
    if meta.orientation != Orientation::Flat {
        let mut hier: Vec<(usize, usize, f64)> = Vec::new();
        let mut last_outer: Option<usize> = None;
        for cursor in m.enum_outer() {
            if meta.outer.sortedness.is_sorted() {
                if let Some(lo) = last_outer {
                    if cursor.index <= lo {
                        return Err(format!(
                            "outer enumeration not ascending: {} after {lo}",
                            cursor.index
                        ));
                    }
                }
            }
            last_outer = Some(cursor.index);
            let mut last_inner: Option<usize> = None;
            for (inner, v) in m.enum_inner(&cursor) {
                if meta.inner.sortedness.is_sorted() {
                    if let Some(li) = last_inner {
                        if inner <= li {
                            return Err(format!(
                                "inner enumeration of outer {} not ascending: {inner} after {li}",
                                cursor.index
                            ));
                        }
                    }
                }
                last_inner = Some(inner);
                let (i, j) = match meta.orientation {
                    Orientation::RowMajor => (cursor.index, inner),
                    Orientation::ColMajor => (inner, cursor.index),
                    Orientation::Flat => unreachable!(),
                };
                hier.push((i, j, v));
                // Inner search must find this entry.
                if meta.inner.search.supported() {
                    match m.search_inner(&cursor, inner) {
                        Some(got) if got == v => {}
                        other => {
                            return Err(format!(
                                "search_inner({}, {inner}) = {other:?}, enumeration says {v}",
                                cursor.index
                            ))
                        }
                    }
                }
            }
        }
        let key = |t: &(usize, usize, f64)| (t.0, t.1);
        let mut a = hier.clone();
        a.sort_by_key(key);
        flat.sort_by_key(key);
        if a.len() != flat.len() {
            return Err(format!(
                "hierarchical view has {} tuples, flat view {}",
                a.len(),
                flat.len()
            ));
        }
        for (h, f) in a.iter().zip(&flat) {
            if key(h) != key(f) || h.2 != f.2 {
                return Err(format!("views disagree: hierarchical {h:?} vs flat {f:?}"));
            }
        }
    }

    // Pair probes agree with the tuple set.
    for &(i, j, v) in flat.iter().take(200) {
        match m.search_pair(i, j) {
            Some(got) if got == v => {}
            other => return Err(format!("search_pair({i},{j}) = {other:?}, expected {v}")),
        }
    }
    // A handful of definite misses.
    let present: std::collections::HashSet<(usize, usize)> =
        flat.iter().map(|&(i, j, _)| (i, j)).collect();
    let mut misses = 0;
    'probe: for i in 0..meta.nrows.min(20) {
        for j in 0..meta.ncols.min(20) {
            if !present.contains(&(i, j)) {
                if let Some(v) = m.search_pair(i, j) {
                    return Err(format!("search_pair({i},{j}) = Some({v}) for an absent tuple"));
                }
                misses += 1;
                if misses >= 20 {
                    break 'probe;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{FlatIter, InnerIter, MatMeta, OuterCursor, OuterIter};
    use crate::props::LevelProps;
    use crate::testmat::DokMatrix;

    #[test]
    fn dok_matrix_conforms() {
        let m = DokMatrix::from_triplets(
            5,
            6,
            &[(0, 1, 1.0), (0, 4, 2.0), (2, 0, 3.0), (4, 5, 4.0), (4, 0, 5.0)],
        );
        check_matrix_access(&m).unwrap();
    }

    /// A deliberately broken format: claims sorted inner enumeration
    /// but yields descending columns.
    struct LyingFormat {
        inner: DokMatrix,
    }

    impl crate::access::MatrixAccess for LyingFormat {
        fn meta(&self) -> MatMeta {
            self.inner.meta()
        }
        fn enum_outer(&self) -> OuterIter<'_> {
            self.inner.enum_outer()
        }
        fn search_outer(&self, index: usize) -> Option<OuterCursor> {
            self.inner.search_outer(index)
        }
        fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
            let mut v: Vec<(usize, f64)> = self.inner.enum_inner(outer).collect();
            v.reverse(); // violates the declared sortedness
            InnerIter::Boxed(Box::new(v.into_iter()))
        }
        fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
            self.inner.search_inner(outer, index)
        }
        fn enum_flat(&self) -> FlatIter<'_> {
            self.inner.enum_flat()
        }
    }

    #[test]
    fn lying_sortedness_detected() {
        let m = LyingFormat {
            inner: DokMatrix::from_triplets(2, 4, &[(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0)]),
        };
        let err = check_matrix_access(&m).unwrap_err();
        assert!(err.contains("not ascending"), "{err}");
    }

    /// A format whose nnz lies.
    struct WrongNnz {
        inner: DokMatrix,
    }

    impl crate::access::MatrixAccess for WrongNnz {
        fn meta(&self) -> MatMeta {
            MatMeta { nnz: self.inner.nnz() + 1, ..self.inner.meta() }
        }
        fn enum_outer(&self) -> OuterIter<'_> {
            self.inner.enum_outer()
        }
        fn search_outer(&self, index: usize) -> Option<OuterCursor> {
            self.inner.search_outer(index)
        }
        fn enum_inner(&self, outer: &OuterCursor) -> InnerIter<'_> {
            self.inner.enum_inner(outer)
        }
        fn search_inner(&self, outer: &OuterCursor, index: usize) -> Option<f64> {
            self.inner.search_inner(outer, index)
        }
        fn enum_flat(&self) -> FlatIter<'_> {
            self.inner.enum_flat()
        }
    }

    #[test]
    fn wrong_nnz_detected() {
        let m = WrongNnz { inner: DokMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]) };
        let err = check_matrix_access(&m).unwrap_err();
        assert!(err.contains("meta.nnz"), "{err}");
        let _ = LevelProps::dense();
    }
}
