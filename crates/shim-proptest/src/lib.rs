//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking**: a failing case reports its inputs via the
//!   assertion message and the case number; it is not minimised.
//! - **Deterministic seeding**: the RNG seed derives from the test's
//!   module path and name, so failures reproduce exactly on re-run
//!   (upstream defaults to fresh entropy plus a failure-persistence
//!   file; a hermetic CI wants reproducibility instead).

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case (produced by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary name (FNV-1a), so each test gets a
        /// distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (upstream's `Strategy`, minus
    /// shrinking: `generate` replaces `new_tree`).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    ((self.start as i128) + (rng.next_u64() as i128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    ((lo as i128) + (rng.next_u64() as i128) % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for a `Vec` whose elements come from `elem` and whose
    /// length is uniform over `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e,
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Soft assertion inside a property body: on failure, aborts the case
/// with a `TestCaseError` (which the harness turns into a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Soft equality assertion (Debug-prints both sides on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Discard the current case when an assumption fails. (This shim has no
/// rejection bookkeeping: the case simply passes vacuously.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[allow(clippy::manual_range_contains)]
        fn ranges_in_bounds(n in 3usize..17, v in -5i32..6) {
            prop_assert!(n >= 3 && n < 17);
            prop_assert!(v >= -5 && v < 6);
        }

        /// Vec strategy respects size bounds and flat-map chains see
        /// consistent outer values.
        fn vec_and_flat_map(xs in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = xs;
            prop_assert_eq!(v.len(), n);
        }

        /// Just yields its value; tuples compose.
        fn just_and_tuples((a, b) in (Just(41usize), 1usize..2)) {
            prop_assert_eq!(a + b, 42, "a={} b={}", a, b);
        }
    }

    #[test]
    fn determinism_per_name() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        let s = 0usize..1000;
        let a: Vec<usize> = (0..32).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<usize> = (0..32).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
