//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact* subset of the `rand` API its code
//! uses: [`rngs::SmallRng`] seeded with [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range`/`gen_bool`. The
//! generator is a splitmix64 — statistically fine for synthetic test
//! matrices, deterministic per seed, and with no pretence of being the
//! upstream implementation (streams differ from real `rand`; nothing
//! in the workspace depends on the exact stream, only on determinism).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from by a range, mirroring
/// `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                ((lo as i128) + (rng.next_u64() as i128) % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

// No f32 impl: a second float impl would make bare `0.0..2.0` literals
// ambiguous, and the workspace samples only f64.

/// Map 64 random bits to a double in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0..1000)).collect();
        let vc: Vec<usize> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-8i32..9);
            assert!((-8..9).contains(&i));
            let k = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&k));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((2800..4200).contains(&hits), "p=0.35 gave {hits}/10000");
    }
}
