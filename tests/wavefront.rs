//! Wavefront (DO-ACROSS) integration: the dependence analysis licenses
//! the level-parallel SpTRSV/SymGS tier, the obs stream shows both the
//! grant and every refusal, and — the acceptance bar — the parallel
//! tier is *bitwise* identical to the serial sweeps over adversarial
//! inputs (empty rows, dense columns, NaN/Inf values), because a
//! level schedule permutes waves, never the operations within a row.

use bernoulli::{reason, ExecCtx, SptrsvEngine, Strategy as Tier, SymGsEngine, TriangularOp, MIN_MEAN_LEVEL_WIDTH};
use bernoulli_analysis::wavefront::{analyze_wavefront, Triangle};
use bernoulli_formats::{gen, Csr, Triplets};
use bernoulli_obs::Obs;
use bernoulli_solvers::cg::{cg, CgOptions};
use bernoulli_solvers::precond::{IdentityPreconditioner, Preconditioner};
use bernoulli_solvers::symgs::SymGs;
use proptest::prelude::*;

/// The host may have a single core: force a real pool and a zero size
/// gate so the wavefront pass — not the environment — decides.
fn par_ctx() -> ExecCtx {
    ExecCtx::with_threads(2).oversubscribe(true).threshold(1)
}

/// Lower triangle of a stencil matrix, off-diagonals scaled to keep
/// the solve well-conditioned.
fn lower_of(t: &Triplets, scale: f64) -> Csr {
    let lower: Vec<(usize, usize, f64)> = t
        .entries()
        .iter()
        .filter(|&&(i, j, _)| j <= i)
        .map(|&(i, j, v)| (i, j, if i == j { v } else { scale * v }))
        .collect();
    Csr::from_triplets(&Triplets::from_entries(t.nrows(), t.ncols(), &lower))
}

/// Bidiagonal chain: every row depends on its predecessor, so the
/// dependence graph is a single path — one row per level.
fn chain(n: usize) -> Csr {
    let mut e = Vec::new();
    for i in 0..n {
        e.push((i, i, 2.0));
        if i > 0 {
            e.push((i, i - 1, -1.0));
        }
    }
    Csr::from_triplets(&Triplets::from_entries(n, n, &e))
}

#[test]
fn grid_certified_and_chain_refused_both_visible_in_obs() {
    // The ISSUE's acceptance pair: a grid-like operand is certified
    // parallel, a chain-structured one refused, and both decisions are
    // observable as strategy events with level statistics.
    let obs = Obs::enabled();
    let ctx = par_ctx().instrument(obs.clone());

    let grid = lower_of(&gen::grid2d_5pt(16, 16), 0.25);
    let eng =
        SptrsvEngine::compile_in(&grid, TriangularOp::Lower { unit_diag: false }, &ctx).unwrap();
    assert_eq!(eng.strategy(), Tier::Parallel, "downgrade: {}", eng.downgrade());

    let ch = chain(64);
    let ceng =
        SptrsvEngine::compile_in(&ch, TriangularOp::Lower { unit_diag: false }, &ctx).unwrap();
    assert_eq!(ceng.strategy(), Tier::Specialized);
    assert_eq!(ceng.downgrade(), reason::LEVELS_TOO_NARROW);

    let report = obs.report();
    report.validate().unwrap();
    assert_eq!(report.strategies.len(), 2);

    let g = &report.strategies[0];
    assert_eq!((g.op, g.strategy), ("sptrsv", "Parallel"));
    assert_eq!(g.downgrade, "");
    // 16×16 5-point grid, lower triangle: anti-diagonal wavefronts.
    assert_eq!((g.levels, g.max_level_width), (31, 16));
    assert!(g.mean_level_width >= MIN_MEAN_LEVEL_WIDTH, "{}", g.mean_level_width);
    // DO-ANY was consulted and refused — the wavefront certificate,
    // not race-freedom, licensed the parallel tier.
    assert!(g.race_checked && !g.race_safe);

    let c = &report.strategies[1];
    assert_eq!((c.op, c.strategy), ("sptrsv", "Specialized"));
    assert_eq!(c.downgrade, reason::LEVELS_TOO_NARROW);
    assert_eq!((c.levels, c.max_level_width), (64, 1));
    assert!((c.mean_level_width - 1.0).abs() < 1e-12);

    // Running the granted engine hits the level-parallel kernel, and
    // the result matches the serial tier bitwise.
    let n = grid.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 4.0).collect();
    let mut xp = vec![0.0; n];
    eng.run(&grid, &b, &mut xp).unwrap();
    assert!(report_has_kernel(&obs, "par_sptrsv_csr_lower"));
    let serial =
        SptrsvEngine::compile_in(&grid, TriangularOp::Lower { unit_diag: false }, &ExecCtx::default())
            .unwrap();
    let mut xs = vec![0.0; n];
    serial.run(&grid, &b, &mut xs).unwrap();
    for (a, b) in xs.iter().zip(&xp) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

fn report_has_kernel(obs: &Obs, name: &str) -> bool {
    obs.report().kernels.contains_key(name)
}

#[test]
fn non_triangular_operand_is_refused_a_certificate() {
    // Adversarial: one above-diagonal entry makes forward substitution
    // cyclic; the analysis must refuse and the engine must downgrade.
    let t = gen::grid2d_5pt(8, 8);
    let full = Csr::from_triplets(&t); // symmetric stencil: both triangles
    let report =
        analyze_wavefront(full.nrows(), full.rowptr(), full.colind(), Triangle::Lower);
    assert!(!report.is_parallel_safe());

    let eng =
        SptrsvEngine::compile_in(&full, TriangularOp::Lower { unit_diag: false }, &par_ctx())
            .unwrap();
    assert_eq!(eng.strategy(), Tier::Specialized);
    assert_eq!(eng.downgrade(), reason::NOT_TRIANGULAR);
}

#[test]
fn ssor_pcg_beats_plain_cg_on_grid3d_with_residual_history() {
    // Acceptance: CG + SymGS/SSOR on a 3-D stencil converges in fewer
    // iterations than unpreconditioned CG, with both residual
    // histories flowing through the obs solver stream.
    let obs = Obs::enabled();
    let ctx = ExecCtx::default().instrument(obs.clone());
    let t = gen::grid3d_7pt(6, 6, 6);
    let n = t.nrows();
    let a = Csr::from_triplets(&t);
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
    let opts = CgOptions { max_iters: 400, rel_tol: 1e-9 };

    let mut x1 = vec![0.0; n];
    let plain = cg(&a, &IdentityPreconditioner { n }, &b, &mut x1, opts, &ctx).unwrap();
    let ssor = SymGs::new(Csr::from_triplets(&t), &ctx).unwrap();
    let mut x2 = vec![0.0; n];
    let pre = cg(&a, &ssor, &b, &mut x2, opts, &ctx).unwrap();

    assert!(plain.converged && pre.converged);
    assert!(
        pre.iters < plain.iters,
        "SSOR PCG took {} iters vs plain CG's {}",
        pre.iters,
        plain.iters
    );

    let report = obs.report();
    report.validate().unwrap();
    let traces: Vec<_> = report.solvers.iter().filter(|s| s.solver == "cg").collect();
    assert_eq!(traces.len(), 2);
    for (trace, run) in traces.iter().zip([&plain, &pre]) {
        assert_eq!(trace.iters, run.iters);
        assert_eq!(trace.residuals, run.residual_history);
        assert!(trace.residuals.first().copied().unwrap_or(0.0) > *trace.residuals.last().unwrap());
    }
}

/// Random strictly-lower pattern with values drawn from a pool that
/// includes NaN and ±Inf; `dense_col` forces column 0 dense (a fat
/// fan-out that still levels as mostly-parallel), `empty_rows` knocks
/// whole rows out (unit-diagonal case only).
#[allow(clippy::too_many_arguments)]
fn build_lower(
    n: usize,
    masks: &[u32],
    vals_pick: &[u8],
    unit_diag: bool,
    dense_col: bool,
    empty_rows: bool,
) -> Csr {
    const POOL: [f64; 8] =
        [1.0, -2.5, 0.25, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 3.5, -0.125];
    let mut rowptr = vec![0usize];
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    let mut pick = vals_pick.iter().cycle();
    for (i, &mask) in masks.iter().enumerate().take(n) {
        let empty = empty_rows && unit_diag && mask & (1 << 30) != 0;
        if !empty {
            for j in 0..i {
                if (dense_col && j == 0) || mask & (1 << (j % 24)) != 0 {
                    colind.push(j);
                    vals.push(POOL[(*pick.next().unwrap() % 8) as usize]);
                }
            }
            if !unit_diag {
                colind.push(i);
                // The divisor: keep it finite and nonzero so the NaN/Inf
                // chaos stays in the numerators.
                vals.push(2.0 + (i % 3) as f64);
            }
        }
        rowptr.push(colind.len());
    }
    let nnz = colind.len();
    Csr::from_raw(n, n, rowptr, colind, vals[..nnz].to_vec())
}

fn arb_lower_case() -> impl Strategy<Value = (Csr, bool)> {
    (2usize..28, 0usize..8).prop_flat_map(|(n, flags)| {
        (
            proptest::collection::vec(0u32..u32::MAX, n..=n),
            proptest::collection::vec(0u8..=255, 3 * n..=3 * n),
        )
            .prop_map(move |(masks, picks)| {
                let unit = flags & 1 != 0;
                (
                    build_lower(n, &masks, &picks, unit, flags & 2 != 0, flags & 4 != 0),
                    unit,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Level-parallel SpTRSV is bitwise-identical to the serial sweep,
    /// NaN payloads and infinities included, on whatever tier the gate
    /// chain grants.
    #[test]
    fn par_sptrsv_bitwise_equals_serial((a, unit) in arb_lower_case()) {
        let n = a.nrows();
        let op = TriangularOp::Lower { unit_diag: unit };
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) / 3.0 - 2.0).collect();
        let se = SptrsvEngine::compile_in(&a, op, &ExecCtx::default()).unwrap();
        let pe = SptrsvEngine::compile_in(&a, op, &par_ctx()).unwrap();
        let (mut xs, mut xp) = (vec![0.0; n], vec![0.0; n]);
        se.run(&a, &b, &mut xs).unwrap();
        pe.run(&a, &b, &mut xp).unwrap();
        for (p, q) in xs.iter().zip(&xp) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    /// Same for the symmetric Gauss-Seidel sweeps (symmetrized-pattern
    /// schedule): forward + backward, weighted and unweighted.
    #[test]
    fn par_symgs_bitwise_equals_serial(((a, _), omega) in (arb_lower_case(), 0usize..2)) {
        let n = a.nrows();
        let omega = [1.0, 1.4][omega];
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let se = SymGsEngine::compile_in(&a, &ExecCtx::default()).unwrap();
        let pe = SymGsEngine::compile_in(&a, &par_ctx()).unwrap();
        let (mut xs, mut xp) = (vec![1.0; n], vec![1.0; n]);
        se.sweep_forward(&a, omega, &b, &mut xs).unwrap();
        se.sweep_backward(&a, omega, &b, &mut xs).unwrap();
        pe.sweep_forward(&a, omega, &b, &mut xp).unwrap();
        pe.sweep_backward(&a, omega, &b, &mut xp).unwrap();
        for (p, q) in xs.iter().zip(&xp) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    /// SSOR preconditioning is tier-independent end to end: the
    /// wrapped engine applies `M⁻¹` bitwise-identically under a real
    /// thread pool.
    #[test]
    fn ssor_precondition_bitwise_tier_independent((a, _) in arb_lower_case()) {
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) / 4.0 - 2.0).collect();
        let serial = SymGs::new(a.clone(), &ExecCtx::default()).unwrap();
        let par = SymGs::new(a, &par_ctx()).unwrap();
        let (mut zs, mut zp) = (vec![0.0; n], vec![0.0; n]);
        serial.precondition(&r, &mut zs);
        par.precondition(&r, &mut zp);
        for (p, q) in zs.iter().zip(&zp) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
