//! Failure injection: the run-time consistency checks the paper's §3.1
//! calls for ("it can only be verified at run-time if a user specified
//! distribution relation in fact provides a 1-1 and onto map"), plus
//! the compiler's rejection of malformed inputs.

use bernoulli::ast::{programs, AccessRef, ArrayDecl, ExprAst, LoopNest};
use bernoulli::compile::Compiler;
use bernoulli_formats::{FormatKind, SparseMatrix, Triplets};
use bernoulli_relational::access::{MatrixAccess, VecMeta};
use bernoulli_relational::error::RelError;
use bernoulli_relational::exec::Bindings;
use bernoulli_relational::ids::{MAT_A, VAR_I, VAR_J, VEC_X, VEC_Y};
use bernoulli_relational::planner::QueryMeta;
use bernoulli_relational::scalar::UpdateOp;
use bernoulli_spmd::dist::Distribution;

/// A deliberately broken "distribution": claims ownership inconsistent
/// with its local→global map.
struct Inconsistent;

impl Distribution for Inconsistent {
    fn nprocs(&self) -> usize {
        2
    }
    fn len(&self) -> usize {
        4
    }
    fn owner(&self, g: usize) -> (usize, usize) {
        (g % 2, 0) // every index claims local offset 0
    }
    fn local_len(&self, p: usize) -> usize {
        2 - p // sizes 2 and 1: not even onto
    }
    fn to_global(&self, p: usize, l: usize) -> usize {
        p + l
    }
}

#[test]
fn inconsistent_distribution_detected_at_runtime() {
    let err = Inconsistent.validate().unwrap_err();
    assert!(!err.is_empty());
}

#[test]
fn chaos_table_rejects_doubly_owned_indices() {
    use bernoulli_spmd::chaos::ChaosTable;
    use bernoulli_spmd::machine::Machine;
    // Both processors claim global 0 — the table build must panic
    // (caught per-thread, surfacing as a machine panic).
    let result = std::panic::catch_unwind(|| {
        Machine::run(2, |ctx| {
            let owned = vec![0usize]; // both claim index 0
            let _ = ChaosTable::build(ctx, 2, &owned);
        })
    });
    assert!(result.is_err(), "double ownership must be rejected");
}

#[test]
fn compiler_rejects_sparse_target() {
    let mut nest = programs::matvec();
    nest.arrays.iter_mut().find(|a| a.id == VEC_Y).unwrap().sparse = true;
    let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0)]);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let meta = QueryMeta::new()
        .mat(MAT_A, a.meta())
        .vec(VEC_X, VecMeta::dense(3))
        .vec(VEC_Y, VecMeta::dense(3));
    assert!(matches!(
        Compiler::new().compile(&nest, &meta),
        Err(RelError::MalformedQuery(_))
    ));
}

#[test]
fn compiler_rejects_rank_mismatch() {
    let nest = LoopNest::new(
        vec![VAR_I, VAR_J],
        vec![
            ArrayDecl { id: MAT_A, name: "A".into(), rank: 1, sparse: true }, // wrong rank
            ArrayDecl { id: VEC_X, name: "X".into(), rank: 1, sparse: false },
            ArrayDecl { id: VEC_Y, name: "Y".into(), rank: 1, sparse: false },
        ],
        AccessRef::vec(VEC_Y, VAR_I),
        UpdateOp::AddAssign,
        ExprAst::access(AccessRef::mat(MAT_A, VAR_I, VAR_J))
            .mul(ExprAst::access(AccessRef::vec(VEC_X, VAR_J))),
    );
    let meta = QueryMeta::new();
    assert!(Compiler::new().compile(&nest, &meta).is_err());
}

#[test]
fn executor_reports_missing_and_misshapen_bindings() {
    let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0), (1, 2, 2.0)]);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let meta = QueryMeta::new()
        .mat(MAT_A, a.meta())
        .vec(VEC_X, VecMeta::dense(3))
        .vec(VEC_Y, VecMeta::dense(3));
    let k = Compiler::new().compile(&programs::matvec(), &meta).unwrap();

    // Missing x.
    let mut y = vec![0.0; 3];
    let mut b = Bindings::new();
    b.bind_mat(MAT_A, &a).bind_vec_mut(VEC_Y, &mut y);
    assert_eq!(k.run(&mut b), Err(RelError::MissingBinding(VEC_X)));
    drop(b);

    // Wrong-length x.
    let x_bad = vec![0.0; 5];
    let mut y = vec![0.0; 3];
    let mut b = Bindings::new();
    b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x_bad).bind_vec_mut(VEC_Y, &mut y);
    assert!(matches!(k.run(&mut b), Err(RelError::ShapeMismatch { .. })));
    drop(b);

    // Wrong-length target.
    let x = vec![0.0; 3];
    let mut y_bad = vec![0.0; 7];
    let mut b = Bindings::new();
    b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x).bind_vec_mut(VEC_Y, &mut y_bad);
    assert!(matches!(k.run(&mut b), Err(RelError::ShapeMismatch { .. })));

    // Target bound read-only.
    let x = vec![0.0; 3];
    let mut b = Bindings::new();
    b.bind_mat(MAT_A, &a).bind_vec(VEC_X, &x);
    assert_eq!(k.run(&mut b), Err(RelError::NotWritable(VEC_Y)));
}

#[test]
fn planner_reports_missing_metadata() {
    let meta = QueryMeta::new(); // nothing registered
    assert!(matches!(
        Compiler::new().compile(&programs::matvec(), &meta),
        Err(RelError::MissingMeta(_))
    ));
}

#[test]
fn matrix_market_parser_survives_garbage() {
    use bernoulli_formats::io::read_matrix_market;
    use std::io::BufReader;
    for bad in [
        "",
        "not a header\n1 1 0\n",
        "%%MatrixMarket matrix coordinate real general\n",
        "%%MatrixMarket matrix coordinate real general\nx y z\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
        "%%MatrixMarket matrix coordinate complex hermitian\n2 2 1\n1 1 1.0 0.0\n",
    ] {
        assert!(
            read_matrix_market(BufReader::new(bad.as_bytes())).is_err(),
            "parser accepted: {bad:?}"
        );
    }
}
