//! Cross-crate checks that the three `bernoulli-analysis` passes hold
//! over everything the repo actually builds: the race checker
//! certifies the canned kernels, every plan `plan_all` emits verifies
//! clean, and the engines provably refuse `Strategy::Parallel` for a
//! nest the race checker rejects.

use bernoulli::ast::programs;
use bernoulli::engines::{choose_strategy, SpmvEngine};
use bernoulli::lower::extract_query;
use bernoulli::{ExecConfig, Strategy};
use bernoulli_analysis::plan_verify::verify_plan;
use bernoulli_analysis::race::{check_do_any, ParallelCertificate};
use bernoulli_formats::{DenseMatrix, FormatKind, SparseMatrix, SparseVec, Triplets};
use bernoulli_relational::access::{MatrixAccess, VecMeta, VectorAccess};
use bernoulli_relational::ids::{MAT_A, MAT_B, PERM_P, VEC_X, VEC_Y};
use bernoulli_relational::planner::{Planner, QueryMeta};
use bernoulli_relational::scalar::UpdateOp;

fn sample(n: usize, seed: u64) -> Triplets {
    bernoulli_formats::gen::random_sparse(n, n, n * 3, seed)
}

#[test]
fn permuted_matvec_is_certified_parallel_safe() {
    // The §2.2 permuted kernel: Y(i) covers the i↔k bijection, J is
    // reduced over — a reduction certificate, not merely disjoint
    // writes.
    let r = check_do_any(&programs::matvec_row_permuted());
    assert!(r.is_parallel_safe(), "{:?}", r.diagnostics);
    assert_eq!(r.certificate, Some(ParallelCertificate::Reduction));
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn mat_dot_is_reduction_only() {
    // s += A(i,j)·B(i,j) writes a scalar: *no* loop variable is
    // covered, so the certificate rests entirely on commutativity.
    let r = check_do_any(&programs::mat_dot());
    assert_eq!(r.certificate, Some(ParallelCertificate::Reduction));
    // Flip the operator to assignment and the certificate must vanish.
    let mut racy = programs::mat_dot();
    racy.op = UpdateOp::Assign;
    assert!(!check_do_any(&racy).is_parallel_safe());
}

#[test]
fn engines_refuse_parallel_for_racy_nest() {
    // Acceptance criterion: Strategy::Parallel is provably refused for
    // a nest the race checker rejects, through the exact decision
    // function every engine's compile_in routes through.
    let mut racy = programs::matvec();
    racy.op = UpdateOp::Assign;
    // Oversubscribed so the single-worker downgrade (a different,
    // host-dependent gate) stays out of the way of the race gate.
    let exec = ExecConfig::with_threads(4).threshold(1).oversubscribe(true);
    let work = 1 << 20; // far above threshold: only the race gate differs
    assert_eq!(choose_strategy(&racy, true, work, &exec), Strategy::Specialized);
    assert_eq!(choose_strategy(&programs::matvec(), true, work, &exec), Strategy::Parallel);
    // And the engine built from the clean nest does go parallel on the
    // same config — the gate, not the plumbing, made the difference.
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &sample(64, 5));
    let eng =
        SpmvEngine::compile_in(&a, &bernoulli::ExecCtx::with_config(exec)).unwrap();
    assert_eq!(eng.strategy(), Strategy::Parallel);
}

/// Every plan `plan_all` emits for every canned program, across every
/// storage format, passes the independent verifier with zero findings.
#[test]
fn all_plans_for_all_programs_verify_clean() {
    let n = 12;
    let t = sample(n, 9);
    let sv = SparseVec::from_pairs(n, &[(1, 2.0), (5, -1.0), (9, 3.5)]);
    let planner = Planner::default();
    let mut checked = 0usize;

    for kind in FormatKind::ALL {
        let a = SparseMatrix::from_triplets(kind, &t);
        let b = SparseMatrix::from_triplets(kind, &t);
        let dense_multi = DenseMatrix::zeros(n, 3).meta();
        let cases: Vec<(&str, bernoulli::LoopNest, QueryMeta)> = vec![
            (
                "matvec",
                programs::matvec(),
                QueryMeta::new()
                    .mat(MAT_A, a.meta())
                    .vec(VEC_X, VecMeta::dense(n))
                    .vec(VEC_Y, VecMeta::dense(n)),
            ),
            (
                "matvec_transposed",
                programs::matvec_transposed(),
                QueryMeta::new()
                    .mat(MAT_A, a.meta())
                    .vec(VEC_X, VecMeta::dense(n))
                    .vec(VEC_Y, VecMeta::dense(n)),
            ),
            (
                "matmat",
                programs::matmat(),
                QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta()),
            ),
            (
                "matvec_multi",
                programs::matvec_multi(),
                QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, dense_multi),
            ),
            (
                "mat_dot",
                programs::mat_dot(),
                QueryMeta::new().mat(MAT_A, a.meta()).mat(MAT_B, b.meta()),
            ),
            (
                "vec_dot_sparse_sparse",
                programs::vec_dot(true, true),
                QueryMeta::new().vec(VEC_X, sv.meta()).vec(VEC_Y, sv.meta()),
            ),
            (
                "vec_dot_sparse_dense",
                programs::vec_dot(true, false),
                QueryMeta::new().vec(VEC_X, sv.meta()).vec(VEC_Y, VecMeta::dense(n)),
            ),
            (
                "matvec_row_permuted",
                programs::matvec_row_permuted(),
                QueryMeta::new()
                    .mat(MAT_A, a.meta())
                    .vec(VEC_X, VecMeta::dense(n))
                    .vec(VEC_Y, VecMeta::dense(n))
                    .perm(PERM_P, n),
            ),
        ];
        for (name, nest, meta) in cases {
            let q = extract_query(&nest).unwrap_or_else(|e| panic!("{name}: {e}"));
            let plans = planner
                .plan_all(&q, &meta)
                .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"));
            assert!(!plans.is_empty(), "{name} on {kind}: no plans");
            for p in &plans {
                let diags = verify_plan(p, &q, &meta);
                assert!(
                    diags.iter().all(|d| !d.is_error()),
                    "{name} on {kind}, plan `{}`: {diags:?}",
                    p.shape()
                );
                checked += 1;
            }
        }
    }
    // Sanity: the sweep actually covered a meaningful plan population.
    assert!(checked > 100, "only {checked} plans verified");
}
