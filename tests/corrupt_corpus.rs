//! The corrupt-matrix corpus: hand-broken instances of each invariant
//! the format sanitizer (`bernoulli-analysis`, `BA2x`) guards, plus
//! property tests showing valid matrices always lint clean and random
//! single-field corruption is always caught.

use bernoulli_formats::{Csr, FormatKind, JDiag, SparseMatrix, Triplets, Validate};
use bernoulli_relational::permutation::Permutation;
use proptest::prelude::*;

/// First error code a matrix lints with (panics when clean).
fn first_code<M: Validate>(m: &M) -> &'static str {
    let diags = m.validate();
    diags
        .iter()
        .find(|d| d.is_error())
        .unwrap_or_else(|| panic!("expected an error, got {diags:?}"))
        .code
}

/// A well-formed 3×4 CSR to corrupt: rows {0: [0,2], 1: [1,3], 2: [2]}.
fn good_parts() -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    (vec![0, 2, 4, 5], vec![0, 2, 1, 3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0])
}

#[test]
fn ba21_nonmonotone_rowptr() {
    let (_, colind, vals) = good_parts();
    let m = Csr::from_raw_unchecked(3, 4, vec![0, 4, 2, 5], colind, vals);
    assert_eq!(first_code(&m), "BA21");
}

#[test]
fn ba21_rowptr_wrong_end() {
    let (_, colind, vals) = good_parts();
    let m = Csr::from_raw_unchecked(3, 4, vec![0, 2, 4, 9], colind, vals);
    assert_eq!(first_code(&m), "BA21");
}

#[test]
fn ba22_column_index_out_of_bounds() {
    let (rowptr, mut colind, vals) = good_parts();
    colind[3] = 4; // ncols is 4: one past the edge
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    assert_eq!(first_code(&m), "BA22");
}

#[test]
fn ba23_unsorted_columns_within_row() {
    let (rowptr, mut colind, vals) = good_parts();
    colind.swap(0, 1); // row 0 becomes [2, 0]
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    assert_eq!(first_code(&m), "BA23");
}

#[test]
fn ba24_duplicate_column_within_row() {
    let (rowptr, mut colind, vals) = good_parts();
    colind[1] = 0; // row 0 becomes [0, 0]
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    assert_eq!(first_code(&m), "BA24");
}

#[test]
fn ba25_value_array_length_mismatch() {
    let (rowptr, colind, mut vals) = good_parts();
    vals.pop();
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    // rowptr's declared end no longer matches the value count.
    assert_eq!(first_code(&m), "BA21");
    // A pure parallel-array skew (colind vs vals) is the BA25 case.
    let (rowptr, mut colind, vals) = good_parts();
    colind.push(3);
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    assert_eq!(first_code(&m), "BA25");
}

#[test]
fn ba26_non_bijective_jdiag_permutation() {
    let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]);
    let good = JDiag::from_triplets(&t);
    assert!(good.validate_ok().is_ok());
    let (jd_ptr, colind, vals) = good.arrays();
    // Row 2 mapped onto position 0 twice: not a bijection.
    let perm = Permutation::from_raw_parts(vec![0, 1, 0], vec![0, 1, 2]);
    let bad = JDiag::from_raw(3, 3, perm, jd_ptr.to_vec(), colind.to_vec(), vals.to_vec());
    assert_eq!(first_code(&bad), "BA26");
}

#[test]
fn corpus_counterparts_are_clean() {
    // The uncorrupted parts pass every check — each trigger test above
    // differs from this baseline in exactly one field.
    let (rowptr, colind, vals) = good_parts();
    let m = Csr::from_raw_unchecked(3, 4, rowptr, colind, vals);
    assert!(m.validate_ok().is_ok());
}

fn arb_matrix() -> impl Strategy<Value = Triplets> {
    (1usize..10, 1usize..10).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec(
            (0..nr, 0..nc, -100i32..100).prop_map(|(r, c, v)| (r, c, v as f64 / 4.0)),
            0..40,
        )
        .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero false positives: every constructor-built matrix, in every
    /// format, lints clean.
    #[test]
    fn constructed_matrices_always_validate(t in arb_matrix()) {
        for kind in FormatKind::ALL {
            let m = SparseMatrix::from_triplets(kind, &t);
            prop_assert!(m.validate_ok().is_ok(), "format {}: {:?}", kind, m.validate());
        }
    }

    /// Zero false negatives on single-field damage: corrupt one CSR
    /// component at random and the sanitizer must flag it.
    #[test]
    fn single_field_corruption_is_flagged((t, which, pick) in (arb_matrix(), 0usize..4, 0usize..1024)) {
        let c = Csr::from_triplets(&t);
        let (nr, nc) = (c.nrows(), c.ncols());
        let (mut rowptr, mut colind, mut vals) =
            (c.rowptr().to_vec(), c.colind().to_vec(), c.vals().to_vec());
        let nnz = vals.len();
        match which {
            // Break rowptr monotonicity / endpoint.
            0 => rowptr[pick % (nr + 1)] = nnz + 1 + pick,
            // Push a column index out of range.
            1 if nnz > 0 => colind[pick % nnz] = nc + pick,
            // Skew the parallel arrays.
            2 => vals.push(1.0),
            // Claim an extra row the arrays don't describe.
            _ => rowptr.push(nnz),
        }
        let m = Csr::from_raw_unchecked(nr, nc, rowptr, colind, vals);
        let diags = m.validate();
        prop_assert!(
            diags.iter().any(|d| d.is_error()),
            "corruption {} escaped the sanitizer: {:?}", which, diags
        );
    }
}
