//! Bitwise-equivalence of the semiring-generic kernels at `F64Plus`
//! with the pre-refactor f64 kernels.
//!
//! The semiring refactor rewrote every hand-written kernel as
//! `*_in::<S: Semiring>` and deleted most of the f64-only originals.
//! The contract is that at `F64Plus` nothing changed — not "agrees to
//! rounding" but the *same bits*, because the generic code preserves
//! the exact operation order and the f64 instance compiles down to the
//! same `+`/`*`. This suite pins that contract: the pre-refactor
//! kernels are reproduced below as local references (copied from this
//! repo's own history at the refactor base commit) and compared
//! bit-for-bit against the generic kernels over random matrices, for
//! every storage format, serial and parallel.

use bernoulli_formats::{
    Ccs, Cccs, Coo, Csr, DiagonalMatrix, ExecCtx, FormatKind, InodeMatrix, Itpack, JDiag,
    SparseMatrix, Triplets,
};
use bernoulli_formats::{kernels, par_kernels};
use bernoulli_relational::semiring::F64Plus;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Pre-refactor serial references (f64, hand-written per format).
// ---------------------------------------------------------------------

fn ref_spmv_csr(a: &Csr, x: &[f64], y: &mut [f64]) {
    let (rowptr, colind, vals) = (a.rowptr(), a.colind(), a.vals());
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in rowptr[r]..rowptr[r + 1] {
            acc += vals[k] * x[colind[k]];
        }
        *yr += acc;
    }
}

fn ref_spmv_ccs(a: &Ccs, x: &[f64], y: &mut [f64]) {
    let (colp, rowind, vals) = (a.colp(), a.rowind(), a.vals());
    for (j, &xj) in x.iter().enumerate() {
        let (s, e) = (colp[j], colp[j + 1]);
        if xj == 0.0 && vals[s..e].iter().all(|v| v.is_finite()) {
            continue;
        }
        for k in s..e {
            y[rowind[k]] += vals[k] * xj;
        }
    }
}

fn ref_spmv_cccs(a: &Cccs, x: &[f64], y: &mut [f64]) {
    let (colind, colp, rowind, vals) = (a.colind(), a.colp(), a.rowind(), a.vals());
    for (q, &j) in colind.iter().enumerate() {
        let xj = x[j];
        for k in colp[q]..colp[q + 1] {
            y[rowind[k]] += vals[k] * xj;
        }
    }
}

fn ref_spmv_coo(a: &Coo, x: &[f64], y: &mut [f64]) {
    let (rows, cols, vals) = a.arrays();
    for k in 0..vals.len() {
        y[rows[k]] += vals[k] * x[cols[k]];
    }
}

fn ref_spmv_diag(a: &DiagonalMatrix, x: &[f64], y: &mut [f64]) {
    for d in a.diagonals() {
        let i0 = d.first_row;
        let j0 = (i0 as isize + d.offset) as usize;
        let ys = &mut y[i0..i0 + d.vals.len()];
        let xs = &x[j0..j0 + d.vals.len()];
        for ((yv, &xv), &av) in ys.iter_mut().zip(xs).zip(&d.vals) {
            *yv += av * xv;
        }
    }
}

fn ref_spmv_itpack(a: &Itpack, x: &[f64], y: &mut [f64]) {
    let n = a.nrows();
    let (colind, vals) = a.arrays();
    for k in 0..a.width() {
        let base = k * n;
        for (r, yr) in y.iter_mut().enumerate() {
            *yr += vals[base + r] * x[colind[base + r]];
        }
    }
}

fn ref_spmv_jdiag(a: &JDiag, x: &[f64], y: &mut [f64]) {
    let (jd_ptr, colind, vals) = a.arrays();
    let mut work = vec![0.0; a.nrows()];
    for d in 0..a.num_jdiags() {
        let (s, e) = (jd_ptr[d], jd_ptr[d + 1]);
        for (p, k) in (s..e).enumerate() {
            work[p] += vals[k] * x[colind[k]];
        }
    }
    let perm = a.permutation();
    for (p, &w) in work.iter().enumerate() {
        y[perm.backward(p)] += w;
    }
}

fn ref_spmv_inode(a: &InodeMatrix, x: &[f64], y: &mut [f64]) {
    let mut gx: Vec<f64> = Vec::new();
    for g in a.inodes() {
        let w = g.cols.len();
        gx.clear();
        gx.extend(g.cols.iter().map(|&c| x[c]));
        for r in 0..g.rows {
            let row = &g.vals[r * w..(r + 1) * w];
            let mut acc = 0.0;
            for (a_rv, &xv) in row.iter().zip(&gx) {
                acc += a_rv * xv;
            }
            y[g.first_row + r] += acc;
        }
    }
}

fn ref_spmv_csr_transposed(a: &Csr, x: &[f64], y: &mut [f64]) {
    let (rowptr, colind, vals) = (a.rowptr(), a.colind(), a.vals());
    for (r, &xr) in x.iter().enumerate() {
        let (s, e) = (rowptr[r], rowptr[r + 1]);
        if xr == 0.0 && vals[s..e].iter().all(|v| v.is_finite()) {
            continue;
        }
        for k in s..e {
            y[colind[k]] += vals[k] * xr;
        }
    }
}

fn ref_spmm_csr_dense(a: &Csr, x: &[f64], k: usize, y: &mut [f64]) {
    let (rowptr, colind, vals) = (a.rowptr(), a.colind(), a.vals());
    for r in 0..a.nrows() {
        let yrow = &mut y[r * k..(r + 1) * k];
        for p in rowptr[r]..rowptr[r + 1] {
            let av = vals[p];
            let xrow = &x[colind[p] * k..(colind[p] + 1) * k];
            for (yv, &xv) in yrow.iter_mut().zip(xrow) {
                *yv += av * xv;
            }
        }
    }
}

fn ref_spmm_csr_csr(a: &Csr, b: &Csr) -> Csr {
    let mut t = Triplets::new(a.nrows(), b.ncols());
    let mut marker = vec![usize::MAX; b.ncols()];
    let mut acc = vec![0.0f64; b.ncols()];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        touched.clear();
        for (p, &kcol) in a.row_cols(i).iter().enumerate() {
            let av = a.row_vals(i)[p];
            for (q, &j) in b.row_cols(kcol).iter().enumerate() {
                let bv = b.row_vals(kcol)[q];
                if marker[j] != i {
                    marker[j] = i;
                    acc[j] = 0.0;
                    touched.push(j);
                }
                acc[j] += av * bv;
            }
        }
        for &j in &touched {
            if acc[j] != 0.0 {
                t.push(i, j, acc[j]);
            }
        }
    }
    Csr::from_triplets(&t)
}

/// Serial reference dispatch: the pre-refactor `SparseMatrix::spmv_acc`.
fn ref_spmv(m: &SparseMatrix, x: &[f64], y: &mut [f64]) {
    match m {
        // Dense kept its pre-refactor kernel verbatim; it doubles as
        // its own reference.
        SparseMatrix::Dense(d) => d.matvec_acc(x, y),
        SparseMatrix::Coordinate(c) => ref_spmv_coo(c, x, y),
        SparseMatrix::Csr(c) => ref_spmv_csr(c, x, y),
        SparseMatrix::Ccs(c) => ref_spmv_ccs(c, x, y),
        SparseMatrix::Cccs(c) => ref_spmv_cccs(c, x, y),
        SparseMatrix::Diagonal(d) => ref_spmv_diag(d, x, y),
        SparseMatrix::Itpack(i) => ref_spmv_itpack(i, x, y),
        SparseMatrix::JDiag(j) => ref_spmv_jdiag(j, x, y),
        SparseMatrix::Inode(i) => ref_spmv_inode(i, x, y),
    }
}

// ---------------------------------------------------------------------
// Pre-refactor parallel references. The row-major family was (and is)
// bit-identical to serial, so its reference is `ref_spmv`. The scatter
// family (CCS / CCCS / COO) accumulated per-chunk partials serially
// and merged them in fixed chunk order — deterministic for a given
// worker count but re-associated vs serial — reproduced here with the
// same chunk geometry, computed without rayon (the schedule never
// affected the result, only which thread ran which chunk).
// ---------------------------------------------------------------------

fn merge_ref_partials(y: &mut [f64], partials: &[Vec<f64>]) {
    for part in partials {
        for (yv, &pv) in y.iter_mut().zip(part) {
            *yv += pv;
        }
    }
}

fn ref_par_spmv(m: &SparseMatrix, x: &[f64], y: &mut [f64], threads: usize, threshold: usize) {
    let work = match m {
        SparseMatrix::Dense(d) => d.nrows() * d.ncols(),
        _ => m.nnz(),
    };
    if work < threshold {
        return ref_spmv(m, x, y);
    }
    match m {
        SparseMatrix::Ccs(a) => {
            if threads <= 1 || y.is_empty() || a.ncols() < 2 {
                return ref_spmv_ccs(a, x, y);
            }
            let nchunks = threads.min(a.ncols());
            let per = a.ncols().div_ceil(nchunks);
            let partials: Vec<Vec<f64>> = (0..nchunks)
                .map(|c| {
                    let j0 = c * per;
                    let j1 = (j0 + per).min(a.ncols());
                    let mut part = vec![0.0; a.nrows()];
                    let (colp, rowind, vals) = (a.colp(), a.rowind(), a.vals());
                    for j in j0..j1 {
                        let xj = x[j];
                        let (s, e) = (colp[j], colp[j + 1]);
                        if xj == 0.0 && vals[s..e].iter().all(|v| v.is_finite()) {
                            continue;
                        }
                        for k in s..e {
                            part[rowind[k]] += vals[k] * xj;
                        }
                    }
                    part
                })
                .collect();
            merge_ref_partials(y, &partials);
        }
        SparseMatrix::Cccs(a) => {
            let stored = a.colind().len();
            if threads <= 1 || y.is_empty() || stored < 2 {
                return ref_spmv_cccs(a, x, y);
            }
            let nchunks = threads.min(stored);
            let per = stored.div_ceil(nchunks);
            let (colind, colp, rowind, vals) = (a.colind(), a.colp(), a.rowind(), a.vals());
            let partials: Vec<Vec<f64>> = (0..nchunks)
                .map(|c| {
                    let q0 = c * per;
                    let q1 = (q0 + per).min(stored);
                    let mut part = vec![0.0; a.nrows()];
                    for q in q0..q1 {
                        let xj = x[colind[q]];
                        for k in colp[q]..colp[q + 1] {
                            part[rowind[k]] += vals[k] * xj;
                        }
                    }
                    part
                })
                .collect();
            merge_ref_partials(y, &partials);
        }
        SparseMatrix::Coordinate(a) => {
            let nnz = a.nnz();
            if threads <= 1 || y.is_empty() || nnz < 2 {
                return ref_spmv_coo(a, x, y);
            }
            let nchunks = threads.min(nnz);
            let per = nnz.div_ceil(nchunks);
            let (rows, cols, vals) = a.arrays();
            let partials: Vec<Vec<f64>> = (0..nchunks)
                .map(|c| {
                    let k0 = c * per;
                    let k1 = (k0 + per).min(nnz);
                    let mut part = vec![0.0; a.nrows()];
                    for k in k0..k1 {
                        part[rows[k]] += vals[k] * x[cols[k]];
                    }
                    part
                })
                .collect();
            merge_ref_partials(y, &partials);
        }
        // Row-major family: parallel was defined to be bit-identical
        // to serial for any worker count.
        _ => ref_spmv(m, x, y),
    }
}

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

fn arb_matrix() -> impl Strategy<Value = Triplets> {
    (1usize..10, 1usize..10).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec(
            (0..nr, 0..nc, -64i32..64).prop_map(|(r, c, v)| (r, c, v as f64 / 8.0)),
            0..50,
        )
        .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries))
    })
}

/// Vector with exact dyadic values (and plenty of zeros, to exercise
/// the CCS / transposed-CSR zero-column skip).
fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-16i32..16).prop_map(|v| v as f64 / 4.0), len..=len)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial: `spmv_acc_in::<F64Plus>` is byte-identical to the
    /// pre-refactor kernel for every storage format.
    #[test]
    fn serial_generic_spmv_bitwise_equals_f64((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        for kind in FormatKind::ALL {
            let m = SparseMatrix::from_triplets(kind, &t);
            let mut y_gen = vec![0.25; t.nrows()];
            let mut y_ref = vec![0.25; t.nrows()];
            m.spmv_acc_in::<F64Plus>(&x, &mut y_gen);
            ref_spmv(&m, &x, &mut y_ref);
            prop_assert_eq!(bits(&y_gen), bits(&y_ref), "format {}", kind);
        }
    }

    /// Parallel: `par_spmv_acc_in::<F64Plus>` at 4 workers is
    /// byte-identical to the pre-refactor parallel kernel (row family:
    /// same bits as serial; scatter family: same chunk-partial bits).
    #[test]
    fn parallel_generic_spmv_bitwise_equals_f64((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let exec = ExecCtx::with_threads(4).threshold(1);
        for kind in FormatKind::ALL {
            let m = SparseMatrix::from_triplets(kind, &t);
            let mut y_gen = vec![-0.5; t.nrows()];
            let mut y_ref = vec![-0.5; t.nrows()];
            m.par_spmv_acc_in::<F64Plus>(&x, &mut y_gen, &exec);
            ref_par_spmv(&m, &x, &mut y_ref, 4, 1);
            prop_assert_eq!(bits(&y_gen), bits(&y_ref), "format {}", kind);
        }
    }

    /// Transposed SpMV and both SpMM kernels, serial + parallel: the
    /// generic code path behind the surviving f64 wrappers is
    /// byte-identical to the pre-refactor loops.
    #[test]
    fn generic_transposed_and_spmm_bitwise_equal_f64((t, u, k) in arb_matrix().prop_flat_map(|t| {
        let nr = t.nrows();
        (Just(t), arb_vec(nr), 1usize..4)
    })) {
        let a = Csr::from_triplets(&t);
        // Aᵀ·x.
        let mut y_gen = vec![0.0; a.ncols()];
        let mut y_ref = vec![0.0; a.ncols()];
        kernels::spmv_csr_transposed_in::<F64Plus>(&a, &u, &mut y_gen);
        ref_spmv_csr_transposed(&a, &u, &mut y_ref);
        prop_assert_eq!(bits(&y_gen), bits(&y_ref));
        // A·X with a skinny dense X (entries derived from u, dyadic).
        let x: Vec<f64> = (0..a.ncols() * k).map(|i| ((i % 7) as f64) * 0.5 - 1.5).collect();
        let exec = ExecCtx::with_threads(4).threshold(1);
        let mut y_gen = vec![0.0; a.nrows() * k];
        let mut y_ref = vec![0.0; a.nrows() * k];
        kernels::spmm_csr_dense_in::<F64Plus>(&a, &x, k, &mut y_gen);
        ref_spmm_csr_dense(&a, &x, k, &mut y_ref);
        prop_assert_eq!(bits(&y_gen), bits(&y_ref));
        let mut y_par = vec![0.0; a.nrows() * k];
        par_kernels::par_spmm_csr_dense_in::<F64Plus>(&a, &x, k, &mut y_par, &exec);
        prop_assert_eq!(bits(&y_par), bits(&y_ref), "par_spmm_csr_dense");
        // A·Aᵀ as a sparse×sparse product (Gustavson).
        let b = Csr::from_triplets(&t.transposed());
        let c_ref = ref_spmm_csr_csr(&a, &b);
        for c in [kernels::spmm_csr_csr(&a, &b), par_kernels::par_spmm_csr_csr(&a, &b, &exec)] {
            prop_assert_eq!(c.rowptr(), c_ref.rowptr());
            prop_assert_eq!(c.colind(), c_ref.colind());
            prop_assert_eq!(bits(c.vals()), bits(c_ref.vals()));
        }
    }
}

/// Non-finite values must flow through the generic zero-column skip
/// exactly as the pre-refactor finiteness gate did: a NaN/Inf column
/// scaled by 0.0 still reaches `y` (as NaN), a finite column does not.
#[test]
fn non_finite_columns_keep_the_pre_refactor_gate() {
    let t = Triplets::from_entries(
        3,
        3,
        &[
            (0, 0, f64::NAN),
            (1, 1, 2.0),
            (2, 2, f64::INFINITY),
        ],
    );
    let x = vec![0.0, 0.0, 0.0];
    let a = Ccs::from_triplets(&t);
    let mut y_gen = vec![1.0; 3];
    let mut y_ref = vec![1.0; 3];
    kernels::spmv_ccs_in::<F64Plus>(&a, &x, &mut y_gen);
    ref_spmv_ccs(&a, &x, &mut y_ref);
    assert_eq!(bits(&y_gen), bits(&y_ref));
    assert!(y_gen[0].is_nan() && y_gen[2].is_nan() && y_gen[1] == 1.0);

    let c = Csr::from_triplets(&t);
    let mut y_gen = vec![1.0; 3];
    let mut y_ref = vec![1.0; 3];
    kernels::spmv_csr_transposed_in::<F64Plus>(&c, &x, &mut y_gen);
    ref_spmv_csr_transposed(&c, &x, &mut y_ref);
    assert_eq!(bits(&y_gen), bits(&y_ref));
    assert!(y_gen[0].is_nan() && y_gen[2].is_nan() && y_gen[1] == 1.0);
}
