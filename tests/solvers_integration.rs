//! Cross-crate solver integration: every iterative method over the
//! compiled engines, agreeing on the same solutions.

use bernoulli::engines::SpmvEngine;
use bernoulli::ExecCtx;
use bernoulli_formats::gen::{fem_grid_2d, table1_suite, Scale};
use bernoulli_formats::{FormatKind, SparseMatrix, Triplets};
use bernoulli_solvers::cg::{cg, CgOptions};
use bernoulli_solvers::gmres::{gmres, GmresOptions};
use bernoulli_solvers::ic0::Ic0;
use bernoulli_solvers::precond::DiagonalPreconditioner;
use bernoulli_solvers::stationary::{chebyshev, jacobi};

fn engine_matvec<'a>(
    eng: &'a SpmvEngine,
    a: &'a SparseMatrix,
) -> impl FnMut(&[f64], &mut [f64]) + 'a {
    move |v, out| {
        out.fill(0.0);
        eng.run(a, v, out).unwrap();
    }
}

fn residual(t: &Triplets, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; b.len()];
    t.matvec_acc(x, &mut ax);
    ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt()
}

#[test]
fn all_krylov_methods_agree_through_compiled_engines() {
    let t = fem_grid_2d(7, 6, 2);
    let n = t.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 5 % 13) as f64) * 0.3).collect();
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let eng = SpmvEngine::compile(&a).unwrap();
    let diag = DiagonalPreconditioner::from_matrix(&t);

    let op = eng.bind(&a);

    // CG (SPD) with diagonal preconditioning.
    let mut x_cg = vec![0.0; n];
    let r = cg(
        &op,
        &diag,
        &b,
        &mut x_cg,
        CgOptions { max_iters: 2000, rel_tol: 1e-11 },
        &ExecCtx::default(),
    )
    .unwrap();
    assert!(r.converged);

    // CG with IC(0).
    let ic = Ic0::factor(&t).unwrap();
    let mut x_ic = vec![0.0; n];
    let r_ic = cg(
        &op,
        &ic,
        &b,
        &mut x_ic,
        CgOptions { max_iters: 2000, rel_tol: 1e-11 },
        &ExecCtx::default(),
    )
    .unwrap();
    assert!(r_ic.converged);
    assert!(r_ic.iters <= r.iters, "IC(0) must not be slower in iterations");

    // GMRES over the same bound operator.
    let mut x_gm = vec![0.0; n];
    let r_gm = gmres(
        &op,
        &diag,
        &b,
        &mut x_gm,
        GmresOptions { restart: 30, max_iters: 3000, rel_tol: 1e-11 },
        &ExecCtx::default(),
    )
    .unwrap();
    assert!(r_gm.converged);

    // All three solutions agree.
    for i in 0..n {
        assert!((x_cg[i] - x_ic[i]).abs() < 1e-6, "CG vs IC0-PCG at {i}");
        assert!((x_cg[i] - x_gm[i]).abs() < 1e-6, "CG vs GMRES at {i}");
    }
    assert!(residual(&t, &x_cg, &b) < 1e-7);
}

#[test]
fn stationary_methods_converge_through_compiled_engines() {
    let t = fem_grid_2d(6, 6, 1);
    let n = t.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i % 4) as f64 - 1.5).collect();
    let a = SparseMatrix::from_triplets(FormatKind::Ccs, &t); // column-major engine
    let eng = SpmvEngine::compile(&a).unwrap();
    let diag = DiagonalPreconditioner::from_matrix(&t);

    let mut x_j = vec![0.0; n];
    let rj = jacobi(engine_matvec(&eng, &a), &diag, &b, &mut x_j, 0.9, 20000, 1e-8);
    assert!(rj.converged, "jacobi residual {}", rj.final_residual);

    // Gershgorin bounds of the generator's 2·(Laplacian + I) on a 2-D
    // grid: [2, 18].
    let mut x_c = vec![0.0; n];
    let rc = chebyshev(engine_matvec(&eng, &a), &b, &mut x_c, 2.0, 18.0, 20000, 1e-8);
    assert!(rc.converged, "chebyshev residual {}", rc.final_residual);

    for i in 0..n {
        assert!((x_j[i] - x_c[i]).abs() < 1e-5);
    }
}

#[test]
fn gmres_solves_every_suite_matrix_through_engines() {
    // Including the unsymmetric circuit twin, where CG is inapplicable.
    for m in table1_suite(Scale::Small) {
        let s = m.stats();
        if s.nrows > 3000 {
            continue; // keep the test fast (memplus runs in benches)
        }
        let n = s.nrows;
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &m.triplets);
        let eng = SpmvEngine::compile(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let diag = DiagonalPreconditioner::from_matrix(&m.triplets);
        let mut x = vec![0.0; n];
        let r = gmres(
            &eng.bind(&a),
            &diag,
            &b,
            &mut x,
            GmresOptions { restart: 50, max_iters: 6000, rel_tol: 1e-8 },
            &ExecCtx::default(),
        )
        .unwrap();
        assert!(
            r.converged,
            "{}: residual {} after {} matvecs",
            m.name, r.final_residual, r.iters
        );
    }
}

#[test]
fn ic0_handles_every_spd_suite_matrix() {
    for m in table1_suite(Scale::Small) {
        let s = m.stats();
        if !s.symmetric || s.nrows > 3000 {
            continue;
        }
        // Shifted factorisation always succeeds on these.
        let ic = Ic0::factor_shifted(&m.triplets, 8);
        assert!(ic.is_ok(), "{}: {:?}", m.name, ic.err());
    }
}
