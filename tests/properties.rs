//! Property-based tests (proptest) on the core invariants:
//! format round-trips, kernel equivalence, permutations, distribution
//! relations, and inspector communication-set correctness.

use bernoulli::engines::SpmvEngine;
use bernoulli_formats::{FormatKind, SparseMatrix, Triplets};
use bernoulli_relational::permutation::Permutation;
use bernoulli_spmd::dist::{
    BlockCyclicDist, BlockDist, CyclicDist, Distribution, GeneralizedBlockDist, IndirectDist,
};
use proptest::prelude::*;

/// Strategy: a small random matrix as (nrows, ncols, entries).
fn arb_matrix() -> impl Strategy<Value = Triplets> {
    (1usize..12, 1usize..12).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec(
            (0..nr, 0..nc, -100i32..100).prop_map(|(r, c, v)| (r, c, v as f64 / 4.0)),
            0..60,
        )
        .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries))
    })
}

/// Strategy: a dense vector of a given length.
fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-50i32..50).prop_map(|v| v as f64 / 8.0), len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triplets → any format → triplets is the identity on the
    /// canonical form.
    #[test]
    fn format_roundtrip(t in arb_matrix()) {
        let canon = t.canonicalize();
        for kind in FormatKind::ALL {
            let m = SparseMatrix::from_triplets(kind, &t);
            prop_assert_eq!(m.to_triplets().canonicalize(), canon.clone(), "format {}", kind);
        }
    }

    /// Every format's hand-written SpMV kernel computes the same y.
    #[test]
    fn spmv_kernels_equivalent((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let mut want = vec![0.0; t.nrows()];
        t.matvec_acc(&x, &mut want);
        for kind in FormatKind::ALL {
            let m = SparseMatrix::from_triplets(kind, &t);
            let mut y = vec![0.0; t.nrows()];
            m.spmv_acc(&x, &mut y);
            for (a, b) in y.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-9, "format {}: {} vs {}", kind, a, b);
            }
        }
    }

    /// The compiled engine equals the hand-written kernel for every
    /// format (compiler correctness property).
    #[test]
    fn compiled_engine_equals_reference((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let mut want = vec![0.0; t.nrows()];
        t.matvec_acc(&x, &mut want);
        for kind in [FormatKind::Csr, FormatKind::Ccs, FormatKind::Cccs,
                     FormatKind::Coordinate, FormatKind::Diagonal, FormatKind::Itpack,
                     FormatKind::JDiag, FormatKind::Inode] {
            let m = SparseMatrix::from_triplets(kind, &t);
            // Both strategies.
            for spec in [true, false] {
                let eng = SpmvEngine::compile_in(
                    &m,
                    &bernoulli::ExecCtx::default().specialization(spec),
                )
                .unwrap();
                let mut y = vec![0.0; t.nrows()];
                eng.run(&m, &x, &mut y).unwrap();
                for (a, b) in y.iter().zip(&want) {
                    prop_assert!((a - b).abs() < 1e-9,
                        "format {} specialize={}", kind, spec);
                }
            }
        }
    }

    /// Permutations are bijections with consistent inverses and
    /// composition.
    #[test]
    fn permutation_laws(seed in proptest::collection::vec(0u64..1000, 1..20)) {
        let p = Permutation::sorting(&seed);
        let n = p.len();
        for i in 0..n {
            prop_assert_eq!(p.backward(p.forward(i)), i);
        }
        let q = p.inverse();
        let id = p.compose(&q).unwrap();
        for i in 0..n {
            prop_assert_eq!(id.forward(i), i);
        }
        let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(p.unapply_to_vec(&p.apply_to_vec(&v)), v);
    }

    /// Every distribution relation is a 1–1, onto map, and
    /// owner/to_global are mutually inverse.
    #[test]
    fn distributions_are_bijective(n in 1usize..200, p in 1usize..9, b in 1usize..16, seed in 0u64..1000) {
        BlockDist::new(n, p).validate().unwrap();
        CyclicDist::new(n, p).validate().unwrap();
        BlockCyclicDist::new(n, p, b).validate().unwrap();
        // Generalized block with random sizes summing to n.
        let mut sizes = vec![n / p; p];
        sizes[(seed as usize) % p] += n % p;
        GeneralizedBlockDist::new(&sizes).validate().unwrap();
        // Indirect with a deterministic pseudo-random map.
        let map: Vec<usize> = (0..n).map(|g| ((g as u64).wrapping_mul(seed + 1) % p as u64) as usize).collect();
        IndirectDist::new(p, map).validate().unwrap();
    }

    /// The inspector's receive sets are exactly the nonlocal used
    /// indices, and send/recv volumes balance machine-wide.
    #[test]
    fn inspector_schedules_are_exact(n in 8usize..60, p in 2usize..5, seed in 0u64..500) {
        use bernoulli_spmd::inspector::CommSchedule;
        use bernoulli_spmd::machine::Machine;
        let dist = BlockDist::new(n, p);
        // Each proc uses a deterministic pseudo-random set of indices.
        let used_of = |me: usize| -> Vec<usize> {
            let mut v: Vec<usize> = (0..n)
                .filter(|&g| (g as u64 * 31 + me as u64 * 17 + seed).is_multiple_of(5))
                .filter(|&g| dist.owner(g).0 != me)
                .collect();
            v.dedup();
            v
        };
        let out = Machine::run(p, |ctx| {
            let sched = CommSchedule::build_replicated(ctx, &dist, &used_of(ctx.rank()));
            (sched.recv_volume(), sched.send_volume(),
             sched.recv_globals.concat(), sched.num_ghosts)
        });
        let recv_total: usize = out.results.iter().map(|r| r.0).sum();
        let send_total: usize = out.results.iter().map(|r| r.1).sum();
        prop_assert_eq!(recv_total, send_total, "volumes must balance");
        for (me, (_, _, recv_globals, num_ghosts)) in out.results.iter().enumerate() {
            let mut want = used_of(me);
            want.sort_unstable();
            let mut got = recv_globals.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "proc {} receives exactly its used set", me);
            prop_assert_eq!(*num_ghosts, want.len());
        }
    }

    /// Matrix Market writing/parsing round-trips arbitrary matrices.
    #[test]
    fn matrix_market_roundtrip(t in arb_matrix()) {
        let mut buf = Vec::new();
        bernoulli_formats::io::write_matrix_market(&t, &mut buf).unwrap();
        let back = bernoulli_formats::io::read_matrix_market(
            std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.canonicalize(), t.canonicalize());
    }

    /// BSR round-trips and its blocked SpMV matches the reference for
    /// every block size dividing the dimensions.
    #[test]
    fn bsr_roundtrip_and_spmv(nb in 1usize..5, bsz in 1usize..4, entries in
        proptest::collection::vec((0usize..144, -40i32..40), 0..50))
    {
        use bernoulli_formats::Bsr;
        let n = nb * bsz;
        let t = Triplets::from_entries(
            n, n,
            &entries.iter()
                .map(|&(k, v)| ((k / 12) % n, k % n, v as f64 / 4.0))
                .collect::<Vec<_>>(),
        );
        let m = Bsr::from_triplets(&t, bsz);
        prop_assert_eq!(m.to_triplets().canonicalize(), t.canonicalize());
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut want = vec![0.0; n];
        t.matvec_acc(&x, &mut want);
        let mut y = vec![0.0; n];
        m.spmv_acc(&x, &mut y);
        for (a, b) in y.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Skyline round-trips any symmetric matrix.
    #[test]
    fn skyline_roundtrip(n in 1usize..10, entries in
        proptest::collection::vec((0usize..100, -40i32..40), 0..40))
    {
        use bernoulli_formats::Skyline;
        let mut t = Triplets::new(n, n);
        for &(k, v) in &entries {
            let (r, c) = ((k / 10) % n, k % n);
            t.push_sym(r, c, v as f64 / 4.0);
        }
        let s = Skyline::from_triplets(&t);
        prop_assert_eq!(s.to_triplets().canonicalize(), t.canonicalize());
        prop_assert!(s.envelope() >= s.to_triplets().canonicalize().len() / 2);
    }

    /// Sparse vectors: round-trip, and both dot products agree with
    /// the dense computation.
    #[test]
    fn sparsevec_laws(n in 1usize..40, pairs_a in
        proptest::collection::vec((0usize..1000, -30i32..30), 0..30),
        pairs_b in proptest::collection::vec((0usize..1000, -30i32..30), 0..30))
    {
        use bernoulli_formats::SparseVec;
        let mk = |pairs: &[(usize, i32)]| {
            SparseVec::from_pairs(
                n,
                &pairs.iter().map(|&(i, v)| (i % n, v as f64 / 2.0)).collect::<Vec<_>>(),
            )
        };
        let a = mk(&pairs_a);
        let b = mk(&pairs_b);
        let (da, db) = (a.to_dense(), b.to_dense());
        prop_assert_eq!(SparseVec::from_dense(&da), a.clone());
        let want: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        prop_assert!((a.dot_sparse(&b) - want).abs() < 1e-9);
        prop_assert!((a.dot_dense(&db) - want).abs() < 1e-9);
    }

    /// Tree all-reduce computes the exact sum/max at every machine size.
    #[test]
    fn tree_allreduce_correct(p in 1usize..12, seed in 0u64..1000) {
        use bernoulli_spmd::machine::Machine;
        let vals: Vec<f64> = (0..p).map(|r| ((r as u64 * 37 + seed) % 100) as f64 - 50.0).collect();
        let want_sum: f64 = vals.iter().sum();
        let want_max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let out = Machine::run(p, |ctx| {
            (ctx.all_reduce_sum(vals[ctx.rank()]), ctx.all_reduce_max(vals[ctx.rank()]))
        });
        for &(s, m) in &out.results {
            prop_assert!((s - want_sum).abs() < 1e-9);
            prop_assert_eq!(m, want_max);
        }
    }

    /// IC(0) of an SPD grid-like matrix: M⁻¹ application is symmetric
    /// positive (zᵀr > 0 for r ≠ 0) — the property PCG relies on.
    #[test]
    fn ic0_preconditioner_spd_action(seed in 0u64..50) {
        use bernoulli_solvers::ic0::Ic0;
        use bernoulli_solvers::precond::Preconditioner;
        let t = bernoulli_formats::gen::grid2d_5pt(5, 5);
        let n = t.nrows();
        let f = Ic0::factor(&t).unwrap();
        let r: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + 1) * (seed + 3)) % 17) as f64 - 8.0)
            .collect();
        if r.iter().all(|&x| x == 0.0) {
            return Ok(());
        }
        let mut z = vec![0.0; n];
        f.precondition(&r, &mut z);
        let zr: f64 = z.iter().zip(&r).map(|(a, b)| a * b).sum();
        prop_assert!(zr > 0.0, "zᵀr = {zr}");
    }

    /// Transposing twice is the identity; SpMV with Aᵀ equals
    /// transposed-SpMV with A.
    #[test]
    fn transpose_laws((t, x) in arb_matrix().prop_flat_map(|t| {
        let nr = t.nrows();
        (Just(t), arb_vec(nr))
    })) {
        let a = bernoulli_formats::Csr::from_triplets(&t);
        prop_assert_eq!(a.transposed().transposed(), a.clone());
        let mut y1 = vec![0.0; t.ncols()];
        bernoulli_formats::kernels::spmv_csr_transposed(&a, &x, &mut y1);
        let mut y2 = vec![0.0; t.ncols()];
        bernoulli_formats::kernels::spmv_csr(&a.transposed(), &x, &mut y2);
        for (p1, p2) in y1.iter().zip(&y2) {
            prop_assert!((p1 - p2).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row-family parallel SpMV is bit-identical to the serial kernel
    /// for any worker count: row-block partitioning preserves the
    /// per-element accumulation order of every row.
    #[test]
    fn par_spmv_row_family_bit_identical((t, x, threads) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc), 2usize..6)
    })) {
        use bernoulli_formats::ExecCtx;
        let exec = ExecCtx::with_threads(threads).threshold(1);
        for kind in [
            FormatKind::Dense,
            FormatKind::Csr,
            FormatKind::Diagonal,
            FormatKind::Itpack,
            FormatKind::JDiag,
            FormatKind::Inode,
        ] {
            let a = SparseMatrix::from_triplets(kind, &t);
            let mut y_ser = vec![1.0; t.nrows()];
            let mut y_par = vec![1.0; t.nrows()];
            a.spmv_acc(&x, &mut y_ser);
            a.par_spmv_acc(&x, &mut y_par, &exec);
            prop_assert_eq!(&y_ser, &y_par, "format {} threads {}", kind, threads);
        }
    }

    /// Reduction-family parallel SpMV (column-major and flat formats,
    /// merged from per-chunk partial vectors) matches serial to within
    /// re-association rounding.
    #[test]
    fn par_spmv_reduction_family_close((t, x, threads) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc), 2usize..6)
    })) {
        use bernoulli_formats::ExecCtx;
        let exec = ExecCtx::with_threads(threads).threshold(1);
        for kind in [FormatKind::Ccs, FormatKind::Cccs, FormatKind::Coordinate] {
            let a = SparseMatrix::from_triplets(kind, &t);
            let mut y_ser = vec![1.0; t.nrows()];
            let mut y_par = vec![1.0; t.nrows()];
            a.spmv_acc(&x, &mut y_ser);
            a.par_spmv_acc(&x, &mut y_par, &exec);
            for (s, p) in y_ser.iter().zip(&y_par) {
                prop_assert!(
                    (s - p).abs() <= 1e-12 * s.abs().max(1.0),
                    "format {} threads {}: {} vs {}", kind, threads, s, p
                );
            }
        }
    }

    /// Degenerate shapes — all-empty rows and columns — survive every
    /// parallel kernel (the chunking math must not panic on them).
    #[test]
    fn par_spmv_handles_empty_rows_and_cols((nr, nc, threads) in (1usize..20, 1usize..20, 2usize..9)) {
        use bernoulli_formats::ExecCtx;
        let t = Triplets::from_entries(nr, nc, &[]);
        let exec = ExecCtx::with_threads(threads).threshold(1);
        let x = vec![1.0; nc];
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &t);
            let mut y = vec![0.5; nr];
            a.par_spmv_acc(&x, &mut y, &exec);
            for v in &y {
                prop_assert_eq!(*v, 0.5, "format {}", kind);
            }
        }
    }
}
