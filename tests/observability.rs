//! Observability golden tests: the EXPLAIN text and the JSON report
//! schema are contracts — `scripts/ci.sh` diffs profiles across PRs,
//! so any change here is a deliberate schema bump, not drift. Plus the
//! headline zero-cost guarantee: with a disabled handle, every
//! instrumented path produces byte-identical results to the
//! uninstrumented one.

use bernoulli::ast::programs;
use bernoulli::compile::Compiler;
use bernoulli::engines::{SpmmEngine, SpmvEngine, SpmvMultiEngine};
use bernoulli::ExecCtx;
use bernoulli_formats::{gen, Csr, FormatKind, SparseMatrix, Triplets};
use bernoulli_obs::events::{
    CalibrationEvent, KernelCounters, PlanEvent, SolverTrace, StrategyEvent, TrafficEvent,
    TrafficSample,
};
use bernoulli_obs::report::{Report, SCHEMA};
use bernoulli_obs::Obs;
use bernoulli_relational::access::{MatrixAccess, VecMeta};
use bernoulli_relational::ids::{MAT_A, VEC_X, VEC_Y};
use bernoulli_relational::planner::QueryMeta;
use bernoulli_solvers::cg::{cg, CgOptions};
use bernoulli_solvers::gmres::{gmres, GmresOptions};
use bernoulli_solvers::precond::DiagonalPreconditioner;

fn plan_event_for(a: &SparseMatrix, n: usize) -> PlanEvent {
    let meta = QueryMeta::new()
        .mat(MAT_A, a.meta())
        .vec(VEC_X, VecMeta::dense(n))
        .vec(VEC_Y, VecMeta::dense(n));
    let obs = Obs::enabled();
    Compiler::in_ctx(&ExecCtx::default().instrument(obs.clone()))
        .compile(&programs::matvec(), &meta)
        .unwrap();
    obs.report().plans.remove(0)
}

#[test]
fn explain_golden_hierarchical_csr() {
    // The full EXPLAIN for the canonical CSR matvec plan, pinned
    // byte-for-byte: join order, per-level properties, the search-join
    // justification. Changing this text is a provenance-schema change.
    let t = gen::grid2d_5pt(8, 8);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let p = plan_event_for(&a, t.nrows());
    assert_eq!(p.op, "Y(i) += (val(A) * val(X))");
    assert_eq!(p.shape, "i:outer(A)>j:inner(A)[X?]");
    assert_eq!(p.est_cost, 928.0);
    assert_eq!(p.candidates, 11);
    assert_eq!(
        p.runners_up.first().map(|(s, c)| (s.as_str(), *c)),
        Some(("i:range[A?]>j:inner(A)[X?]", 992.0))
    );
    assert_eq!(
        p.explain,
        "plan i:outer(A)>j:inner(A)[X?] (est cost 928.0)\n\
         stmt: Y(i) += (val(A) * val(X))\n\
         predicate: NZ(A)\n\
         for i in outer(A) -- level sorted/Constant/dense, ~64 candidates/start\n\
         \x20 for j in inner(A) -- level sorted/Logarithmic/sparse, ~4.5 candidates/start\n\
         \x20   probe X(j) -- search join: partner sorted/Constant/dense, O(1) direct index; \
         value supply (miss contributes 0)\n"
    );
}

#[test]
fn explain_golden_flat_coordinate() {
    // A too-sparse matrix (avg row < 2) makes the flat scatter plan
    // win even for CSR; the EXPLAIN says so in terms of stored tuples.
    let t = Triplets::from_entries(
        4,
        4,
        &[(0, 0, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 1, 4.0), (3, 0, 5.0), (3, 3, 6.0)],
    );
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let p = plan_event_for(&a, 4);
    assert_eq!(p.shape, "(i,j):flat(A)[X?]");
    assert_eq!(
        p.explain,
        "plan (i,j):flat(A)[X?] (est cost 21.0)\n\
         stmt: Y(i) += (val(A) * val(X))\n\
         predicate: NZ(A)\n\
         for (i,j) in flat(A) -- level sorted/Logarithmic/sparse, ~6 stored tuples\n\
         \x20 probe X(j) -- search join: partner sorted/Constant/dense, O(1) direct index; \
         value supply (miss contributes 0)\n"
    );
}

#[test]
fn json_schema_golden() {
    // The empty report pins the section skeleton; a one-event-per-
    // stream report pins every field name and the JSON number format.
    assert_eq!(
        Report::empty().to_json(),
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"counters\":{{}},\"spans\":[],\"plans\":[],\
             \"strategies\":[],\"kernels\":[],\"traffic\":[],\"solvers\":[],\
             \"calibrations\":[]}}"
        )
    );

    let obs = Obs::enabled();
    obs.counter("engine.compile", 2);
    obs.span_ns("solver.cg", 1500);
    obs.plan(|| PlanEvent {
        op: "Y(i) += (val(A) * val(X))".into(),
        shape: "i:outer(A)>j:inner(A)[X?]".into(),
        est_cost: 928.0,
        candidates: 11,
        runners_up: vec![("(i,j):flat(A)[X?]".into(), 1008.0)],
        explain: "plan ...".into(),
    });
    obs.strategy(|| StrategyEvent {
        op: "spmv",
        strategy: "Parallel",
        algebra: "f64_plus",
        specializable: true,
        work: 320,
        threshold: 1,
        threads: 2,
        race_checked: true,
        race_safe: true,
        tier: "reference",
        downgrade: "",
        levels: 31,
        max_level_width: 16,
        mean_level_width: 10.5,
    });
    obs.kernel(
        "par_spmv_csr",
        KernelCounters { nnz: 320, flops: 640, bytes: 7168, algebra: "f64_plus" },
    );
    obs.traffic(|| TrafficEvent {
        phase: "cg.dist".into(),
        nprocs: 2,
        elapsed_ns: 9000,
        per_rank: vec![
            TrafficSample { msgs_sent: 3, bytes_sent: 96, barriers: 1, allreduces: 4, alltoalls: 0 },
            TrafficSample { msgs_sent: 3, bytes_sent: 96, barriers: 1, allreduces: 4, alltoalls: 0 },
        ],
    });
    obs.solver(|| SolverTrace {
        solver: "cg".into(),
        n: 64,
        iters: 2,
        converged: true,
        final_residual: 0.25,
        residuals: vec![1.0, 0.5, 0.25],
    });
    obs.calibration(|| CalibrationEvent {
        op: "spmv".into(),
        structure: "00ff00ff00ff00ff".into(),
        candidate: "fast".into(),
        est_cost: 640.0,
        measured_ns: 2048,
        reps: 16,
        chosen: true,
    });
    let report = obs.report();
    report.validate_complete().unwrap();
    assert_eq!(
        report.to_json(),
        "{\"schema\":\"bernoulli.profile/v1\",\"counters\":{\"engine.compile\":2},\
         \"spans\":[{\"name\":\"solver.cg\",\"calls\":1,\"total_ns\":1500}],\
         \"plans\":[{\"op\":\"Y(i) += (val(A) * val(X))\",\"shape\":\"i:outer(A)>j:inner(A)[X?]\",\
         \"est_cost\":928.0,\"candidates\":11,\
         \"runners_up\":[{\"shape\":\"(i,j):flat(A)[X?]\",\"est_cost\":1008.0}],\
         \"explain\":\"plan ...\"}],\
         \"strategies\":[{\"op\":\"spmv\",\"strategy\":\"Parallel\",\"algebra\":\"f64_plus\",\
         \"specializable\":true,\
         \"work\":320,\"threshold\":1,\"threads\":2,\"race_checked\":true,\"race_safe\":true,\
         \"tier\":\"reference\",\"downgrade\":\"\",\
         \"levels\":31,\"max_level_width\":16,\"mean_level_width\":10.5}],\
         \"kernels\":[{\"kernel\":\"par_spmv_csr\",\"algebra\":\"f64_plus\",\"calls\":1,\
         \"nnz\":320,\"flops\":640,\
         \"bytes\":7168}],\
         \"traffic\":[{\"phase\":\"cg.dist\",\"nprocs\":2,\"elapsed_ns\":9000,\
         \"per_rank\":[{\"msgs_sent\":3,\"bytes_sent\":96,\"barriers\":1,\"allreduces\":4,\
         \"alltoalls\":0},{\"msgs_sent\":3,\"bytes_sent\":96,\"barriers\":1,\"allreduces\":4,\
         \"alltoalls\":0}],\
         \"total\":{\"msgs_sent\":6,\"bytes_sent\":192,\"barriers\":2,\"allreduces\":8,\
         \"alltoalls\":0}}],\
         \"solvers\":[{\"solver\":\"cg\",\"n\":64,\"iters\":2,\"converged\":true,\
         \"final_residual\":0.25,\"residuals\":[1.0,0.5,0.25]}],\
         \"calibrations\":[{\"op\":\"spmv\",\"structure\":\"00ff00ff00ff00ff\",\
         \"candidate\":\"fast\",\"est_cost\":640.0,\"measured_ns\":2048,\"reps\":16,\
         \"chosen\":true}]}"
    );
}

#[test]
fn results_byte_identical_with_instrumentation_disabled() {
    // The acceptance criterion: threading a disabled handle through
    // every instrumented layer changes no bit of any result.
    let t = gen::grid2d_5pt(12, 12);
    let n = t.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
    for kind in FormatKind::ALL {
        let a = SparseMatrix::from_triplets(kind, &t);
        for ctx in [ExecCtx::serial(), ExecCtx::with_threads(2).threshold(1)] {
            let plain = SpmvEngine::compile_in(&a, &ctx).unwrap();
            let wired =
                SpmvEngine::compile_in(&a, &ctx.clone().instrument(Obs::disabled())).unwrap();
            assert_eq!(plain.strategy(), wired.strategy(), "format {kind}");
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            plain.run(&a, &x, &mut y1).unwrap();
            wired.run(&a, &x, &mut y2).unwrap();
            assert_eq!(y1, y2, "format {kind}: obs-disabled SpMV must be bitwise identical");
        }
    }

    // Solvers: the instrumented ctx around an untouched core.
    let csr = Csr::from_triplets(&t);
    let pc = DiagonalPreconditioner::from_matrix(&t);
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let plain = ExecCtx::default();
    let wired = ExecCtx::default().instrument(Obs::disabled());
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    let r1 = cg(&csr, &pc, &b, &mut x1, CgOptions::default(), &plain).unwrap();
    let r2 = cg(&csr, &pc, &b, &mut x2, CgOptions::default(), &wired).unwrap();
    assert_eq!(x1, x2);
    assert_eq!(r1.residual_history, r2.residual_history);

    let mut g1 = vec![0.0; n];
    let mut g2 = vec![0.0; n];
    let s1 = gmres(&csr, &pc, &b, &mut g1, GmresOptions::default(), &plain).unwrap();
    let s2 = gmres(&csr, &pc, &b, &mut g2, GmresOptions::default(), &wired).unwrap();
    assert_eq!(g1, g2);
    assert_eq!(s1.residual_history, s2.residual_history);
}

/// FNV-1a-style fold over f64 bit patterns: the golden fingerprint.
fn bit_hash(xs: &[f64]) -> u64 {
    xs.iter().fold(0xcbf29ce484222325u64, |h, x| {
        (h ^ x.to_bits()).wrapping_mul(0x100000001b3)
    })
}

#[test]
fn ctx_path_is_bitwise_identical_to_pre_refactor_goldens() {
    // Captured from the pre-ExecCtx library (the separate
    // `compile`/`cg`/`gmres` default-ctx entry
    // points) on this exact workload, before the refactor landed. The
    // unified ctx path must reproduce every bit: SpMV across all nine
    // formats, then CG and GMRES solutions and residual histories.
    const SPMV_GOLD: u64 = 0x68298f63ec3a43f9;
    const CG_X_GOLD: u64 = 0xc0c5d5c80def860c;
    const CG_HIST_GOLD: u64 = 0xb30dd9dc7ab4f567;
    const CG_ITERS_GOLD: usize = 29;
    const GMRES_X_GOLD: u64 = 0x1905fe36263bb67d;
    const GMRES_HIST_GOLD: u64 = 0x182603db6cf5d98e;
    const GMRES_ITERS_GOLD: usize = 29;

    let t = gen::grid2d_5pt(12, 12);
    let n = t.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
    for kind in FormatKind::ALL {
        let a = SparseMatrix::from_triplets(kind, &t);
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::default()).unwrap();
        let mut y = vec![0.0; n];
        eng.run(&a, &x, &mut y).unwrap();
        assert_eq!(bit_hash(&y), SPMV_GOLD, "format {kind} drifted from the pre-refactor bits");
        // The no-ctx convenience form is the same engine.
        let mut y2 = vec![0.0; n];
        SpmvEngine::compile(&a).unwrap().run(&a, &x, &mut y2).unwrap();
        assert_eq!(y, y2, "format {kind}");
    }

    let csr = Csr::from_triplets(&t);
    let pc = DiagonalPreconditioner::from_matrix(&t);
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut xs = vec![0.0; n];
    let r = cg(&csr, &pc, &b, &mut xs, CgOptions::default(), &ExecCtx::default()).unwrap();
    assert_eq!(r.iters, CG_ITERS_GOLD);
    assert_eq!(bit_hash(&xs), CG_X_GOLD, "CG solution drifted from the pre-refactor bits");
    assert_eq!(bit_hash(&r.residual_history), CG_HIST_GOLD);

    let mut xg = vec![0.0; n];
    let g = gmres(&csr, &pc, &b, &mut xg, GmresOptions::default(), &ExecCtx::default()).unwrap();
    assert_eq!(g.iters, GMRES_ITERS_GOLD);
    assert_eq!(bit_hash(&xg), GMRES_X_GOLD, "GMRES solution drifted from the pre-refactor bits");
    assert_eq!(bit_hash(&g.residual_history), GMRES_HIST_GOLD);
}

#[test]
fn one_handle_collects_every_stream() {
    // Compact version of examples/profile.rs: a single shared handle
    // wired through planner, engines, SPMD machine, solvers and the
    // tune crate's calibration mode ends up with all seven streams
    // populated and a valid report.
    let obs = Obs::enabled();
    let t = gen::grid2d_5pt(10, 10);
    let n = t.nrows();
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let ctx = ExecCtx::serial().instrument(obs.clone());
    let eng = SpmvEngine::compile_in(&a, &ctx).unwrap();
    let x = vec![1.0; n];
    let mut y = vec![0.0; n];
    eng.run(&a, &x, &mut y).unwrap();
    let spmm = SpmmEngine::compile_in(&a, &a, &ctx).unwrap();
    let mut c = vec![0.0; n * n];
    spmm.run(&a, &a, &mut c).unwrap();
    let multi = SpmvMultiEngine::compile_in(&a, 2, &ctx).unwrap();
    let mut ym = vec![0.0; n * 2];
    multi.run(&a, &vec![1.0; n * 2], &mut ym).unwrap();

    let csr = Csr::from_triplets(&t);
    let pc = DiagonalPreconditioner::from_matrix(&t);
    let b: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
    let mut xs = vec![0.0; n];
    cg(&csr, &pc, &b, &mut xs, CgOptions::default(), &ctx).unwrap();

    bernoulli_spmd::machine::Machine::run_in(3, None, "allreduce", &ctx, |ctx| {
        ctx.all_reduce_sum(ctx.rank() as f64)
    });

    bernoulli_tune::calibrate_spmv(&a, &ctx, 2).unwrap();

    let report = obs.report();
    report.validate_complete().unwrap();
    assert_eq!(report.plans.len(), 3);
    assert!(!report.calibrations.is_empty());
    assert_eq!(report.strategies.len(), 3);
    assert!(report.kernels.contains_key("spmv_csr"));
    assert_eq!(report.traffic[0].phase, "allreduce");
    assert_eq!(report.traffic[0].per_rank.len(), 3);
    assert_eq!(report.solvers[0].solver, "cg");
    assert!(report.spans.contains_key("spmd.allreduce"));
    // Serialisation is deterministic and re-parses as the same string.
    assert_eq!(report.to_json(), report.to_json());
}
