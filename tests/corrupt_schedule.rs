//! The corrupt-schedule corpus: hand-broken level schedules for each
//! invariant the wavefront verifier (`bernoulli-analysis`, `BA4x`)
//! guards, mirroring `corrupt_corpus.rs` for the format sanitizer.
//! Every mutant must be rejected by the *independent* verifier — the
//! parallel SpTRSV/SymGS tier only runs schedules that survive it —
//! and the pristine schedule must pass.

use bernoulli_analysis::wavefront::{
    analyze_wavefront, verify_level_schedule, LevelSchedule, Triangle,
};
use proptest::prelude::*;

/// First error code a schedule is rejected with (panics when clean).
fn first_code(
    nrows: usize,
    rowptr: &[usize],
    colind: &[usize],
    sched: &LevelSchedule,
) -> &'static str {
    let diags = verify_level_schedule(nrows, rowptr, colind, Triangle::Lower, sched);
    diags
        .iter()
        .find(|d| d.is_error())
        .unwrap_or_else(|| panic!("expected an error, got {diags:?}"))
        .code
}

/// A well-formed 6-row strictly-chained lower pattern to corrupt:
/// rows {0: [0], 1: [0,1], 2: [2], 3: [1,3], 4: [2,4], 5: [3,4,5]}.
/// Longest-path levels: {0,2} · {1,4} · {3} · {5}.
fn good_pattern() -> (Vec<usize>, Vec<usize>) {
    (vec![0, 1, 3, 4, 6, 8, 11], vec![0, 0, 1, 2, 1, 3, 2, 4, 3, 4, 5])
}

/// The pristine schedule for [`good_pattern`], as the analysis emits it.
fn good_schedule() -> LevelSchedule {
    LevelSchedule::from_raw_unchecked(6, vec![0, 2, 1, 4, 3, 5], vec![0, 2, 4, 5, 6])
}

#[test]
fn pristine_schedule_passes_and_matches_analysis() {
    let (rowptr, colind) = good_pattern();
    let sched = good_schedule();
    let diags = verify_level_schedule(6, &rowptr, &colind, Triangle::Lower, &sched);
    assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    // And the analysis itself reproduces it with a certificate.
    let report = analyze_wavefront(6, &rowptr, &colind, Triangle::Lower);
    assert!(report.is_parallel_safe());
    let s = report.schedule.expect("certified pattern has a schedule");
    assert_eq!(s.rows(), sched.rows());
    assert_eq!(s.level_ptr(), sched.level_ptr());
}

#[test]
fn ba42_swapped_dependent_rows_across_levels() {
    // Rows 1 and 3 trade places: row 3 now runs in the wave *before*
    // the row 1 it depends on — a non-topological order.
    let (rowptr, colind) = good_pattern();
    let sched = LevelSchedule::from_raw_unchecked(6, vec![0, 2, 3, 4, 1, 5], vec![0, 2, 4, 5, 6]);
    assert_eq!(first_code(6, &rowptr, &colind, &sched), "BA42");
}

#[test]
fn ba43_duplicated_row() {
    // Row 0 scheduled twice, row 5 never: coverage is broken.
    let (rowptr, colind) = good_pattern();
    let sched = LevelSchedule::from_raw_unchecked(6, vec![0, 2, 1, 4, 3, 0], vec![0, 2, 4, 5, 6]);
    assert_eq!(first_code(6, &rowptr, &colind, &sched), "BA43");
}

#[test]
fn ba43_dropped_row() {
    // Row 5 silently dropped from the last wave.
    let (rowptr, colind) = good_pattern();
    let sched = LevelSchedule::from_raw_unchecked(6, vec![0, 2, 1, 4, 3], vec![0, 2, 4, 5, 5]);
    assert_eq!(first_code(6, &rowptr, &colind, &sched), "BA43");
}

#[test]
fn ba44_level_off_by_one() {
    // Row 1 merged into its predecessor's wave: rows 0 and 1 share a
    // level but 1 reads x[0] — an intra-wave dependence (race).
    let (rowptr, colind) = good_pattern();
    let sched = LevelSchedule::from_raw_unchecked(6, vec![0, 2, 1, 4, 3, 5], vec![0, 3, 4, 5, 6]);
    assert_eq!(first_code(6, &rowptr, &colind, &sched), "BA44");
}

#[test]
fn ba41_non_triangular_input_refused_at_analysis() {
    // An above-diagonal entry under the Lower orientation makes the
    // dependence relation cyclic under forward substitution: no
    // schedule, no certificate, BA41.
    let (rowptr, mut colind) = good_pattern();
    colind[1] = 3; // row 1 now reads column 3 > 1
    let report = analyze_wavefront(6, &rowptr, &colind, Triangle::Lower);
    assert!(!report.is_parallel_safe());
    assert!(report.schedule.is_none());
    let code =
        report.diagnostics.iter().find(|d| d.is_error()).expect("must be diagnosed").code;
    assert_eq!(code, "BA41");
    // The verifier agrees when handed the pristine schedule anyway.
    assert_eq!(first_code(6, &rowptr, &colind, &good_schedule()), "BA41");
}

/// Random strictly-lower patterns (diagonal implied): each row reads a
/// random subset of earlier rows.
fn arb_lower_pattern() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec(0u32..0x0100_0000, n..=n).prop_map(
            move |masks| {
                let mut rowptr = vec![0usize];
                let mut colind = Vec::new();
                for (i, m) in masks.iter().enumerate() {
                    for j in 0..i {
                        if m & (1 << (j % 24)) != 0 {
                            colind.push(j);
                        }
                    }
                    colind.push(i); // diagonal last
                    rowptr.push(colind.len());
                }
                (rowptr, colind)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero false positives: every analysis-built schedule passes the
    /// independent verifier and earns a certificate.
    #[test]
    fn analysis_schedules_always_verify((rowptr, colind) in arb_lower_pattern()) {
        let n = rowptr.len() - 1;
        let report = analyze_wavefront(n, &rowptr, &colind, Triangle::Lower);
        prop_assert!(report.is_parallel_safe(), "{:?}", report.diagnostics);
        let sched = report.schedule.unwrap();
        let diags = verify_level_schedule(n, &rowptr, &colind, Triangle::Lower, &sched);
        prop_assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    /// Zero false negatives on coverage damage: overwrite one schedule
    /// slot with another row and the verifier must reject (the victim
    /// row disappears, the copied row appears twice).
    #[test]
    fn clobbered_slot_is_always_rejected(
        ((rowptr, colind), i, j) in arb_lower_pattern().prop_flat_map(|(rp, ci)| {
            let n = rp.len() - 1;
            (Just((rp, ci)), 0..n, 0..n)
        })
    ) {
        prop_assume!(i != j);
        let n = rowptr.len() - 1;
        let good = analyze_wavefront(n, &rowptr, &colind, Triangle::Lower)
            .schedule
            .unwrap();
        let mut rows = good.rows().to_vec();
        rows[i] = rows[j];
        let bad = LevelSchedule::from_raw_unchecked(n, rows, good.level_ptr().to_vec());
        prop_assert_eq!(first_code(n, &rowptr, &colind, &bad), "BA43");
    }
}
