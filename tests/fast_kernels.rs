//! Bit-equivalence suite for the certified bounds-check-free
//! microkernels (`bernoulli_formats::fast`).
//!
//! The correctness contract is *bitwise*, not approximate:
//!
//! * CSR and MSR fast kernels must reproduce their safe lane-reference
//!   kernels (`spmv_csr_lanes` / `spmv_msr_lanes`) bit for bit — the
//!   4-lane split is a documented reassociation, so the reference that
//!   defines it is the lane kernel, not the single-accumulator one.
//! * BSR and ITPACK fast kernels preserve the reference kernels' exact
//!   operation order, so they are pinned bitwise against
//!   `Bsr::spmv_acc` and `kernels::spmv_itpack_in::<F64Plus>` directly.
//!
//! Inputs deliberately include empty rows, dense rows, and NaN/±Inf
//! values (the reassociation must not change which lanes see them —
//! the lane kernels make the order deterministic, and bit equality
//! holds even for NaN payload propagation on this target). Adversarial
//! cases assert the fast path is *refused*: `Validate`-rejected
//! matrices never yield a certificate, so no unsafe code is reachable
//! for them.

use bernoulli::engines::SpmvEngine;
use bernoulli_formats::fast::{
    spmv_bsr_fast, spmv_csr_fast, spmv_csr_lanes, spmv_itpack_fast, spmv_msr_fast,
    spmv_msr_lanes, BsrCert, CsrCert, ItpackCert, MatrixCert, MsrCert,
};
use bernoulli_formats::{kernels, Bsr, Csr, ExecCtx, Itpack, Msr, SparseMatrix, Triplets};
use bernoulli_relational::semiring::F64Plus;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Strategy: a small random matrix whose values include NaN, ±Inf,
/// ±0.0 and subnormals alongside ordinary finite values. Row count
/// fixed per case so empty rows (no entries for some r) and dense rows
/// (up to `nc` entries) both occur.
fn arb_matrix() -> impl Strategy<Value = Triplets> {
    (1usize..14, 1usize..14).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec(
            (0..nr, 0..nc, -100i32..100, 0u8..32).prop_map(|(r, c, v, special)| {
                let val = match special {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => -0.0,
                    4 => f64::MIN_POSITIVE / 2.0, // subnormal
                    _ => v as f64 / 4.0,
                };
                (r, c, val)
            }),
            0..80,
        )
        .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries))
    })
}

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        (-50i32..50, 0u8..24).prop_map(|(v, special)| match special {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            _ => v as f64 / 8.0,
        }),
        len..=len,
    )
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{}: row {} differs ({} vs {})",
            what,
            i,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fast CSR == lane-reference CSR, bit for bit, NaN/Inf included.
    #[test]
    fn csr_fast_bitwise_equals_lane_reference((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let a = Csr::from_triplets(&t);
        let cert = CsrCert::certify(&a).expect("clean matrix certifies");
        let mut y_ref = vec![0.5; a.nrows()];
        let mut y_fast = y_ref.clone();
        spmv_csr_lanes(&a, &x, &mut y_ref);
        spmv_csr_fast(&a, &x, &mut y_fast, &cert);
        assert_bits_eq(&y_fast, &y_ref, "csr")?;
    }

    /// Fast MSR == lane-reference MSR, bit for bit.
    #[test]
    fn msr_fast_bitwise_equals_lane_reference((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let a = Msr::from_triplets(&t);
        let cert = MsrCert::certify(&a).expect("clean matrix certifies");
        let mut y_ref = vec![-0.25; a.nrows()];
        let mut y_fast = y_ref.clone();
        spmv_msr_lanes(&a, &x, &mut y_ref);
        spmv_msr_fast(&a, &x, &mut y_fast, &cert);
        assert_bits_eq(&y_fast, &y_ref, "msr")?;
    }

    /// Fast BSR == reference BSR, bit for bit, across block sizes
    /// covering every unrolled micro-kernel and the generic fallback.
    #[test]
    fn bsr_fast_bitwise_equals_reference((t, x, b) in (1usize..5, 1usize..5, 1usize..=5)
        .prop_flat_map(|(nbr, nbc, b)| {
            let (nr, nc) = (nbr * b, nbc * b);
            (
                proptest::collection::vec(
                    (0..nr, 0..nc, -100i32..100, 0u8..32).prop_map(move |(r, c, v, s)| {
                        let val = match s {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => -0.0,
                            _ => v as f64 / 4.0,
                        };
                        (r, c, val)
                    }),
                    0..60,
                )
                .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries)),
                arb_vec(nc),
                Just(b),
            )
        })) {
        let a = Bsr::from_triplets(&t, b);
        let cert = BsrCert::certify(&a).expect("clean matrix certifies");
        let mut y_ref = vec![1.5; a.nrows()];
        let mut y_fast = y_ref.clone();
        a.spmv_acc(&x, &mut y_ref);
        spmv_bsr_fast(&a, &x, &mut y_fast, &cert);
        assert_bits_eq(&y_fast, &y_ref, "bsr")?;
    }

    /// Fast ITPACK == reference ITPACK, bit for bit (padding slots
    /// included in the sweep, exactly as the reference orders them).
    #[test]
    fn itpack_fast_bitwise_equals_reference((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let a = Itpack::from_triplets(&t);
        let cert = ItpackCert::certify(&a).expect("clean matrix certifies");
        let mut y_ref = vec![2.0; a.nrows()];
        let mut y_fast = y_ref.clone();
        kernels::spmv_itpack_in::<F64Plus>(&a, &x, &mut y_ref);
        spmv_itpack_fast(&a, &x, &mut y_fast, &cert);
        assert_bits_eq(&y_fast, &y_ref, "itpack")?;
    }

    /// The fast-armed engine is bitwise the lane reference for CSR and
    /// falls back to the reference tier (bitwise `spmv_acc`) for every
    /// matrix it cannot certify.
    #[test]
    fn fast_engine_bitwise_contract((t, x) in arb_matrix().prop_flat_map(|t| {
        let nc = t.ncols();
        (Just(t), arb_vec(nc))
    })) {
        let a = SparseMatrix::Csr(Csr::from_triplets(&t));
        let eng = SpmvEngine::compile_in(&a, &ExecCtx::serial().fast_kernels(true)).unwrap();
        // The fast tier arms exactly when the plan specializes (some
        // degenerate shapes — e.g. single-column matrices — plan into
        // a non-natural traversal and stay interpreted) and the
        // operand certifies; every certifiable specialized compile
        // must take it.
        use bernoulli::Strategy;
        prop_assert_eq!(eng.tier() == "fast", eng.strategy() == Strategy::Specialized);
        if eng.tier() == "fast" {
            let mut y = vec![0.0; t.nrows()];
            eng.run(&a, &x, &mut y).unwrap();
            let mut y_ref = vec![0.0; t.nrows()];
            if let SparseMatrix::Csr(m) = &a {
                spmv_csr_lanes(m, &x, &mut y_ref);
            }
            assert_bits_eq(&y, &y_ref, "engine/fast")?;
        }

        // A clone moved the arrays: certificate no longer covers it,
        // the run takes the reference path bitwise.
        let b = a.clone();
        let mut y = vec![0.0; t.nrows()];
        eng.run(&b, &x, &mut y).unwrap();
        let mut y_ref = vec![0.0; t.nrows()];
        b.spmv_acc(&x, &mut y_ref);
        assert_bits_eq(&y, &y_ref, "engine/fallback")?;
    }
}

/// Adversarial corpus: every matrix here fails `Validate`, so every
/// certificate request must be refused — the unsafe fast path is
/// unreachable for them, by construction.
#[test]
fn validate_rejected_matrices_are_refused_certificates() {
    // BA22: column index out of bounds.
    let bad = Csr::from_raw_unchecked(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 2.0]);
    assert!(CsrCert::certify(&bad).is_err());
    // BA21: non-monotone row pointers.
    let bad = Csr::from_raw_unchecked(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
    assert!(CsrCert::certify(&bad).is_err());
    // BA21: pointer array ends past the value array.
    let bad = Csr::from_raw_unchecked(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]);
    assert!(CsrCert::certify(&bad).is_err());
    // BA23: columns out of order within a row.
    let bad = Csr::from_raw_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    assert!(CsrCert::certify(&bad).is_err());
    // The SparseMatrix-level certificate refuses the same corpus…
    let bad = Csr::from_raw_unchecked(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 2.0]);
    assert!(MatrixCert::certify(&SparseMatrix::Csr(bad.clone())).is_err());
    // …and the fast-armed engine quietly stays on the reference tier.
    let eng = SpmvEngine::compile_in(&SparseMatrix::Csr(bad), &ExecCtx::serial().fast_kernels(true))
        .unwrap();
    assert_eq!(eng.tier(), "reference");
}

/// The certificate is bound to the exact storage it certified: mutating
/// values through the one public `&mut` accessor keeps it valid (values
/// carry no index invariant), but a rebuilt matrix does not inherit it.
#[test]
fn certificate_tracks_storage_identity() {
    let t = bernoulli_formats::gen::grid2d_5pt(5, 5);
    let mut a = Csr::from_triplets(&t);
    let cert = CsrCert::certify(&a).unwrap();
    assert!(cert.covers(&a));
    for v in a.vals_mut() {
        *v *= 2.0;
    }
    assert!(cert.covers(&a), "value mutation cannot break index invariants");
    let rebuilt = Csr::from_triplets(&t);
    assert!(!cert.covers(&rebuilt));
}

/// Empty and fully dense extremes, plus rows at every remainder mod 4
/// (the lane count), pinned bitwise.
#[test]
fn lane_remainders_and_extremes_bitwise() {
    for nc in 1..=9usize {
        // One row per possible length 0..=nc: hits every remainder
        // class of the 4-lane chunking, including the empty row.
        let nr = nc + 1;
        let mut t = Triplets::new(nr, nc);
        for r in 0..nr {
            for c in 0..r.min(nc) {
                t.push(r, c, ((r * 31 + c * 7) as f64).sin());
            }
        }
        let a = Csr::from_triplets(&t);
        let cert = CsrCert::certify(&a).unwrap();
        let x: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y_ref = vec![0.25; nr];
        let mut y_fast = y_ref.clone();
        spmv_csr_lanes(&a, &x, &mut y_ref);
        spmv_csr_fast(&a, &x, &mut y_fast, &cert);
        for (g, w) in y_fast.iter().zip(&y_ref) {
            assert_eq!(g.to_bits(), w.to_bits(), "nc={nc}");
        }
    }
}

/// Regression: a certificate must never transfer to a *never-validated*
/// matrix that the allocator placed at the recycled address of the
/// certified one. The original fingerprint was address + length only,
/// so dropping a certified matrix and immediately building a same-shape
/// corrupt one could produce a spurious `covers()` pass — and with it a
/// wildly out-of-bounds unchecked gather. This loop hunts for exactly
/// that allocator collision (building the replacement's arrays in the
/// reverse of the drop's free order, so size-class LIFO caching hands
/// back the same chunks) and asserts the content hash refuses every
/// one.
#[test]
fn stale_certificate_never_survives_reallocation() {
    const N: usize = 64;
    let mut address_reuses = 0usize;
    let mut trials = 0usize;
    while trials < 4096 && address_reuses < 4 {
        trials += 1;
        // A clean diagonal matrix from exact-capacity arrays.
        let rowptr: Vec<usize> = (0..=N).collect();
        let colind: Vec<usize> = (0..N).collect();
        let vals = vec![1.0f64; N];
        let good = Csr::from_raw_unchecked(N, N, rowptr, colind, vals);
        let cert = CsrCert::certify(&good).unwrap();
        assert!(cert.covers(&good));
        let old = (
            good.rowptr().as_ptr() as usize,
            good.colind().as_ptr() as usize,
            good.vals().as_ptr() as usize,
        );
        drop(good);

        // Same dimensions, same array lengths, never validated — and
        // holding a column index far out of bounds, exactly what the
        // fast tier's unchecked gather must never be allowed to see.
        // Arrays are allocated in reverse field order (vals, colind,
        // rowptr) to mirror the drop's free order.
        let vals = vec![2.0f64; N];
        let mut colind: Vec<usize> = (0..N).collect();
        colind[trials % N] = N + 9999;
        let rowptr: Vec<usize> = (0..=N).collect();
        let bad = Csr::from_raw_unchecked(N, N, rowptr, colind, vals);
        let new = (
            bad.rowptr().as_ptr() as usize,
            bad.colind().as_ptr() as usize,
            bad.vals().as_ptr() as usize,
        );
        if new == old {
            // Address + length + dimensions all match: the pre-fix
            // fingerprint would have accepted this corrupt matrix.
            address_reuses += 1;
        }
        assert!(
            !cert.covers(&bad),
            "stale certificate accepted a never-validated matrix (trial {trials})"
        );
    }
    assert!(
        address_reuses > 0,
        "allocator never recycled the address in {trials} trials; the test exercised nothing"
    );
}
