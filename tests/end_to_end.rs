//! End-to-end integration: the compiler pipeline (loop nest → query →
//! plan → executor) against every storage format and workload class.

use bernoulli::engines::{SpmmEngine, SpmvEngine};
use bernoulli_formats::gen::{table1_suite, Scale};
use bernoulli_formats::{DenseMatrix, FormatKind, SparseMatrix, Triplets};

fn reference_matvec(t: &Triplets, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; t.nrows()];
    t.matvec_acc(x, &mut y);
    y
}

#[test]
fn compiled_spmv_matches_reference_on_whole_suite() {
    for m in table1_suite(Scale::Small) {
        let n = m.triplets.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 31) as f64) - 15.0).collect();
        let want = reference_matvec(&m.triplets, &x);
        for kind in FormatKind::ALL {
            let a = SparseMatrix::from_triplets(kind, &m.triplets);
            let eng = SpmvEngine::compile(&a).unwrap();
            let mut y = vec![0.0; n];
            eng.run(&a, &x, &mut y).unwrap();
            for (g, w) in y.iter().zip(&want) {
                assert!(
                    (g - w).abs() < 1e-6 * w.abs().max(1.0),
                    "{} in {kind}: {g} vs {w}",
                    m.name
                );
            }
        }
    }
}

#[test]
fn interpreted_path_matches_specialized_on_suite() {
    for m in table1_suite(Scale::Small).into_iter().take(4) {
        let n = m.triplets.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        for kind in [FormatKind::Csr, FormatKind::Ccs, FormatKind::Diagonal, FormatKind::Inode] {
            let a = SparseMatrix::from_triplets(kind, &m.triplets);
            let fast = SpmvEngine::compile(&a).unwrap();
            let slow =
                SpmvEngine::compile_in(&a, &bernoulli::ExecCtx::default().specialization(false))
                    .unwrap();
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            fast.run(&a, &x, &mut y1).unwrap();
            slow.run(&a, &x, &mut y2).unwrap();
            for (a1, a2) in y1.iter().zip(&y2) {
                assert!((a1 - a2).abs() < 1e-9, "{} in {kind}", m.name);
            }
        }
    }
}

#[test]
fn spmm_every_pairing_of_core_formats() {
    let ta = bernoulli_formats::gen::random_sparse(25, 30, 120, 21);
    let tb = bernoulli_formats::gen::random_sparse(30, 20, 110, 22);
    // Dense reference.
    let da = DenseMatrix::from_triplets(&ta);
    let db = DenseMatrix::from_triplets(&tb);
    let mut want = vec![0.0; 25 * 20];
    for i in 0..25 {
        for k in 0..30 {
            let av = da[(i, k)];
            if av != 0.0 {
                for j in 0..20 {
                    want[i * 20 + j] += av * db[(k, j)];
                }
            }
        }
    }
    for ka in [FormatKind::Csr, FormatKind::Ccs, FormatKind::Coordinate, FormatKind::Itpack] {
        for kb in [FormatKind::Csr, FormatKind::Ccs, FormatKind::Cccs, FormatKind::JDiag] {
            let a = SparseMatrix::from_triplets(ka, &ta);
            let b = SparseMatrix::from_triplets(kb, &tb);
            let eng = SpmmEngine::compile(&a, &b).unwrap();
            let mut c = vec![0.0; 25 * 20];
            eng.run(&a, &b, &mut c).unwrap();
            for (g, w) in c.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "({ka:?},{kb:?})");
            }
        }
    }
}

#[test]
fn format_conversion_graph_is_lossless() {
    let t = table1_suite(Scale::Small)
        .into_iter()
        .find(|m| m.name == "medium")
        .unwrap()
        .triplets
        .canonicalize();
    // Chain conversions through several formats and come back.
    let m = SparseMatrix::from_triplets(FormatKind::Csr, &t)
        .convert(FormatKind::JDiag)
        .convert(FormatKind::Cccs)
        .convert(FormatKind::Diagonal)
        .convert(FormatKind::Inode)
        .convert(FormatKind::Coordinate);
    assert_eq!(m.to_triplets().canonicalize(), t);
}

#[test]
fn matrix_market_roundtrip_on_generated_suite() {
    for m in table1_suite(Scale::Small).into_iter().take(5) {
        let mut buf = Vec::new();
        bernoulli_formats::io::write_matrix_market(&m.triplets, &mut buf).unwrap();
        let back =
            bernoulli_formats::io::read_matrix_market(std::io::BufReader::new(buf.as_slice()))
                .unwrap();
        assert_eq!(back.canonicalize(), m.triplets.canonicalize(), "{}", m.name);
    }
}

#[test]
fn sequential_cg_solves_every_suite_spd_matrix() {
    use bernoulli::{ExecCtx, Operator};
    use bernoulli_solvers::cg::{cg, CgOptions};
    use bernoulli_solvers::precond::DiagonalPreconditioner;
    for m in table1_suite(Scale::Small) {
        let s = m.stats();
        if !s.symmetric {
            continue; // memplus/circuit twins are unsymmetric
        }
        let n = s.nrows;
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &m.triplets);
        let eng = SpmvEngine::compile(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut x = vec![0.0; n];
        let pc = DiagonalPreconditioner::from_matrix(&m.triplets);
        let op = eng.bind(&a);
        assert_eq!((op.out_len(), op.in_len()), (n, n));
        let res = cg(
            &op,
            &pc,
            &b,
            &mut x,
            CgOptions { max_iters: 2000, rel_tol: 1e-9 },
            &ExecCtx::default(),
        )
        .unwrap();
        assert!(res.converged, "{} residual {}", m.name, res.final_residual);
    }
}
