//! The unified-pipeline equivalence suite: every engine facade is a
//! thin veneer over `bernoulli::pipeline::compile`, and this file pins
//! the two properties the unification must preserve:
//!
//! 1. **Uniform provenance** — all seven op kinds emit `strategies`
//!    records with the *identical* field set under
//!    `bernoulli.profile/v1`; no engine gets a private vocabulary.
//! 2. **Replay parity** — compiling through the hint seam (the plan
//!    cache's warm path) is bitwise-identical to the cold path for
//!    every op that supports it, and a forged schedule is rejected by
//!    the independent verifier without corrupting the result.

use bernoulli::engines::{
    SemiringSpmmEngine, SemiringSpmvEngine, SpmmEngine, SpmvEngine, SpmvMultiEngine, Strategy,
};
use bernoulli::{reason, SptrsvEngine, SymGsEngine, TriangularOp};
use bernoulli_analysis::wavefront::LevelSchedule;
use bernoulli_formats::{gen, Csr, ExecCtx, FormatKind, SparseMatrix, Triplets};
use bernoulli_obs::Obs;
use bernoulli_relational::semiring::{CountU64, MinPlus};

fn lower_triangle(t: &Triplets) -> Csr {
    let mut lt = Triplets::new(t.nrows(), t.ncols());
    for &(r, c, v) in t.canonicalize().entries() {
        if c < r {
            lt.push(r, c, v);
        } else if c == r {
            lt.push(r, c, 4.0);
        }
    }
    Csr::from_triplets(&lt)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The ordered key list of one JSON object body (top-level keys only —
/// the strategies records are flat).
fn json_keys(obj: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = obj;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let end = after.find('"').expect("unterminated key");
        let key = &after[..end];
        let tail = &after[end + 1..];
        if tail.starts_with(':') {
            keys.push(key.to_string());
        }
        // Skip past this key *and* its value's opening quote if the
        // value is a string (so value text never looks like a key).
        let skip = if let Some(val) = tail.strip_prefix(":\"") {
            let vend = val.find('"').expect("unterminated value") + 3;
            end + 1 + vend
        } else {
            end + 1
        };
        rest = &after[skip..];
    }
    keys
}

/// Satellite golden: one compile per op kind, one report, and every
/// `strategies` record must carry the same field set in the same
/// order — the unified pipeline emits one vocabulary for all seven.
#[test]
fn all_seven_op_kinds_emit_identical_strategy_field_sets() {
    let obs = Obs::enabled();
    let ctx = ExecCtx::with_threads(2)
        .oversubscribe(true)
        .threshold(1)
        .instrument(obs.clone());

    let t = gen::grid2d_5pt(8, 8);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let ca = Csr::from_triplets(&t);
    let sym_t = gen::grid3d_7pt(4, 4, 4);
    let sym = Csr::from_triplets(&sym_t);
    let l = lower_triangle(&sym_t);

    SpmvEngine::compile_in(&a, &ctx).unwrap();
    SpmmEngine::compile_in(&a, &a, &ctx).unwrap();
    SpmvMultiEngine::compile_in(&a, 2, &ctx).unwrap();
    SemiringSpmvEngine::<MinPlus>::compile_in(&a, &ctx).unwrap();
    SemiringSpmmEngine::<CountU64>::compile_in(&ca, &ca, &ctx).unwrap();
    SptrsvEngine::compile_in(&l, TriangularOp::Lower { unit_diag: false }, &ctx).unwrap();
    SymGsEngine::compile_in(&sym, &ctx).unwrap();

    let report = obs.report();
    report.validate().unwrap();
    assert_eq!(report.strategies.len(), 7, "one decision record per op kind");
    let ops: Vec<&str> = report.strategies.iter().map(|s| s.op).collect();
    assert_eq!(ops, ["spmv", "spmm", "spmv_multi", "spmv", "spmm", "sptrsv", "symgs"]);
    let algebras: Vec<&str> = report.strategies.iter().map(|s| s.algebra).collect();
    assert_eq!(
        algebras,
        ["f64_plus", "f64_plus", "f64_plus", "min_plus", "count_u64", "f64_plus", "f64_plus"]
    );

    // The golden: identical field sets, pinned by name and order.
    let json = report.to_json();
    assert!(json.starts_with("{\"schema\":\"bernoulli.profile/v1\""));
    let arr_start = json.find("\"strategies\":[").expect("strategies stream") + 14;
    let arr_end = json[arr_start..].find(']').expect("unterminated stream") + arr_start;
    let records: Vec<&str> = json[arr_start..arr_end]
        .split("},{")
        .map(|r| r.trim_matches(|c| c == '{' || c == '}'))
        .collect();
    assert_eq!(records.len(), 7);
    let want = [
        "op",
        "strategy",
        "algebra",
        "specializable",
        "work",
        "threshold",
        "threads",
        "race_checked",
        "race_safe",
        "tier",
        "downgrade",
        "levels",
        "max_level_width",
        "mean_level_width",
    ];
    for (i, r) in records.iter().enumerate() {
        assert_eq!(json_keys(r), want, "record {i} ({}) field set diverged", ops[i]);
    }
}

/// Hinted replay is bitwise-identical to the cold compile for every op
/// that exposes the seam (the whole multiply family).
#[test]
fn hinted_replay_matches_cold_compile_bitwise_for_the_multiply_family() {
    let ctx = ExecCtx::with_threads(2).oversubscribe(true).threshold(1).fast_kernels(true);
    let t = gen::grid2d_9pt(12, 12);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let ca = Csr::from_triplets(&t);
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();

    // Classical SpMV.
    let cold = SpmvEngine::compile_in(&a, &ctx).unwrap();
    let warm = SpmvEngine::compile_hinted(&a, &ctx, &cold.hints()).unwrap();
    let (mut y1, mut y2) = (vec![0.0; n], vec![0.0; n]);
    cold.run(&a, &x, &mut y1).unwrap();
    warm.run(&a, &x, &mut y2).unwrap();
    assert_eq!(bits(&y1), bits(&y2));
    assert_eq!((cold.strategy(), cold.tier()), (warm.strategy(), warm.tier()));

    // Multi-RHS.
    let k = 3;
    let xk: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.07).cos()).collect();
    let cold = SpmvMultiEngine::compile_in(&a, k, &ctx).unwrap();
    let warm = SpmvMultiEngine::compile_hinted(&a, k, &ctx, &cold.hints()).unwrap();
    let (mut y1, mut y2) = (vec![0.0; n * k], vec![0.0; n * k]);
    cold.run(&a, &xk, &mut y1).unwrap();
    warm.run(&a, &xk, &mut y2).unwrap();
    assert_eq!(bits(&y1), bits(&y2));

    // Semiring SpMV (min-plus relaxation).
    let d0: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { f64::INFINITY }).collect();
    let cold = SemiringSpmvEngine::<MinPlus>::compile_in(&a, &ctx).unwrap();
    let warm = SemiringSpmvEngine::<MinPlus>::compile_hinted(&a, &ctx, &cold.hints()).unwrap();
    let (mut d1, mut d2) = (vec![f64::INFINITY; n], vec![f64::INFINITY; n]);
    cold.run(&a, &d0, &mut d1).unwrap();
    warm.run(&a, &d0, &mut d2).unwrap();
    assert_eq!(bits(&d1), bits(&d2));

    // Semiring SpMM (count_u64 path counting).
    let cold = SemiringSpmmEngine::<CountU64>::compile_in(&ca, &ca, &ctx).unwrap();
    let warm = SemiringSpmmEngine::<CountU64>::compile_hinted(&ca, &ca, &ctx, &cold.hints()).unwrap();
    assert_eq!(cold.run_entries(&ca, &ca).unwrap(), warm.run_entries(&ca, &ca).unwrap());
}

/// Replaying the engine's own schedule is bitwise-identical; replaying
/// a forged one is refused by the independent verifier and falls back
/// to the serial sweep — same answer, downgraded tier.
#[test]
fn schedule_replay_parity_and_forged_schedule_rejection() {
    let ctx = ExecCtx::with_threads(2).oversubscribe(true).threshold(1);
    let sym_t = gen::grid3d_7pt(5, 5, 5);
    let l = lower_triangle(&sym_t);
    let sym = Csr::from_triplets(&sym_t);
    let op = TriangularOp::Lower { unit_diag: false };
    let n = l.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();

    let cold = SptrsvEngine::compile_in(&l, op, &ctx).unwrap();
    assert_eq!(cold.strategy(), Strategy::Parallel);
    let sched = cold.schedule().expect("parallel tier must carry its schedule").clone();
    let warm = SptrsvEngine::compile_with_schedule(&l, op, sched, &ctx).unwrap();
    assert_eq!(warm.strategy(), Strategy::Parallel);
    let (mut x1, mut x2) = (vec![0.0; n], vec![0.0; n]);
    cold.run(&l, &b, &mut x1).unwrap();
    warm.run(&l, &b, &mut x2).unwrap();
    assert_eq!(bits(&x1), bits(&x2));

    // Forged: claim every row is independent (one flat level). BA4x
    // must refuse it and the engine must fall back to the serial sweep.
    let forged = LevelSchedule::from_raw_unchecked(n, (0..n).collect(), vec![0, n]);
    let bad = SptrsvEngine::compile_with_schedule(&l, op, forged, &ctx).unwrap();
    assert_eq!(bad.strategy(), Strategy::Specialized);
    assert_eq!(bad.downgrade(), reason::SCHEDULE_REJECTED);
    let mut x3 = vec![0.0; n];
    bad.run(&l, &b, &mut x3).unwrap();
    assert_eq!(bits(&x1), bits(&x3), "rejected schedule must not corrupt the solve");

    // SymGS: pair replay parity.
    let gs_cold = SymGsEngine::compile_in(&sym, &ctx).unwrap();
    let (fwd, bwd) = (
        gs_cold.forward_schedule().expect("armed forward").clone(),
        gs_cold.backward_schedule().expect("armed backward").clone(),
    );
    let gs_warm = SymGsEngine::compile_with_schedules(&sym, fwd, bwd, &ctx).unwrap();
    let (mut z1, mut z2) = (vec![0.0; n], vec![0.0; n]);
    gs_cold.apply_ssor(&sym, 1.2, &b, &mut z1).unwrap();
    gs_warm.apply_ssor(&sym, 1.2, &b, &mut z2).unwrap();
    assert_eq!(bits(&z1), bits(&z2));
}
