//! The `ExecCtx` cost contract.
//!
//! The unified execution context must be free when it does nothing:
//! a default (serial) ctx on the hot path performs **zero heap
//! allocations** and **zero rayon pool builds** per call, and a
//! parallel ctx builds its pool **exactly once** no matter how many
//! installs or clones share it.
//!
//! Allocation counting uses a thread-local tally inside a wrapper
//! global allocator, so worker threads and test-harness threads never
//! perturb the measurement on the measuring thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bernoulli::{ExecCtx, Operator};
use bernoulli_formats::gen;
use bernoulli_formats::{FormatKind, SparseMatrix};
use bernoulli_solvers::vecops;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations on *this* thread while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(|c| c.get());
    let out = f();
    (ALLOCS.with(|c| c.get()) - before, out)
}

#[test]
fn default_ctx_hot_path_is_allocation_free() {
    let ctx = ExecCtx::default();

    let n = 4096;
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
    let mut y = vec![0.0; n];

    // Warm up once so lazy one-time setup (if any) is out of the way.
    let _ = vecops::par_dot(&a, &b, &ctx);
    vecops::par_axpy(0.5, &a, &mut y, &ctx);
    vecops::par_xpby(&b, -0.25, &mut y, &ctx);

    let (allocs, _) = allocs_during(|| {
        let mut acc = 0.0;
        for _ in 0..100 {
            acc += vecops::par_dot(&a, &b, &ctx);
            vecops::par_axpy(0.5, &a, &mut y, &ctx);
            vecops::par_xpby(&b, -0.25, &mut y, &ctx);
            acc += ctx.install(|| 1.0);
        }
        acc
    });
    assert_eq!(allocs, 0, "serial ExecCtx hot path must not allocate");
    assert_eq!(ctx.pool_builds(), 0, "serial ExecCtx must never build a pool");
}

#[test]
fn default_ctx_operator_apply_is_allocation_free() {
    let t = gen::grid2d_5pt(16, 16);
    let a = SparseMatrix::from_triplets(FormatKind::Csr, &t);
    let csr = match &a {
        SparseMatrix::Csr(c) => c,
        _ => unreachable!(),
    };
    let n = t.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
    let mut y = vec![0.0; n];

    csr.apply(&x, &mut y).unwrap();
    let (allocs, _) = allocs_during(|| {
        for _ in 0..50 {
            csr.apply(&x, &mut y).unwrap();
        }
    });
    assert_eq!(allocs, 0, "Operator::apply on a bound format must not allocate");
}

#[test]
fn parallel_ctx_builds_its_pool_exactly_once() {
    let ctx = ExecCtx::with_threads(2).threshold(1);
    assert_eq!(ctx.pool_builds(), 0, "pool is lazy: no build before first install");

    let clone_a = ctx.clone();
    let clone_b = ctx.clone();
    for i in 0..25 {
        let k = ctx.install(|| i);
        assert_eq!(k, i);
        let _ = clone_a.install(|| i * 2);
        let _ = clone_b.install(|| i * 3);
    }
    assert_eq!(
        ctx.pool_builds(),
        1,
        "many installs across shared clones must reuse one cached pool"
    );
    assert_eq!(clone_a.pool_builds(), 1);
    assert_eq!(clone_b.pool_builds(), 1);

    // A distinct ctx owns a distinct pool cell: it builds its own, once.
    let other = ExecCtx::with_threads(2).threshold(1);
    let _ = other.install(|| 0);
    let _ = other.install(|| 0);
    assert_eq!(other.pool_builds(), 1);
    assert_eq!(ctx.pool_builds(), 1, "unrelated ctx must not touch this pool");
}
