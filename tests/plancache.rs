//! Integration tests for the structure-keyed plan cache
//! (`bernoulli-tune`): structure-key properties across random matrices
//! and the Table 1 suite, persistence round-trips, calibration
//! fold-in, and warm-replay equivalence through a full preconditioned
//! solve.

use bernoulli_formats::gen::{table1_suite, Scale};
use bernoulli_formats::{Csr, ExecCtx, FormatKind, SparseMatrix, Triplets};
use bernoulli_solvers::{cg, CgOptions, Preconditioner, SymGs};
use bernoulli_tune::{structure_key, structure_key_csr, PlanCache, StructureKey, SCHEMA};
use proptest::prelude::*;

/// Strategy: a small random matrix as triplets.
fn arb_matrix() -> impl Strategy<Value = Triplets> {
    (1usize..12, 1usize..12).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec(
            (0..nr, 0..nc, -100i32..100).prop_map(|(r, c, v)| (r, c, v as f64 / 4.0)),
            1..60,
        )
        .prop_map(move |entries| Triplets::from_entries(nr, nc, &entries))
    })
}

/// Rebuild `t` with every stored value mapped through `f`, keeping the
/// pattern byte-for-byte.
fn map_values(t: &Triplets, f: impl Fn(f64) -> f64) -> Triplets {
    let c = t.canonicalize();
    let mut out = Triplets::new(t.nrows(), t.ncols());
    for &(r, col, v) in c.entries() {
        out.push(r, col, f(v));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Value perturbation (a refactorization with the same pattern)
    /// never changes the key — in any format.
    #[test]
    fn structure_key_is_value_invariant(t in arb_matrix()) {
        let t2 = map_values(&t, |v| v * 2.5 - 7.0);
        for kind in [FormatKind::Csr, FormatKind::Ccs, FormatKind::Coordinate, FormatKind::Inode] {
            let a = SparseMatrix::from_triplets(kind, &t);
            let b = SparseMatrix::from_triplets(kind, &t2);
            prop_assert_eq!(structure_key(&a), structure_key(&b), "format {}", kind);
        }
    }

    /// Dropping one pattern position changes the key.
    #[test]
    fn structure_key_is_pattern_sensitive(t in arb_matrix(), pick in 0usize..4096) {
        let c = t.canonicalize();
        prop_assume!(c.entries().len() > 1);
        let drop = pick % c.entries().len();
        let mut t2 = Triplets::new(t.nrows(), t.ncols());
        for (i, &(r, col, v)) in c.entries().iter().enumerate() {
            if i != drop {
                t2.push(r, col, v);
            }
        }
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &c);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &t2);
        prop_assert_ne!(structure_key(&a), structure_key(&b));
    }

    /// The key is a pure function of the canonical pattern: assembly
    /// order and duplicate accumulation are invisible.
    #[test]
    fn structure_key_ignores_assembly_order(t in arb_matrix()) {
        let c = t.canonicalize();
        let mut reversed = Triplets::new(t.nrows(), t.ncols());
        for &(r, col, v) in c.entries().iter().rev() {
            // Split each entry into two triplets that sum back.
            reversed.push(r, col, v - 1.0);
            reversed.push(r, col, 1.0);
        }
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &c);
        let b = SparseMatrix::from_triplets(FormatKind::Csr, &reversed);
        prop_assert_eq!(structure_key(&a), structure_key(&b));
    }
}

#[test]
fn no_collisions_across_the_table1_suite() {
    // Every suite structure, in several formats each, keys uniquely —
    // and the hex spelling round-trips.
    let mut seen: std::collections::HashMap<StructureKey, String> = Default::default();
    for s in table1_suite(Scale::Small) {
        for kind in [FormatKind::Csr, FormatKind::Ccs, FormatKind::JDiag, FormatKind::Inode] {
            let a = SparseMatrix::from_triplets(kind, &s.triplets);
            let k = structure_key(&a);
            assert_eq!(StructureKey::from_hex(&k.hex()), Some(k));
            let label = format!("{}/{kind}", s.name);
            if let Some(prev) = seen.insert(k, label.clone()) {
                panic!("key collision: {label} vs {prev} both map to {k}");
            }
        }
    }
    assert_eq!(seen.len(), 8 * 4);
}

#[test]
fn keys_are_stable_across_regeneration_and_persistence() {
    // Simulate a process restart: compile the suite into a cache, save,
    // reload, regenerate the matrices from scratch, and demand that
    // every recompile is a warm hit under the reloaded cache.
    let dir = std::env::temp_dir().join("bernoulli_plancache_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");

    let ctx = ExecCtx::serial().fast_kernels(true);
    let cache = PlanCache::new();
    for s in table1_suite(Scale::Small) {
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &s.triplets);
        cache.spmv_engine(&a, &ctx).unwrap();
    }
    assert_eq!(cache.stats().misses, 8);
    cache.save(&path).unwrap();

    let reloaded = PlanCache::load(&path).unwrap();
    assert_eq!(reloaded.stats().spmv_entries, 8);
    // Deterministic serialization survives the round trip.
    assert!(reloaded.to_json().contains(SCHEMA));
    assert_eq!(reloaded.to_json(), cache.to_json());

    for s in table1_suite(Scale::Small) {
        let a = SparseMatrix::from_triplets(FormatKind::Csr, &s.triplets);
        reloaded.spmv_engine(&a, &ctx).unwrap();
    }
    let stats = reloaded.stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (8, 0),
        "regenerated suite matrices must key identically after reload"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_pcg_solve_is_bitwise_identical_to_uncached() {
    // The acceptance bar: a repeat solve through the cache must be
    // bitwise identical to the uncached compile, preconditioner and
    // all — under the parallel context, where the cached wavefront
    // schedules actually arm the level-parallel sweeps.
    let ctx = ExecCtx::with_threads(2).oversubscribe(true).threshold(1);
    let t = bernoulli_formats::gen::grid2d_5pt(12, 12);
    let n = t.nrows();
    let a = Csr::from_triplets(&t);
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
    let opts = CgOptions { max_iters: 400, rel_tol: 1e-10 };

    let solve = |pre: &SymGs| {
        let mut x = vec![0.0; n];
        let res = cg(&a, pre, &b, &mut x, opts, &ctx).unwrap();
        (res.iters, res.converged, x)
    };

    let uncached = SymGs::new(Csr::from_triplets(&t), &ctx).unwrap();
    let (iters0, conv0, x0) = solve(&uncached);
    assert!(conv0);

    let cache = PlanCache::new();
    let cold = SymGs::with_engine_from(Csr::from_triplets(&t), 1.0, |m| {
        cache.symgs_engine(m, &ctx)
    })
    .unwrap();
    let warm = SymGs::with_engine_from(Csr::from_triplets(&t), 1.0, |m| {
        cache.symgs_engine(m, &ctx)
    })
    .unwrap();
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(warm.engine().strategy(), cold.engine().strategy());

    for pre in [&cold, &warm] {
        let (iters, conv, x) = solve(pre);
        assert!(conv);
        assert_eq!(iters, iters0);
        assert_eq!(
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "cached replay must be bitwise identical to the uncached solve"
        );
    }

    // And the preconditioner application itself, one sweep, bitwise.
    let r: Vec<f64> = (0..n).map(|i| ((i * 11 % 23) as f64) - 11.0).collect();
    let (mut z0, mut z1) = (vec![0.0; n], vec![0.0; n]);
    uncached.precondition(&r, &mut z0);
    warm.precondition(&r, &mut z1);
    assert_eq!(
        z0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        z1.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn calibration_fold_in_survives_save_load() {
    let dir = std::env::temp_dir().join("bernoulli_plancache_cal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");

    let ctx = ExecCtx::serial().fast_kernels(true);
    let a = SparseMatrix::from_triplets(
        FormatKind::Csr,
        &bernoulli_formats::gen::grid2d_5pt(10, 10),
    );
    let cache = PlanCache::new();
    let outcome = cache.calibrate_spmv(&a, &ctx, 3).unwrap();
    assert_eq!(cache.calibrated_choice(outcome.structure).as_deref(), Some(outcome.chosen.as_str()));
    // Every measurement carries both columns.
    for m in &outcome.measurements {
        assert!(m.est_cost.is_finite() && m.est_cost > 0.0);
        assert!(m.measured_ns >= 1 && m.reps == 3);
    }
    cache.save(&path).unwrap();

    let reloaded = PlanCache::load(&path).unwrap();
    assert_eq!(
        reloaded.calibrated_choice(outcome.structure),
        cache.calibrated_choice(outcome.structure),
        "the measured winner must survive persistence"
    );
    // The reloaded verdict replays the measured winner's tier bitwise:
    // a warm compile before the save and one after the reload are the
    // same engine in every observable way. (An uncached `compile_in`
    // may legitimately pick a different tier than the measured winner —
    // tiers agree to rounding, not bit for bit — so the comparison is
    // warm-vs-warm on the same verdict.)
    let pre_save = cache.spmv_engine(&a, &ctx).unwrap();
    let warm = reloaded.spmv_engine(&a, &ctx).unwrap();
    assert_eq!(reloaded.stats().hits, 1);
    assert_eq!(warm.strategy(), pre_save.strategy());
    assert_eq!(warm.plan_shape(), pre_save.plan_shape());
    assert_eq!(warm.tier(), pre_save.tier());
    let n = a.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
    let (mut y0, mut y1) = (vec![0.0; n], vec![0.0; n]);
    pre_save.run(&a, &x, &mut y0).unwrap();
    warm.run(&a, &x, &mut y1).unwrap();
    assert_eq!(
        y0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csr_helper_key_matches_enum_key_on_suite() {
    for s in table1_suite(Scale::Small) {
        let csr = Csr::from_triplets(&s.triplets);
        let via_enum = structure_key(&SparseMatrix::Csr(csr.clone()));
        assert_eq!(structure_key_csr(&csr), via_enum, "{}", s.name);
    }
}
