//! Parallel integration: SPMD compilation paths against the sequential
//! reference, across distribution relations and processor counts.

use bernoulli::spmd::{fragment_matrix, to_mixed_spec, CompiledMixed, CompiledNaive};
use bernoulli_blocksolve::matvec::BsParallelMatvec;
use bernoulli_blocksolve::reorder::build_layout;
use bernoulli_blocksolve::split::split_matrix;
use bernoulli_formats::gen::{fem_grid_2d, fem_grid_3d};
use bernoulli_formats::Triplets;
use bernoulli_solvers::cg::{cg, cg_parallel, CgOptions};
use bernoulli_solvers::precond::DiagonalPreconditioner;
use bernoulli_spmd::chaos::ChaosTable;
use bernoulli_spmd::dist::{
    BlockCyclicDist, BlockDist, CyclicDist, Distribution, GeneralizedBlockDist, IndirectDist,
};
use bernoulli_spmd::machine::Machine;

fn sequential_solution(t: &Triplets, b: &[f64], iters: usize) -> Vec<f64> {
    let a = bernoulli_formats::Csr::from_triplets(t);
    let pc = DiagonalPreconditioner::from_matrix(t);
    let mut x = vec![0.0; t.nrows()];
    cg(
        &a,
        &pc,
        b,
        &mut x,
        CgOptions { max_iters: iters, rel_tol: 0.0 },
        &bernoulli::ExecCtx::default(),
    )
    .unwrap();
    x
}

fn parallel_solution(
    t: &Triplets,
    b: &[f64],
    dist: &dyn Distribution,
    iters: usize,
    mixed: bool,
    chaos: bool,
) -> Vec<f64> {
    let n = t.nrows();
    let frags = fragment_matrix(t, dist);
    let pc = DiagonalPreconditioner::from_matrix(t);
    let out = Machine::run(dist.nprocs(), |ctx| {
        let me = ctx.rank();
        let owned = dist.owned_globals(me);
        let b_local: Vec<f64> = owned.iter().map(|&g| b[g]).collect();
        let pc_local = pc.restrict(&owned);
        let mut x_local = vec![0.0; owned.len()];
        let table = chaos.then(|| ChaosTable::build(ctx, n, &owned));
        enum E {
            M(CompiledMixed),
            N(CompiledNaive),
        }
        let mut eng = if mixed {
            let spec = to_mixed_spec(&frags[me], |g| {
                let (p, l) = dist.owner(g);
                (p == me).then_some(l)
            });
            E::M(match &table {
                Some(tab) => CompiledMixed::inspect_chaos(ctx, &spec, tab),
                None => CompiledMixed::inspect(ctx, &spec, dist),
            })
        } else {
            E::N(match &table {
                Some(tab) => CompiledNaive::inspect_chaos(ctx, &frags[me], tab),
                None => CompiledNaive::inspect(ctx, &frags[me], dist),
            })
        };
        cg_parallel(
            ctx,
            |ctx, p, out| match &mut eng {
                E::M(e) => e.execute(ctx, p, out),
                E::N(e) => e.execute(ctx, p, out),
            },
            &pc_local,
            &b_local,
            &mut x_local,
            CgOptions { max_iters: iters, rel_tol: 0.0 },
        );
        x_local
    });
    let mut x = vec![0.0; n];
    for (p, xl) in out.results.iter().enumerate() {
        for (l, &g) in dist.owned_globals(p).iter().enumerate() {
            x[g] = xl[l];
        }
    }
    x
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < tol * y.abs().max(1.0), "{what}: {x} vs {y}");
    }
}

#[test]
fn parallel_cg_matches_sequential_across_distributions() {
    let t = fem_grid_3d(4, 4, 4, 2);
    let n = t.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 6) as f64 * 0.5).collect();
    let want = sequential_solution(&t, &b, 15);
    let p = 4;
    let sizes: Vec<usize> = (0..p).map(|q| n / p + usize::from(q < n % p)).collect();
    let map: Vec<usize> = (0..n).map(|g| (g * 7 + 3) % p).collect();
    let dists: Vec<(&str, Box<dyn Distribution>)> = vec![
        ("block", Box::new(BlockDist::new(n, p))),
        ("cyclic", Box::new(CyclicDist::new(n, p))),
        ("block-cyclic", Box::new(BlockCyclicDist::new(n, p, 8))),
        ("generalized-block", Box::new(GeneralizedBlockDist::new(&sizes))),
        ("indirect", Box::new(IndirectDist::new(p, map))),
    ];
    for (name, dist) in &dists {
        dist.validate().unwrap();
        for mixed in [true, false] {
            let got = parallel_solution(&t, &b, dist.as_ref(), 15, mixed, false);
            assert_close(&got, &want, 1e-8, &format!("{name}/mixed={mixed}"));
        }
    }
}

#[test]
fn chaos_translation_gives_identical_solutions() {
    let t = fem_grid_2d(6, 6, 3);
    let n = t.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let want = sequential_solution(&t, &b, 12);
    let dist = BlockDist::new(n, 3);
    for mixed in [true, false] {
        let got = parallel_solution(&t, &b, &dist, 12, mixed, true);
        assert_close(&got, &want, 1e-8, &format!("chaos/mixed={mixed}"));
    }
}

#[test]
fn parallel_cg_matches_across_processor_counts() {
    let t = fem_grid_3d(4, 4, 6, 2);
    let n = t.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64 * 0.25).collect();
    let want = sequential_solution(&t, &b, 20);
    for p in [1, 2, 4, 8] {
        let dist = BlockDist::new(n, p);
        let got = parallel_solution(&t, &b, &dist, 20, true, false);
        assert_close(&got, &want, 1e-8, &format!("P={p}"));
    }
}

#[test]
fn blocksolve_pipeline_cg_matches_sequential() {
    let t = fem_grid_3d(4, 4, 3, 5);
    let n = t.nrows();
    let layout = build_layout(&t, 5, 4, 2);
    let rt = layout.permute_matrix(&t);
    let b_orig: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let b_re = layout.permute_vec(&b_orig);
    let want = sequential_solution(&rt, &b_re, 15);

    let locals = split_matrix(&layout, &rt);
    let pc = DiagonalPreconditioner::from_matrix(&rt);
    let dist = layout.dist.clone();
    let out = Machine::run(4, |ctx| {
        let me = ctx.rank();
        let local = &locals[me];
        let owned = dist.owned_globals(me);
        let b_local: Vec<f64> = owned.iter().map(|&g| b_re[g]).collect();
        let pc_local = pc.restrict(&owned);
        let mut pm = BsParallelMatvec::inspect(ctx, local, &dist);
        let mut x_local = vec![0.0; local.n_local];
        cg_parallel(
            ctx,
            |ctx, p, out| pm.execute(ctx, local, p, out, true),
            &pc_local,
            &b_local,
            &mut x_local,
            CgOptions { max_iters: 15, rel_tol: 0.0 },
        );
        x_local
    });
    let mut got = vec![0.0; n];
    for (p, xl) in out.results.iter().enumerate() {
        for (l, &g) in dist.owned_globals(p).iter().enumerate() {
            got[g] = xl[l];
        }
    }
    assert_close(&got, &want, 1e-8, "blocksolve CG");
}

#[test]
fn executor_traffic_independent_of_spec_but_inspector_is_not() {
    let t = fem_grid_3d(4, 4, 4, 3);
    let n = t.nrows();
    let dist = BlockDist::new(n, 4);
    let frags = fragment_matrix(&t, &dist);
    let measure = |mixed: bool| {
        Machine::run(4, |ctx| {
            let me = ctx.rank();
            let s0 = ctx.stats();
            enum E {
                M(CompiledMixed),
                N(CompiledNaive),
            }
            let mut eng = if mixed {
                let spec = to_mixed_spec(&frags[me], |g| {
                    let (p, l) = dist.owner(g);
                    (p == me).then_some(l)
                });
                E::M(CompiledMixed::inspect(ctx, &spec, &dist))
            } else {
                E::N(CompiledNaive::inspect(ctx, &frags[me], &dist))
            };
            let insp = ctx.stats().since(&s0).bytes_sent;
            let x = vec![1.0; dist.local_len(me)];
            let mut y = vec![0.0; dist.local_len(me)];
            let s1 = ctx.stats();
            match &mut eng {
                E::M(e) => e.execute(ctx, &x, &mut y),
                E::N(e) => e.execute(ctx, &x, &mut y),
            }
            (insp, ctx.stats().since(&s1).bytes_sent)
        })
    };
    let m = measure(true);
    let nv = measure(false);
    let exec_m: u64 = m.results.iter().map(|r| r.1).sum();
    let exec_n: u64 = nv.results.iter().map(|r| r.1).sum();
    assert_eq!(exec_m, exec_n, "executors move the same boundary values");
}
