//! Workspace root of the **bernoulli-rs** reproduction of
//! *"Compiling Parallel Code for Sparse Matrix Applications"* (SC'97).
//!
//! This crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the actual
//! functionality lives in the member crates, re-exported here for
//! convenience:
//!
//! * [`bernoulli`] — the compiler core (loop DSL → query → plan →
//!   engines; SPMD compilation);
//! * [`bernoulli_analysis`] — the static passes (race checker, plan
//!   verifier, format sanitizer, wavefront dependence analysis)
//!   behind `examples/lint.rs`;
//! * [`bernoulli_relational`] — the relational engine;
//! * [`bernoulli_formats`] — storage formats, generators, I/O;
//! * [`bernoulli_blocksolve`] — the BlockSolve95 baseline substrate;
//! * [`bernoulli_spmd`] — the simulated machine and distribution
//!   relations;
//! * [`bernoulli_solvers`] — CG/GMRES/Jacobi/Chebyshev + IC(0) and
//!   SymGS/SSOR preconditioning;
//! * [`bernoulli_graph`] — graph algorithms (PageRank, BFS, triangle
//!   counting) as semiring-parameterized sparse queries.
//!
//! Start with `examples/quickstart.rs`, README.md for the architecture,
//! DESIGN.md for the system inventory, and EXPERIMENTS.md for the
//! paper-vs-measured results.

pub use bernoulli;
pub use bernoulli_analysis;
pub use bernoulli_blocksolve;
pub use bernoulli_formats;
pub use bernoulli_graph;
pub use bernoulli_relational;
pub use bernoulli_solvers;
pub use bernoulli_spmd;
